"""Pilgrim reproduction — dynamic network forecasting via flow-level simulation.

This package is a from-scratch Python reproduction of the system described in
Imbert & Caron, *Dynamic Network Forecasting using SimGrid Simulations*,
IEEE CLUSTER 2012.  It contains:

- :mod:`repro.simgrid` — a flow-level discrete-event network simulator
  re-implementing SimGrid's published TCP sharing models (the predictor),
- :mod:`repro.testbed` — a detailed TCP/CUBIC emulator standing in for the
  Grid'5000 testbed (the "measured reality"),
- :mod:`repro.g5k` — a synthetic Grid'5000 Reference API plus the converter
  that turns it into simulator platform descriptions,
- :mod:`repro.rrd` / :mod:`repro.metrology` — a round-robin-database substrate
  and collectors, backing the Pilgrim metrology service,
- :mod:`repro.core` — Pilgrim itself: the network forecast service (PNFS),
  the RRD metrology service and the REST layer exposing both,
- :mod:`repro.nws` — a Network Weather Service style baseline forecaster,
- :mod:`repro.orchestration` / :mod:`repro.experiments` — the experiment
  engine and the paper's §V validation protocol,
- :mod:`repro.analysis` — error statistics and text rendering of the figures.

Quickstart::

    from repro import Pilgrim, TransferSpec

    pilgrim = Pilgrim.with_grid5000()
    forecasts = pilgrim.predict_transfers(
        "g5k_test",
        [TransferSpec("capricorne-36.lyon.grid5000.fr",
                      "griffon-50.nancy.grid5000.fr", 5e8),
         TransferSpec("capricorne-36.lyon.grid5000.fr",
                      "capricorne-1.lyon.grid5000.fr", 5e8)])
    for fc in forecasts:
        print(fc.src, "->", fc.dst, fc.duration)
"""

__version__ = "1.0.0"

# Lazy attribute exports (PEP 562): keeps `from repro import Pilgrim` working
# without forcing every subpackage import when only one substrate is needed.
_EXPORTS = {
    "Pilgrim": ("repro.core.framework", "Pilgrim"),
    "TransferSpec": ("repro.core.forecast", "TransferSpec"),
    "TransferForecast": ("repro.core.forecast", "TransferForecast"),
    "NetworkForecastService": ("repro.core.forecast", "NetworkForecastService"),
    "Platform": ("repro.simgrid.platform", "Platform"),
    "Host": ("repro.simgrid.platform", "Host"),
    "Link": ("repro.simgrid.platform", "Link"),
    "Router": ("repro.simgrid.platform", "Router"),
    "AutonomousSystem": ("repro.simgrid.platform", "AutonomousSystem"),
    "Simulation": ("repro.simgrid.engine", "Simulation"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))

__all__ = [
    "Pilgrim",
    "TransferSpec",
    "TransferForecast",
    "NetworkForecastService",
    "Platform",
    "Host",
    "Link",
    "Router",
    "AutonomousSystem",
    "Simulation",
    "__version__",
]
