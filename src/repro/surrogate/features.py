"""Feature engineering for the surrogate fast path.

A forecast query is a set of transfers started concurrently on one
platform.  The simulator answers it by solving the max-min bandwidth
sharing problem; the surrogate answers it from a small feature vector per
transfer, built from exactly the quantities the network model derives from
the live platform state:

- the transfer size,
- the route's **model-effective** single-flow rate (the minimum of the
  per-link effective bandwidths and the TCP-window rate bound),
- the route's **contended fair share** — for every constraint the route
  crosses, capacity divided by the number of request flows crossing it,
  minimized over the route (the max-min first-fill approximation),
- the model's startup latency for the route,
- route shape (hop count) and request shape (flow count, peak contention).

All bandwidth/latency reads go through the same :class:`LinkUse` routes the
simulator uses, resolved via ``platform.route`` (LRU-cached, link-mutation
-epoch safe) — so features always reflect the **calibrated** link rates the
metrology loop last applied, and a recalibration changes the features
exactly when it changes the simulation.

Rates and durations are log2-scaled: transfer times span orders of
magnitude, and the serving accuracy metric is |log2 error|, so the model
regresses in the space the error is measured in.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.simgrid.models import SharingModel
from repro.simgrid.platform import Platform, SharingPolicy, link_epoch

#: Per-transfer feature columns (one row per transfer in the request).
BASE_FEATURE_NAMES: tuple[str, ...] = (
    "log2_size",
    "log2_solo_rate",       # single-flow rate: min(effective bw, rate bound)
    "log2_fair_rate",       # contended first-fill share along the route
    "log2_startup_latency",
    "hops",
    "log2_flows",           # flows in the request (incl. ongoing)
    "contention",           # peak flows sharing a constraint on this route
    "log2_naive_duration",  # startup + size / fair_rate
)

#: Model-identity columns appended to every row: a one-hot over the
#: registered sharing-model families plus the numeric knobs that change
#: forecasts.  Constant within one request, but they let a single regressor
#: serve several models without conflating their rate laws.
MODEL_FEATURE_NAMES: tuple[str, ...] = (
    "model_is_cm02",
    "model_is_lv08",
    "model_is_tcp_fluid",
    "model_bandwidth_factor",
    "model_latency_factor",
    "model_log2_window",    # TCP window cap (gamma / max cwnd), 0 if unbounded
)

#: Full feature vector layout.
FEATURE_NAMES: tuple[str, ...] = BASE_FEATURE_NAMES + MODEL_FEATURE_NAMES

#: Dimensionality of one feature row.
N_FEATURES = len(FEATURE_NAMES)

#: Floor for log2 arguments (zero-latency routes, infinite bounds).
_EPS = 1e-12


def _log2(value: float) -> float:
    return math.log2(max(value, _EPS))


def model_features(model: SharingModel) -> tuple[float, ...]:
    """The :data:`MODEL_FEATURE_NAMES` column values for ``model``.

    Reads the model's declared family name (case-insensitive) for the
    one-hot and its numeric knobs via ``getattr`` with neutral defaults,
    so third-party registered models degrade to all-zero one-hot columns
    instead of raising.
    """
    family = str(getattr(model, "name", type(model).__name__)).lower()
    window = float(getattr(model, "tcp_gamma", 0.0) or 0.0)
    if not window:
        window = float(getattr(model, "max_window_bytes", 0.0) or 0.0)
    return (
        1.0 if family == "cm02" else 0.0,
        1.0 if family == "lv08" else 0.0,
        1.0 if family == "tcp_fluid" else 0.0,
        float(getattr(model, "bandwidth_factor", 1.0)),
        float(getattr(model, "latency_factor", 1.0)),
        _log2(window) if window > 0.0 else 0.0,
    )


def _route_info(platform: Platform, model: SharingModel,
                src: str, dst: str) -> tuple:
    """Per-route invariants: ``(startup, bound, hops, keys, capacities)``.

    ``keys`` are the direction-aware constraint keys of the route's
    constrained (non-FATPIPE) links; ``capacities`` their model-effective
    bandwidths.  Everything here depends only on route structure and link
    parameters, both of which can only change through setters that bump
    the link-mutation epoch — so entries are cacheable per epoch.
    """
    route = platform.route(src, dst)
    keys = []
    capacities = []
    for use in route:
        link = use.link
        if link.policy is SharingPolicy.FATPIPE:
            continue
        keys.append(link.constraint_key(use.direction))
        capacities.append(model.effective_bandwidth(link.bandwidth))
    return (
        model.startup_latency(route),
        model.rate_bound(route),
        float(len(route)),
        tuple(keys),
        tuple(capacities),
    )


def featurize_request(
    platform: Platform,
    model: SharingModel,
    transfers: Sequence[tuple[str, str, float]],
    ongoing: Sequence[tuple[str, str, float]] = (),
    cache: dict | None = None,
) -> np.ndarray:
    """Feature matrix for one forecast request.

    ``transfers``/``ongoing`` are canonical ``(src, dst, size)`` tuples.
    Returns an ``(len(transfers), N_FEATURES)`` float array; only the
    requested transfers get rows, but ongoing flows participate in the
    contention counts, mirroring how they share bandwidth in the simulated
    world.  Raises whatever ``platform.route`` raises for unknown hosts —
    callers that must match the simulator's error contract validate first.

    ``cache`` (optional) memoizes the per-route invariants across requests,
    keyed ``(src, dst) -> (epoch, info)`` and invalidated by comparing the
    stored epoch against the live link-mutation epoch — a serving tier
    passes a long-lived dict and pays the route walk only once per
    (route, recalibration epoch).  The cache is only valid for a single
    (platform, model) pair; callers own that scoping.
    """
    flows = list(transfers) + list(ongoing)
    if cache is None:
        infos = [_route_info(platform, model, src, dst)
                 for src, dst, _ in flows]
    else:
        epoch = link_epoch()
        if len(cache) > 65536:  # runaway host-pair sets: drop, don't grow
            cache.clear()
        infos = []
        for src, dst, _ in flows:
            entry = cache.get((src, dst))
            if entry is None or entry[0] != epoch:
                entry = (epoch, _route_info(platform, model, src, dst))
                cache[(src, dst)] = entry
            infos.append(entry[1])

    # constraint key -> number of request flows crossing it (direction-aware,
    # FATPIPE excluded — the same aggregation the model's sharing_usages does)
    users: dict[object, float] = {}
    for _, _, _, keys, _ in infos:
        for key in keys:
            users[key] = users.get(key, 0.0) + 1.0

    n_flows = float(len(flows))
    model_cols = model_features(model)
    rows = np.empty((len(transfers), N_FEATURES), dtype=float)
    for i, (_, _, size) in enumerate(transfers):
        startup, bound, hops, keys, capacities = infos[i]
        solo = bound
        fair = bound
        contention = 1.0
        for key, capacity in zip(keys, capacities):
            crossing = users[key]
            solo = min(solo, capacity)
            fair = min(fair, capacity / crossing)
            contention = max(contention, crossing)
        if not math.isfinite(solo):
            solo = _EPS ** -1  # routeless/fatpipe-only: effectively unbounded
        if not math.isfinite(fair):
            fair = solo
        naive = startup + float(size) / max(fair, _EPS)
        rows[i] = (
            _log2(float(size)),
            _log2(solo),
            _log2(fair),
            _log2(startup),
            hops,
            _log2(n_flows),
            contention,
            _log2(naive),
        ) + model_cols
    return rows
