"""Training data for the surrogate: campaign sweeps over scenario specs.

A :class:`SurrogateSweep` describes a seeded family of
:class:`~repro.scenarios.spec.ScenarioSpec` samples — topology × workload ×
transfer size draws, each optionally with **per-link calibration factors**
(random capacity degradations standing in for what the metrology loop
learns about a live network).  :func:`run_sweep` executes every sample —
build the platform, apply the link factors, featurize the request on that
exact platform state, then simulate it for ground-truth durations — and
collects one :class:`SurrogateDataset` of ``(features, log2 duration)``
rows.

The executor mirrors :func:`repro.experiments.campaign.run_campaign`:
``workers > 1`` fans samples out over a ``ProcessPoolExecutor`` with
results aggregated in sweep order, so a parallel sweep is **bit-identical**
to a serial one.  Every random draw derives from the sweep seed through
``SeedSequence.spawn`` (:mod:`repro._util.rng`), so a dataset is fully
reproducible from ``(sweep parameters, seed)``.

Datasets round-trip through JSON (``SurrogateDataset.from_json(d.to_json())
== d``) so a trained-on corpus can be stored, diffed and shipped.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro._util.parallel import pool_chunk_size
from repro._util.rng import spawn_rngs, spawn_seeds
from repro.scenarios.spec import ScenarioSpec, TopologySpec, WorkloadSpec
from repro.scenarios.topologies import build_topology
from repro.scenarios.workloads import generate_workload
from repro.simgrid.engine import Simulation
from repro.simgrid.models import model_by_name
from repro.simgrid.msg import transfer_processes
from repro.surrogate.features import FEATURE_NAMES, featurize_request

#: Topology pools a default sweep draws from (family, params) — small
#: shapes on purpose: sweep cost is simulation cost, and the surrogate's
#: features generalize over size through rates, not host counts.
DEFAULT_TOPOLOGIES: tuple[tuple[str, dict], ...] = (
    ("star", {"n_hosts": 8}),
    ("star", {"n_hosts": 12}),
    ("dumbbell", {}),
    ("dragonfly", {"n_groups": 3, "routers_per_group": 2,
                   "hosts_per_router": 2}),
)

#: Workload pools a default sweep draws from (kind, params).
DEFAULT_WORKLOADS: tuple[tuple[str, dict], ...] = (
    ("all_to_all", {"limit": 4}),
    ("all_to_all", {"limit": 6}),
    ("random_pairs", {"n_pairs": 8}),
    ("incast", {"fan_in": 3}),
    ("shuffle", {"strides": 2}),
)

#: Transfer-size pool (bytes), spanning the latency- to bandwidth-dominated
#: regimes the serving tier sees.
DEFAULT_SIZES: tuple[float, ...] = (1e6, 5e6, 2e7, 1e8, 5e8)


@dataclass(frozen=True)
class SweepSample:
    """One sweep draw: a scenario spec plus per-link calibration factors.

    ``link_factors`` maps :mod:`fnmatch` link patterns to capacity
    fractions in ``(0, 1]`` applied to the freshly built platform before
    featurization and simulation — the sweep-time stand-in for calibrated
    rates.
    """

    spec: ScenarioSpec
    link_factors: tuple[tuple[str, float], ...] = ()

    def to_json(self) -> dict:
        return {
            "spec": self.spec.to_json(),
            "link_factors": [[p, f] for p, f in self.link_factors],
        }

    @staticmethod
    def from_json(doc: dict) -> "SweepSample":
        return SweepSample(
            spec=ScenarioSpec.from_json(doc["spec"]),
            link_factors=tuple(
                (p, float(f)) for p, f in doc.get("link_factors", ())
            ),
        )


@dataclass(frozen=True)
class SurrogateSweep:
    """A seeded family of sweep samples (the surrogate's training campaign).

    ``degrade_probability`` is the chance each sample carries link
    degradations at all; a degraded sample scales 1–3 random links by a
    factor drawn from ``degrade_range``.
    """

    samples: int = 48
    seed: int = 0
    model: str = "LV08"
    topologies: tuple[tuple[str, dict], ...] = DEFAULT_TOPOLOGIES
    workloads: tuple[tuple[str, dict], ...] = DEFAULT_WORKLOADS
    sizes: tuple[float, ...] = DEFAULT_SIZES
    degrade_probability: float = 0.5
    degrade_range: tuple[float, float] = (0.25, 0.9)

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ValueError(f"sweep needs >= 1 sample, got {self.samples}")
        if not 0.0 <= self.degrade_probability <= 1.0:
            raise ValueError(
                f"degrade probability must be in [0, 1], got "
                f"{self.degrade_probability}"
            )

    def sample_specs(self) -> list[SweepSample]:
        """The sweep's samples, deterministic in ``(parameters, seed)``."""
        draws = spawn_rngs(self.seed, self.samples, "surrogate-sweep")
        workload_seeds = spawn_seeds(self.seed, self.samples,
                                     "surrogate-workload")
        samples: list[SweepSample] = []
        for index, rng in enumerate(draws):
            family, topo_params = self.topologies[
                int(rng.integers(len(self.topologies)))]
            kind, wl_params = self.workloads[
                int(rng.integers(len(self.workloads)))]
            size = float(self.sizes[int(rng.integers(len(self.sizes)))])
            spec = ScenarioSpec(
                name=f"surrogate-{index}",
                topology=TopologySpec(family, topo_params),
                workload=WorkloadSpec(kind, size=size, params=wl_params),
                seed=workload_seeds[index],
                model=self.model,
            )
            factors: list[tuple[str, float]] = []
            if float(rng.random()) < self.degrade_probability:
                platform = build_topology(spec.topology)
                links = sorted(link.name for link in platform.links())
                n_degraded = int(rng.integers(1, 4))
                picks = rng.choice(len(links), size=min(n_degraded, len(links)),
                                   replace=False)
                lo, hi = self.degrade_range
                factors = [
                    (links[int(p)], float(rng.uniform(lo, hi)))
                    for p in sorted(picks)
                ]
            samples.append(SweepSample(spec=spec, link_factors=tuple(factors)))
        return samples


@dataclass
class SurrogateDataset:
    """Feature rows + log2-duration targets, with sweep provenance.

    ``features`` is ``(n, len(FEATURE_NAMES))``; ``targets`` is ``(n,)``
    holding ``log2(duration_seconds)``.  ``sample_index`` maps each row to
    the sweep sample that produced it, so held-out splits can be made by
    *scenario* (never leaking one scenario's transfers across the split).
    """

    features: np.ndarray
    targets: np.ndarray
    sample_index: np.ndarray
    model: str = "LV08"
    feature_names: tuple[str, ...] = FEATURE_NAMES
    samples: list[SweepSample] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=float)
        self.targets = np.asarray(self.targets, dtype=float)
        self.sample_index = np.asarray(self.sample_index, dtype=int)
        if self.features.ndim != 2 or \
                self.features.shape[1] != len(self.feature_names):
            raise ValueError(
                f"features must be (n, {len(self.feature_names)}), got "
                f"{self.features.shape}"
            )
        if len(self.targets) != len(self.features) or \
                len(self.sample_index) != len(self.features):
            raise ValueError("features/targets/sample_index lengths differ")

    def __len__(self) -> int:
        return len(self.targets)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SurrogateDataset):
            return NotImplemented
        return (
            self.model == other.model
            and self.feature_names == other.feature_names
            and self.samples == other.samples
            and np.array_equal(self.features, other.features)
            and np.array_equal(self.targets, other.targets)
            and np.array_equal(self.sample_index, other.sample_index)
        )

    def split_by_sample(self, holdout_fraction: float = 0.25,
                        seed: int = 0) -> tuple["SurrogateDataset", "SurrogateDataset"]:
        """``(train, holdout)`` split on sweep-sample boundaries."""
        if not 0.0 < holdout_fraction < 1.0:
            raise ValueError(
                f"holdout fraction must be in (0, 1), got {holdout_fraction}"
            )
        ids = np.unique(self.sample_index)
        rng = spawn_rngs(seed, 1, "surrogate-holdout")[0]
        shuffled = rng.permutation(ids)
        n_holdout = max(1, int(round(len(ids) * holdout_fraction)))
        if n_holdout >= len(ids):
            raise ValueError("holdout fraction leaves no training samples")
        held = set(int(i) for i in shuffled[:n_holdout])
        mask = np.array([int(i) in held for i in self.sample_index])
        return self._subset(~mask), self._subset(mask)

    def _subset(self, mask: np.ndarray) -> "SurrogateDataset":
        return SurrogateDataset(
            features=self.features[mask],
            targets=self.targets[mask],
            sample_index=self.sample_index[mask],
            model=self.model,
            feature_names=self.feature_names,
            samples=list(self.samples),
        )

    def to_json(self) -> dict:
        return {
            "model": self.model,
            "feature_names": list(self.feature_names),
            "features": self.features.tolist(),
            "targets": self.targets.tolist(),
            "sample_index": self.sample_index.tolist(),
            "samples": [s.to_json() for s in self.samples],
        }

    @staticmethod
    def from_json(doc: dict) -> "SurrogateDataset":
        return SurrogateDataset(
            features=np.asarray(doc["features"], dtype=float),
            targets=np.asarray(doc["targets"], dtype=float),
            sample_index=np.asarray(doc["sample_index"], dtype=int),
            model=doc.get("model", "LV08"),
            feature_names=tuple(doc.get("feature_names", FEATURE_NAMES)),
            samples=[SweepSample.from_json(s)
                     for s in doc.get("samples", ())],
        )


def run_sample(sample: SweepSample) -> tuple[np.ndarray, np.ndarray]:
    """Execute one sweep sample: ``(features, log2-duration targets)``.

    The platform is built fresh, link factors applied through the normal
    ``Link`` setters, the request featurized on that exact state, and then
    simulated — so features and targets describe the same calibrated world,
    which is the invariant the serving tier relies on.
    """
    spec = sample.spec
    platform = build_topology(spec.topology)
    for pattern, factor in sample.link_factors:
        if not 0.0 < factor <= 1.0:
            raise ValueError(
                f"link factor must be in (0, 1], got {factor} for {pattern!r}"
            )
        for link in platform.links_matching(pattern):
            link.bandwidth = link.bandwidth * factor
    hosts = [h.name for h in platform.hosts()]
    rng = spawn_rngs(spec.seed, 1, "workload", spec.name)[0]
    transfers = generate_workload(spec.workload, hosts, rng)
    model = model_by_name(spec.model)
    features = featurize_request(platform, model, transfers)
    sim = Simulation(platform, model)
    records = transfer_processes(sim, transfers)
    targets = np.log2(np.array([r["duration"] for r in records], dtype=float))
    return features, targets


def run_sweep(
    sweep: SurrogateSweep,
    workers: Optional[int] = None,
    samples: Optional[Sequence[SweepSample]] = None,
    chunk_size: Optional[int] = None,
) -> SurrogateDataset:
    """Run every sweep sample and assemble the dataset.

    ``workers > 1`` fans samples out over a process pool; aggregation is in
    sweep order, so the dataset is bit-identical to a serial run.
    ``samples`` overrides the sweep's own draws (re-sweeps of a stale
    region pass the exact samples to refresh).
    """
    sample_list = list(samples) if samples is not None \
        else sweep.sample_specs()
    if workers is not None and workers > 1 and len(sample_list) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            chunk = chunk_size or pool_chunk_size(len(sample_list), workers)
            outcomes = list(pool.map(run_sample, sample_list, chunksize=chunk))
    else:
        outcomes = [run_sample(sample) for sample in sample_list]
    blocks = [f for f, _ in outcomes]
    targets = [t for _, t in outcomes]
    index = np.concatenate([
        np.full(len(t), i, dtype=int) for i, t in enumerate(targets)
    ])
    return SurrogateDataset(
        features=np.concatenate(blocks, axis=0),
        targets=np.concatenate(targets),
        sample_index=index,
        model=sweep.model,
        samples=sample_list,
    )
