"""Learned surrogate fast path for forecast serving.

A microsecond first tier in front of the simulation stack: campaign
sweeps (:mod:`~repro.surrogate.dataset`) train a small ridge + k-NN
regressor (:mod:`~repro.surrogate.model`) over engineered route/workload
features (:mod:`~repro.surrogate.features`); the serving tier
(:mod:`~repro.surrogate.tier`) answers when predicted uncertainty is
within a bound and otherwise falls through to simulation bit-identically;
metrology epoch bumps trigger incremental retraining
(:mod:`~repro.surrogate.retrain`).  See ``docs/SURROGATE.md``.
"""

from repro.surrogate.dataset import (
    SurrogateDataset,
    SurrogateSweep,
    SweepSample,
    run_sample,
    run_sweep,
)
from repro.surrogate.features import (
    BASE_FEATURE_NAMES,
    FEATURE_NAMES,
    MODEL_FEATURE_NAMES,
    N_FEATURES,
    featurize_request,
    model_features,
)
from repro.surrogate.model import NotFittedError, SurrogateModel
from repro.surrogate.retrain import SurrogateRetrainer
from repro.surrogate.tier import SurrogateTier

__all__ = [
    "BASE_FEATURE_NAMES",
    "FEATURE_NAMES",
    "MODEL_FEATURE_NAMES",
    "N_FEATURES",
    "NotFittedError",
    "SurrogateDataset",
    "SurrogateModel",
    "SurrogateRetrainer",
    "SurrogateSweep",
    "SurrogateTier",
    "SweepSample",
    "featurize_request",
    "model_features",
    "run_sample",
    "run_sweep",
]
