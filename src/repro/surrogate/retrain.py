"""Retraining on metrology epochs: the surrogate tracks live link truth.

The :class:`~repro.metrology.loop.RecalibrationLoop` mutates links through
their property setters, which bumps the global link-mutation epoch — the
signal every cache in the stack invalidates on.  The
:class:`~repro.surrogate.tier.SurrogateTier` honours the same signal by
refusing to answer once the epoch leaves its trained epoch; this module
closes the loop by *refreshing* it:

1. :meth:`SurrogateRetrainer.on_updates` — subscribed to the loop via
   ``loop.subscribe(retrainer.on_updates)`` — records which links each
   recalibration touched (the **stale region**),
2. :meth:`SurrogateRetrainer.flush` re-sweeps on the **live platform** at
   its current calibrated rates (the same pattern the forecast service
   itself uses: a throwaway :class:`~repro.simgrid.engine.Simulation` over
   the live platform), preferring workloads whose routes cross stale
   links, ``partial_fit``\\ s the model on the fresh rows, and calls
   ``tier.mark_fresh`` for the epoch the sweep observed.

``auto_flush=True`` retrains synchronously inside the loop's ``apply``;
the default defers to an explicit ``flush()`` so serving latency never
pays for simulation sweeps inline.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from repro._util.rng import spawn_rngs
from repro.scenarios.spec import WorkloadSpec
from repro.scenarios.workloads import generate_workload
from repro.simgrid.engine import Simulation
from repro.simgrid.models import model_by_name
from repro.simgrid.msg import transfer_processes
from repro.simgrid.platform import Platform, link_epoch
from repro.surrogate.dataset import DEFAULT_SIZES, DEFAULT_WORKLOADS
from repro.surrogate.features import featurize_request
from repro.surrogate.tier import SurrogateTier

import numpy as np


class SurrogateRetrainer:
    """Stale-region re-sweeps + ``partial_fit`` on recalibration epochs.

    ``samples_per_refresh`` workload draws are simulated per flush; twice
    as many candidates are drawn and those whose routes cross a stale link
    are preferred, so the refresh concentrates on the region the
    recalibration actually changed.
    """

    def __init__(
        self,
        tier: SurrogateTier,
        platform: Platform,
        workloads: Sequence[tuple[str, dict]] = DEFAULT_WORKLOADS,
        sizes: Sequence[float] = DEFAULT_SIZES,
        samples_per_refresh: int = 8,
        seed: int = 0,
        auto_flush: bool = False,
    ) -> None:
        if samples_per_refresh < 1:
            raise ValueError(
                f"samples_per_refresh must be >= 1, got {samples_per_refresh}"
            )
        self.tier = tier
        self.platform = platform
        self.workloads = tuple(workloads)
        self.sizes = tuple(float(s) for s in sizes)
        self.samples_per_refresh = int(samples_per_refresh)
        self.seed = int(seed)
        self.auto_flush = bool(auto_flush)
        self.network_model = model_by_name(tier.model.network_model)
        self._lock = threading.Lock()
        self._stale: set[str] = set()
        self._enqueued = 0
        self._refreshes = 0
        self._rows_trained = 0

    # -- the loop-listener side --------------------------------------------

    def on_updates(self, updates) -> None:
        """Record a recalibration batch's links as stale.

        Signature matches ``RecalibrationLoop.subscribe`` listeners:
        ``updates`` is the list of applied
        :class:`~repro.metrology.loop.LinkUpdate`.
        """
        with self._lock:
            for update in updates:
                self._stale.add(update.link)
            self._enqueued += 1
        if self.auto_flush:
            self.flush()

    def attach(self, loop):
        """Subscribe to ``loop``; returns the unsubscribe callable."""
        return loop.subscribe(self.on_updates)

    @property
    def pending(self) -> bool:
        """Whether a recalibration awaits a flush (or the tier is stale)."""
        with self._lock:
            stale_links = bool(self._stale)
        return stale_links or link_epoch() != self.tier.trained_epoch

    # -- the re-sweep side -------------------------------------------------

    def flush(self, force: bool = False) -> Optional[dict]:
        """Re-sweep, ``partial_fit``, ``mark_fresh``; a summary or None.

        No-op (returns None) when nothing is pending and ``force`` is
        False.  The epoch is captured *before* simulating: if another
        recalibration lands mid-sweep the tier comes out still-stale and
        the next flush picks it up — freshness is never over-claimed.
        """
        with self._lock:
            stale = set(self._stale)
            self._stale.clear()
            refresh_index = self._refreshes
        if not stale and not force and \
                link_epoch() == self.tier.trained_epoch:
            return None
        epoch = link_epoch()
        hosts = [h.name for h in self.platform.hosts()]
        n_candidates = 2 * self.samples_per_refresh
        rngs = spawn_rngs(self.seed, n_candidates,
                          "surrogate-retrain", refresh_index)
        crossing: list[list[tuple[str, str, float]]] = []
        other: list[list[tuple[str, str, float]]] = []
        for rng in rngs:
            kind, params = self.workloads[
                int(rng.integers(len(self.workloads)))]
            size = float(self.sizes[int(rng.integers(len(self.sizes)))])
            spec = WorkloadSpec(kind, size=size, params=params)
            transfers = generate_workload(spec, hosts, rng)
            if stale and self._crosses(transfers, stale):
                crossing.append(transfers)
            else:
                other.append(transfers)
        chosen = (crossing + other)[:self.samples_per_refresh]
        blocks, targets = [], []
        for transfers in chosen:
            features = featurize_request(
                self.platform, self.network_model, transfers)
            sim = Simulation(self.platform, self.network_model)
            records = transfer_processes(sim, transfers)
            blocks.append(features)
            targets.append(np.log2(np.array(
                [r["duration"] for r in records], dtype=float)))
        self.tier.model.partial_fit(
            np.concatenate(blocks, axis=0), np.concatenate(targets))
        self.tier.mark_fresh(epoch)
        rows = int(sum(len(t) for t in targets))
        with self._lock:
            self._refreshes += 1
            self._rows_trained += rows
        return {
            "refresh": refresh_index,
            "epoch": epoch,
            "stale_links": sorted(stale),
            "samples": len(chosen),
            "stale_region_samples": min(len(crossing),
                                        self.samples_per_refresh),
            "rows": rows,
        }

    def _crosses(self, transfers, stale: set[str]) -> bool:
        for src, dst, _ in transfers:
            for use in self.platform.route(src, dst):
                if use.link.name in stale:
                    return True
        return False

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "enqueued": self._enqueued,
                "refreshes": self._refreshes,
                "rows_trained": self._rows_trained,
                "stale_links": sorted(self._stale),
                "auto_flush": self.auto_flush,
                "samples_per_refresh": self.samples_per_refresh,
            }
