"""The surrogate serving tier: answer in microseconds or step aside.

:class:`SurrogateTier` sits in front of the whole serving stack — before
even the :class:`~repro.serving.cache.ForecastCache` — and answers a
forecast request from the regressor when it is *confident*:

- the model is fitted and was trained for the request's network model
  (compared by ``model_key()``, the same identity the forecast cache
  keys on),
- the request is not ``full_resolve`` (an explicit ask for the reference
  solver is an ask for simulation, not an approximation),
- the tier is **epoch-fresh**: the link-mutation epoch equals the epoch
  the model was last (re)trained against.  A recalibration bumps the
  epoch, the tier starts falling through, and the retraining hook
  (:mod:`repro.surrogate.retrain`) refreshes it — so the surrogate can
  never keep answering from a world the metrology loop has disowned.
  ``require_fresh_epoch=False`` relaxes this for deployments without a
  retrainer (features still read live link state through the route LRU,
  so predictions track recalibrated rates; only the residual store lags),
- every transfer's predicted uncertainty is within ``bound`` (log2
  units).

Anything else — including *any* exception during featurization, such as
an unknown platform or host — falls through to the simulation path, which
then produces the bit-identical answer or canonical error it always has.
The tier is strictly additive: disabling it changes latency, never
answers on the fallback path.
"""

from __future__ import annotations

import math
import threading
from typing import Optional, Sequence

from repro.core.forecast import TransferForecast
from repro.simgrid.models import model_by_name, model_key_of
from repro.simgrid.platform import link_epoch
from repro.surrogate.features import featurize_request
from repro.surrogate.model import SurrogateModel

#: Fallback reason keys, in stats order.
FALLBACK_REASONS = (
    "unfitted",
    "model_mismatch",
    "full_resolve",
    "stale_epoch",
    "uncertainty",
    "error",
)


class SurrogateTier:
    """Uncertainty-gated surrogate answers in front of the serving stack.

    ``bound`` is the maximum predicted uncertainty (log2 units) the tier
    will answer under; ``0`` disables answering without removing the
    counters.
    """

    def __init__(
        self,
        model: SurrogateModel,
        bound: float = 0.5,
        require_fresh_epoch: bool = True,
    ) -> None:
        if bound < 0:
            raise ValueError(f"uncertainty bound must be >= 0, got {bound}")
        self.model = model
        self.bound = float(bound)
        self.require_fresh_epoch = bool(require_fresh_epoch)
        self._lock = threading.Lock()
        # (src, dst) -> (epoch, route invariants), per platform; epoch
        # comparison inside featurize_request invalidates stale entries
        self._route_caches: dict[str, dict] = {}
        self._trained_epoch = link_epoch()
        self._expected_key = model_key_of(model_by_name(model.network_model))
        self._hits = 0
        self._fallbacks = {reason: 0 for reason in FALLBACK_REASONS}
        self._refreshes = 0
        self._uncertainty_sum = 0.0
        self._uncertainty_max = 0.0
        self._uncertainty_n = 0

    # -- the answer path ---------------------------------------------------

    def try_answer(
        self,
        service,
        platform_name: str,
        request_model: object,
        transfers: Sequence[tuple[str, str, float]],
        ongoing: Sequence[tuple[str, str, float]] = (),
        full_resolve: bool = False,
    ) -> Optional[list[TransferForecast]]:
        """A forecast list if the tier is confident, else ``None``.

        ``transfers``/``ongoing`` are canonical ``(src, dst, size)``
        tuples (the :func:`~repro.serving.cache.canonical_transfers`
        form).  ``None`` means *fall through to simulation*; the caller
        proceeds exactly as if no tier existed.
        """
        if not self.model.fitted:
            return self._fallback("unfitted")
        if full_resolve:
            return self._fallback("full_resolve")
        if model_key_of(request_model) != self._expected_key:
            return self._fallback("model_mismatch")
        if self.require_fresh_epoch and link_epoch() != self._trained_epoch:
            return self._fallback("stale_epoch")
        if not transfers:
            return self._fallback("error")
        try:
            platform = service.platform(platform_name)
            cache = self._route_caches.setdefault(platform_name, {})
            features = featurize_request(
                platform, request_model, transfers, ongoing, cache=cache)
            estimates, uncertainty = self.model.predict(features)
        except BaseException:  # noqa: BLE001 - fall through, never fail
            return self._fallback("error")
        worst = float(uncertainty.max())
        if not math.isfinite(worst) or worst > self.bound:
            return self._fallback("uncertainty", worst)
        with self._lock:
            self._hits += 1
            self._record_uncertainty(worst)
        return [
            TransferForecast(src=src, dst=dst, size=size,
                             duration=float(estimates[i]))
            for i, (src, dst, size) in enumerate(transfers)
        ]

    def _fallback(self, reason: str,
                  uncertainty: Optional[float] = None) -> None:
        with self._lock:
            self._fallbacks[reason] += 1
            if uncertainty is not None:
                self._record_uncertainty(uncertainty)
        return None

    def _record_uncertainty(self, value: float) -> None:
        # lock held by callers
        self._uncertainty_sum += value
        self._uncertainty_max = max(self._uncertainty_max, value)
        self._uncertainty_n += 1

    # -- retraining contract -----------------------------------------------

    def mark_fresh(self, epoch: Optional[int] = None) -> None:
        """Declare the model retrained against ``epoch`` (default: now).

        Called by the retraining hook after ``partial_fit`` on post-bump
        sweeps; the tier resumes answering for that epoch.
        """
        with self._lock:
            self._trained_epoch = link_epoch() if epoch is None else int(epoch)
            self._refreshes += 1

    @property
    def trained_epoch(self) -> int:
        return self._trained_epoch

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Hit/fallback/uncertainty counters, one JSON-able dict."""
        with self._lock:
            fallbacks = dict(self._fallbacks)
            mean = (self._uncertainty_sum / self._uncertainty_n
                    if self._uncertainty_n else 0.0)
            return {
                "enabled": True,
                "bound": self.bound,
                "network_model": self.model.network_model,
                "trained_epoch": self._trained_epoch,
                "current_epoch": link_epoch(),
                "require_fresh_epoch": self.require_fresh_epoch,
                "model_updates": self.model.updates,
                "refreshes": self._refreshes,
                "hits": self._hits,
                "fallbacks": fallbacks,
                "fallbacks_total": sum(fallbacks.values()),
                "uncertainty": {
                    "evaluated": self._uncertainty_n,
                    "mean": mean,
                    "max": self._uncertainty_max,
                },
            }
