"""The surrogate regressor: ridge + k-NN residuals, pure numpy.

Two stacked estimators, both cheap enough for a microsecond-scale serving
tier and both incrementally updatable:

1. **Ridge regression** in log2 space over the engineered features
   (:mod:`repro.surrogate.features`).  The model maintains the Gram system
   ``A = XᵀX + λI`` and ``b = Xᵀy`` instead of the raw corpus, so
   ``partial_fit`` is an O(d²) accumulate plus one (d+1)×(d+1) solve —
   retraining on a metrology epoch costs microseconds, not a refit.
2. **k-NN residual store**: a bounded FIFO of ``(standardized features,
   ridge residual)`` pairs.  At predict time the k nearest stored rows
   supply a local residual correction *and* the uncertainty estimate —
   the spread of neighbour residuals plus a distance penalty, so queries
   far from anything the sweep covered report high uncertainty and the
   serving tier falls through to simulation.

The feature scaler (mean/std) is **frozen at the first fit**: later
``partial_fit`` batches reuse it, which keeps the Gram system and the
stored neighbours in one coherent coordinate space.

``predict(features) -> (estimates, uncertainties)`` returns durations in
**seconds** and uncertainties in **log2 units** (the serving bound is a
log2-error bound).  Everything round-trips through JSON, including the
Gram system, so a deserialized model keeps accepting ``partial_fit``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.surrogate.features import N_FEATURES


class NotFittedError(RuntimeError):
    """``predict``/``partial_fit`` called before the first ``fit``."""


class SurrogateModel:
    """Ridge + k-NN residual regressor with uncertainty estimates.

    Parameters
    ----------
    ridge_lambda:
        L2 regularization strength on the standardized design.
    k_neighbors:
        Neighbours consulted for the residual correction / uncertainty.
    max_store:
        FIFO capacity of the residual store; oldest rows (the stalest
        sweep regions) are evicted first, which is exactly the retraining
        semantics the metrology hook wants.
    distance_scale:
        Weight of the nearest-neighbour distance term in the uncertainty
        (log2 units per standardized-space distance unit).
    network_model:
        Name of the :class:`~repro.simgrid.models.NetworkModel` the
        training corpus was simulated with; the serving tier refuses to
        answer for any other model.
    """

    def __init__(
        self,
        ridge_lambda: float = 1e-3,
        k_neighbors: int = 8,
        max_store: int = 4096,
        distance_scale: float = 0.05,
        network_model: str = "LV08",
    ) -> None:
        if ridge_lambda <= 0:
            raise ValueError(f"ridge lambda must be > 0, got {ridge_lambda}")
        if k_neighbors < 1:
            raise ValueError(f"k must be >= 1, got {k_neighbors}")
        if max_store < k_neighbors:
            raise ValueError(
                f"store capacity {max_store} smaller than k={k_neighbors}"
            )
        self.ridge_lambda = float(ridge_lambda)
        self.k_neighbors = int(k_neighbors)
        self.max_store = int(max_store)
        self.distance_scale = float(distance_scale)
        self.network_model = str(network_model)
        self._dim = N_FEATURES + 1  # + bias column
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self._gram: Optional[np.ndarray] = None
        self._moment: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._store_x = np.empty((0, N_FEATURES), dtype=float)
        self._store_r = np.empty(0, dtype=float)
        self._store_sq = np.empty(0, dtype=float)  # row norms², for predict
        self.updates = 0  # fit + partial_fit count (retraining telemetry)

    # -- training ----------------------------------------------------------

    @property
    def fitted(self) -> bool:
        return self._weights is not None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        """Train from scratch: freeze the scaler, rebuild Gram and store."""
        x, y = self._validate(features, targets)
        std = x.std(axis=0)
        self._mean = x.mean(axis=0)
        self._std = np.where(std > 1e-9, std, 1.0)
        self._gram = self.ridge_lambda * np.eye(self._dim)
        self._moment = np.zeros(self._dim)
        self._store_x = np.empty((0, N_FEATURES), dtype=float)
        self._store_r = np.empty(0, dtype=float)
        self._absorb(x, y)

    def partial_fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        """Fold a new batch in: accumulate the Gram system, re-solve, and
        append fresh residuals (evicting the oldest beyond capacity)."""
        if not self.fitted:
            raise NotFittedError("partial_fit before fit; call fit first")
        x, y = self._validate(features, targets)
        self._absorb(x, y)

    def _absorb(self, x: np.ndarray, y: np.ndarray) -> None:
        z = self._design(x)
        self._gram += z.T @ z
        self._moment += z.T @ y
        self._weights = np.linalg.solve(self._gram, self._moment)
        residuals = y - z @ self._weights
        scaled = (x - self._mean) / self._std
        self._store_x = np.concatenate([self._store_x, scaled])[-self.max_store:]
        self._store_r = np.concatenate([self._store_r, residuals])[-self.max_store:]
        self._store_sq = (self._store_x * self._store_x).sum(axis=1)
        self.updates += 1

    def _validate(self, features: np.ndarray,
                  targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        if x.ndim != 2 or x.shape[1] != N_FEATURES:
            raise ValueError(
                f"features must be (n, {N_FEATURES}), got {x.shape}"
            )
        if y.shape != (len(x),):
            raise ValueError(
                f"targets must be ({len(x)},), got {y.shape}"
            )
        if len(x) == 0:
            raise ValueError("cannot train on an empty batch")
        if not (np.isfinite(x).all() and np.isfinite(y).all()):
            raise ValueError("training data contains non-finite values")
        return x, y

    def _design(self, x: np.ndarray) -> np.ndarray:
        scaled = (x - self._mean) / self._std
        return np.concatenate(
            [scaled, np.ones((len(scaled), 1))], axis=1)

    # -- inference ---------------------------------------------------------

    def predict(
        self, features: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(durations_seconds, uncertainties_log2)`` for feature rows.

        The estimate is ``2 ** (ridge + local residual correction)``; the
        uncertainty is the spread of the k nearest residuals plus a
        distance penalty, both in log2 units — directly comparable to the
        serving tier's error bound.
        """
        if not self.fitted:
            raise NotFittedError("predict before fit; call fit first")
        x = np.asarray(features, dtype=float)
        if x.ndim != 2 or x.shape[1] != N_FEATURES:
            raise ValueError(
                f"features must be (n, {N_FEATURES}), got {x.shape}"
            )
        if len(x) == 0:
            return np.empty(0), np.empty(0)
        scaled = (x - self._mean) / self._std
        base = scaled @ self._weights[:-1] + self._weights[-1]
        # squared pairwise distances to the store via the norm expansion —
        # one (n_query, n_store) matmul, no 3-d broadcast intermediate;
        # sqrt only after the k nearest are selected
        sq = np.maximum(
            (scaled * scaled).sum(axis=1)[:, None]
            + self._store_sq[None, :]
            - 2.0 * (scaled @ self._store_x.T),
            0.0,
        )
        k = min(self.k_neighbors, len(self._store_r))
        order = np.argpartition(sq, k - 1, axis=1)[:, :k]
        near_r = self._store_r[order]
        near_d = np.sqrt(np.take_along_axis(sq, order, axis=1))
        correction = near_r.mean(axis=1)
        spread = near_r.std(axis=1)
        uncertainty = spread + self.distance_scale * near_d.mean(axis=1)
        estimates = np.exp2(base + correction)
        return estimates, uncertainty

    def evaluate(self, features: np.ndarray,
                 targets: np.ndarray) -> dict:
        """Accuracy summary on a labelled set (|log2 error| statistics)."""
        estimates, uncertainty = self.predict(features)
        errors = np.abs(np.log2(estimates) - np.asarray(targets, dtype=float))
        return {
            "n": int(len(errors)),
            "median_abs_log2_error": float(np.median(errors)),
            "p90_abs_log2_error": float(np.quantile(errors, 0.9)),
            "max_abs_log2_error": float(errors.max()),
            "median_uncertainty": float(np.median(uncertainty)),
            "uncertainty_covers": float(np.mean(errors <= uncertainty + 1e-12)),
        }

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        doc = {
            "ridge_lambda": self.ridge_lambda,
            "k_neighbors": self.k_neighbors,
            "max_store": self.max_store,
            "distance_scale": self.distance_scale,
            "network_model": self.network_model,
            "updates": self.updates,
            "fitted": self.fitted,
        }
        if self.fitted:
            doc.update({
                "mean": self._mean.tolist(),
                "std": self._std.tolist(),
                "gram": self._gram.tolist(),
                "moment": self._moment.tolist(),
                "store_x": self._store_x.tolist(),
                "store_r": self._store_r.tolist(),
            })
        return doc

    @staticmethod
    def from_json(doc: dict) -> "SurrogateModel":
        model = SurrogateModel(
            ridge_lambda=float(doc["ridge_lambda"]),
            k_neighbors=int(doc["k_neighbors"]),
            max_store=int(doc["max_store"]),
            distance_scale=float(doc["distance_scale"]),
            network_model=str(doc.get("network_model", "LV08")),
        )
        model.updates = int(doc.get("updates", 0))
        if doc.get("fitted"):
            model._mean = np.asarray(doc["mean"], dtype=float)
            model._std = np.asarray(doc["std"], dtype=float)
            model._gram = np.asarray(doc["gram"], dtype=float)
            model._moment = np.asarray(doc["moment"], dtype=float)
            model._weights = np.linalg.solve(model._gram, model._moment)
            model._store_x = np.asarray(doc["store_x"], dtype=float)
            model._store_r = np.asarray(doc["store_r"], dtype=float)
            if model._store_x.ndim != 2:
                model._store_x = model._store_x.reshape(-1, N_FEATURES)
            model._store_sq = (model._store_x * model._store_x).sum(axis=1)
        return model

    @staticmethod
    def train(dataset, **kwargs) -> "SurrogateModel":
        """Convenience: fit a fresh model on a
        :class:`~repro.surrogate.dataset.SurrogateDataset`, carrying the
        dataset's network-model name."""
        kwargs.setdefault("network_model", dataset.model)
        model = SurrogateModel(**kwargs)
        model.fit(dataset.features, dataset.targets)
        return model
