"""Request coalescer: micro-batching for concurrent forecast requests.

Concurrent clients tend to arrive together (a scheduler fanning out "which
of these placements is fastest?" probes); answering each on its own wastes
the pool's fan-out.  The coalescer holds the first request of a burst for a
small window (``window`` seconds), drains everything that arrived in the
meantime into one batch, and hands the batch to an ``execute`` callback —
the serving layer's campaign-style fan-out over the warm pool.

Batching never changes answers: every queued request stays an independent
simulation, grouped only for transport, so a batched answer is bit-identical
to the same request issued alone.  The window is purely a latency/throughput
trade: requests wait at most ``window`` seconds before execution starts.

Each :meth:`submit` returns a :class:`concurrent.futures.Future`; callers
block on ``result()``.  Exceptions raised by ``execute`` propagate to every
request of the failed batch.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.simgrid.models import model_key_of


def batch_size_bucket(size: int) -> str:
    """Histogram bucket label for a batch of ``size`` requests.

    Exact for the interesting small sizes (1 and 2), power-of-two ranges
    above (``"3-4"``, ``"5-8"``, …) so the distribution dict stays tiny
    whatever ``max_batch`` is."""
    if size <= 2:
        return str(size)
    upper = 4
    while upper < size:
        upper *= 2
    return f"{upper // 2 + 1}-{upper}"


@dataclass
class PendingRequest:
    """One queued forecast request plus its completion future."""

    platform_name: str
    transfers: Sequence
    model: object
    full_resolve: bool
    #: in-flight transfers sharing bandwidth (not part of the answer)
    ongoing: Sequence = ()
    #: solver path: batched numpy kernel (True) or scalar arena walk
    vectorized: bool = True
    future: Future = field(default_factory=Future)

    def group_key(self) -> tuple:
        """Requests sharing this key can ride one ``predict_transfers_many``
        fan-out (same platform, model parameters and kernel mode)."""
        return (self.platform_name, model_key_of(self.model),
                self.full_resolve, self.vectorized)


class RequestCoalescer:
    """Drains bursts of requests into batches on a background thread."""

    def __init__(
        self,
        execute: Callable[[list[PendingRequest]], None],
        window: float = 0.005,
        max_batch: int = 256,
    ) -> None:
        if window < 0:
            raise ValueError(f"batch window must be >= 0, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.execute = execute
        self.window = float(window)
        self.max_batch = int(max_batch)
        self._queue: "queue.Queue[Optional[PendingRequest]]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        # lifetime counters, surfaced through stats()
        self.batches = 0
        self.requests = 0
        self.coalesced = 0   # requests that shared a batch with at least one other
        self.max_batch_seen = 0
        #: batch-size distribution: bucket label → batch count (buckets
        #: are power-of-two ranges, so the histogram stays small at any
        #: max_batch).  Written only by the drain thread.
        self.batch_size_hist: dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._thread is not None

    def start(self) -> "RequestCoalescer":
        with self._lock:
            self._start_locked()
            return self

    def _start_locked(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="forecast-batcher", daemon=True)
            self._thread.start()

    def stop(self) -> None:
        # the sentinel is put and the thread joined under the lock, so a
        # concurrent submit() cannot start a replacement drain thread that
        # would swallow the sentinel and leave this join hanging
        with self._lock:
            thread = self._thread
            if thread is None:
                return
            self._queue.put(None)  # wake the drain loop
            thread.join()
            self._thread = None

    def __enter__(self) -> "RequestCoalescer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- submission --------------------------------------------------------------

    def submit(
        self,
        platform_name: str,
        transfers: Sequence,
        model: object,
        full_resolve: bool = False,
        ongoing: Sequence = (),
        vectorized: bool = True,
    ) -> Future:
        """Queue one request; returns the future carrying its forecasts."""
        pending = PendingRequest(
            platform_name, transfers, model, full_resolve, ongoing,
            vectorized)
        # enqueue under the same lock stop() holds across sentinel+join, so
        # a request can never land behind the sentinel of an exiting drain
        # thread (which would leave its future unresolved forever) — it
        # either precedes the sentinel or restarts a fresh thread
        with self._lock:
            self._start_locked()
            self._queue.put(pending)
        return pending.future

    # -- drain loop --------------------------------------------------------------

    def _collect_batch(self, first: PendingRequest) -> list[PendingRequest]:
        """``first`` plus everything arriving within the window (bounded)."""
        batch = [first]
        end = time.monotonic() + self.window
        while len(batch) < self.max_batch:
            remaining = end - time.monotonic()
            if remaining <= 0:
                # window closed — sweep anything already queued, don't wait
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
            else:
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
            if item is None:  # stop sentinel: push back for the outer loop
                self._queue.put(None)
                break
            batch.append(item)
        return batch

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            batch = self._collect_batch(item)
            self.batches += 1
            self.requests += len(batch)
            if len(batch) > 1:
                self.coalesced += len(batch)
            self.max_batch_seen = max(self.max_batch_seen, len(batch))
            bucket = batch_size_bucket(len(batch))
            self.batch_size_hist[bucket] = \
                self.batch_size_hist.get(bucket, 0) + 1
            try:
                self.execute(batch)
            except BaseException as exc:  # noqa: BLE001 - fan failure out
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        return {
            "window_s": self.window,
            "max_batch": self.max_batch,
            "started": self.started,
            "batches": self.batches,
            "requests": self.requests,
            "coalesced": self.coalesced,
            "max_batch_seen": self.max_batch_seen,
            "batch_size_hist": dict(self.batch_size_hist),
        }
