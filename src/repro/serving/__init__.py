"""Serving subsystem: warm worker pool, micro-batching, forecast cache.

The production request path in front of
:class:`~repro.core.forecast.NetworkForecastService` — see
``docs/SERVING.md`` for the architecture and invalidation rules.
"""

from repro.serving.batcher import PendingRequest, RequestCoalescer
from repro.serving.cache import (
    ForecastCache,
    canonical_transfers,
    forecast_cache_key,
)
from repro.serving.pool import WarmWorkerPool
from repro.serving.service import ForecastServingService, LatencyCounter

__all__ = [
    "ForecastCache",
    "ForecastServingService",
    "LatencyCounter",
    "PendingRequest",
    "RequestCoalescer",
    "WarmWorkerPool",
    "canonical_transfers",
    "forecast_cache_key",
]
