"""Warm worker pool: long-lived forecast processes.

``NetworkForecastService.predict_transfers_many(workers=N)`` historically
spun up a throwaway :class:`~concurrent.futures.ProcessPoolExecutor` per
call, so every batch paid process start-up *and* a platform rebuild in each
worker.  :class:`WarmWorkerPool` keeps those processes alive across
requests: each worker builds its service once (in the pool initializer, so
the first request is already warm), and with it keeps the incremental
``SharingSystem`` arena allocations, the platform's route LRU and the
per-route model memos hot.

Recycling bounds worker state: after ``max_requests`` forecasts the pool
restarts its executor generation (fresh processes, fresh services), and
:meth:`ensure_epoch` restarts it whenever the global link-mutation epoch
moved — a platform recalibration in the serving process must not keep
answering from workers built against the old capacities.  Under the
``fork`` start method a recycle re-forks from the *current* parent, so a
session-cached factory hands workers the recalibrated platforms for free.
"""

from __future__ import annotations

import multiprocessing
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Optional, Sequence

from repro._util.parallel import pool_chunk_size
from repro.core.forecast import (
    NetworkForecastService,
    TransferForecast,
    TransferSpec,
)
from repro.serving.cache import canonical_transfers
from repro.simgrid.platform import link_epoch

#: Worker-process state: the resident service built by the pool initializer.
_WORKER_STATE: dict = {}


def _warm_worker_init(service_factory: Callable[[], NetworkForecastService]) -> None:
    """Pool initializer: build the forecast service once per worker."""
    _WORKER_STATE["service"] = service_factory()


def _warm_worker_task(payload: tuple) -> list[TransferForecast]:
    """One forecast request against the worker's resident service."""
    platform_name, transfers, model, full_resolve, vectorized, ongoing = payload
    service: NetworkForecastService = _WORKER_STATE["service"]
    return service.predict_transfers(
        platform_name, transfers, model=model, full_resolve=full_resolve,
        vectorized=vectorized, ongoing=ongoing,
    )


class WarmWorkerPool:
    """A pool of long-lived worker processes answering forecast requests.

    ``service_factory`` must be picklable (a module-level callable or a
    ``functools.partial`` over one); each worker calls it exactly once per
    pool generation.  The pool itself is thread-safe: the serving layer's
    batcher thread and direct callers may share it.
    """

    def __init__(
        self,
        service_factory: Callable[[], NetworkForecastService],
        workers: int = 2,
        max_requests: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"warm pool needs >= 1 worker, got {workers}")
        if max_requests is not None and max_requests < 1:
            raise ValueError(f"max_requests must be >= 1, got {max_requests}")
        self.service_factory = service_factory
        self.workers = int(workers)
        self.max_requests = max_requests
        self._lock = threading.RLock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._epoch: Optional[int] = None
        self._generation_requests = 0
        self._spawn_warned = False
        # lifetime counters, surfaced through stats()
        self.requests = 0
        self.batches = 0
        self.recycles = 0
        #: executor generations ever started (1 on first start; each
        #: recycle — max_requests or epoch-driven — starts another)
        self.generations = 0

    # -- lifecycle ---------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._executor is not None

    def start(self) -> "WarmWorkerPool":
        """Spawn the worker processes (idempotent)."""
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_warm_worker_init,
                    initargs=(self.service_factory,),
                )
                self._epoch = link_epoch()
                self._generation_requests = 0
                self.generations += 1
            return self

    def stop(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def recycle(self) -> None:
        """Replace every worker with a fresh process + freshly built service."""
        with self._lock:
            self.stop()
            self.recycles += 1
            self.start()

    def ensure_epoch(self) -> None:
        """Recycle if any link mutated since this generation was forked.

        Recycling restores recalibrated capacities only when workers can
        see them: under ``fork`` the new generation inherits the parent's
        mutated platforms (via a session-cached factory), while under
        ``spawn`` the factory rebuilds pristine platforms in a fresh
        interpreter — a one-time warning flags that case, and the factory
        must then derive its link state from shared configuration.
        """
        with self._lock:
            if self._executor is not None and self._epoch != link_epoch():
                if (multiprocessing.get_start_method(allow_none=True)
                        not in (None, "fork") and not self._spawn_warned):
                    self._spawn_warned = True
                    warnings.warn(
                        "WarmWorkerPool recycling under a non-fork start "
                        "method: workers rebuilt from the factory will not "
                        "see in-process link recalibration",
                        RuntimeWarning, stacklevel=2,
                    )
                self.recycle()

    def __enter__(self) -> "WarmWorkerPool":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- the service -------------------------------------------------------------

    def predict_many(
        self,
        platform_name: str,
        requests: Sequence[Sequence[TransferSpec] | Sequence[tuple[str, str, float]]],
        model: Optional[object] = None,
        full_resolve: bool = False,
        vectorized: bool = True,
        ongoing: Optional[Sequence[Sequence]] = None,
    ) -> list[list[TransferForecast]]:
        """Fan one batch of independent requests out over the warm workers.

        ``ongoing`` optionally gives each request its own in-flight transfer
        list (parallel to ``requests``).  Chunking mirrors the campaign
        executor and answers come back in request order, so results are
        bit-identical to serial ``predict_transfers`` calls — every request
        is its own simulation.
        """
        requests = list(requests)
        flights = list(ongoing) if ongoing is not None else [()] * len(requests)
        if len(flights) != len(requests):
            raise ValueError(
                f"ongoing must parallel requests: {len(flights)} != {len(requests)}"
            )
        payloads = [
            (platform_name, canonical_transfers(transfers), model, full_resolve,
             vectorized, canonical_transfers(flight))
            for transfers, flight in zip(requests, flights)
        ]
        if not payloads:
            return []
        # one batch at a time: batches are the unit of fan-out, and holding
        # the lock keeps a concurrent recycle() from shutting the executor
        # down under an in-flight map
        with self._lock:
            self.start()
            self.ensure_epoch()
            if (self.max_requests is not None
                    and self._generation_requests >= self.max_requests):
                self.recycle()
            self.batches += 1
            self.requests += len(payloads)
            self._generation_requests += len(payloads)
            chunk = pool_chunk_size(len(payloads), self.workers)
            return list(self._executor.map(
                _warm_worker_task, payloads, chunksize=chunk))

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        # deliberately lock-free: predict_many holds the lock for a whole
        # batch, and a monitoring read (/pilgrim/stats) must not stall
        # behind an in-flight fan-out.  Counter reads are individually
        # atomic under the GIL; the snapshot may straddle a batch boundary.
        return {
            "workers": self.workers,
            "started": self.started,
            "requests": self.requests,
            "batches": self.batches,
            "recycles": self.recycles,
            "generations": self.generations,
            "generation_requests": self._generation_requests,
            "max_requests": self.max_requests,
            "epoch": self._epoch,
        }
