"""The serving frontend: cache → coalescer → warm pool → forecasts.

:class:`ForecastServingService` sits in front of a
:class:`~repro.core.forecast.NetworkForecastService` and gives it a
production request path:

1. an optional **surrogate tier** (:class:`~repro.surrogate.tier.
   SurrogateTier`) answers in microseconds from a learned regressor when
   its predicted uncertainty is within bound — before even the cache, so
   confident answers never touch the simulation stack at all,
2. the **forecast cache** answers repeated queries without simulating
   (epoch-keyed, so link recalibration invalidates implicitly),
3. misses are queued on the **request coalescer**, which micro-batches
   concurrent arrivals into one fan-out,
4. batches execute on the **warm worker pool** (``workers > 0``) or inline
   on the resident service (``workers == 0`` — the right default on small
   hosts: the in-process arena and route LRU stay hot with zero IPC).

Every path below the surrogate yields bit-identical answers to a direct
``service.predict_transfers`` call: caching stores exact results, batching
only groups transport, and pool workers run the same simulation code.
Surrogate answers are approximate by design and are **never** written to
the forecast cache — a fallback or a disabled tier always reaches the
exact path untainted.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, Optional, Sequence

from repro.core.forecast import (
    NetworkForecastService,
    TransferForecast,
    TransferSpec,
)
from repro.serving.batcher import PendingRequest, RequestCoalescer
from repro.serving.cache import ForecastCache, canonical_transfers, forecast_cache_key
from repro.serving.pool import WarmWorkerPool


class LatencyCounter:
    """Wall-clock request latency: count / mean / max, thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total_s += seconds
            self.max_s = max(self.max_s, seconds)

    def info(self) -> dict:
        with self._lock:
            mean = self.total_s / self.count if self.count else 0.0
            return {
                "count": self.count,
                "total_s": self.total_s,
                "mean_s": mean,
                "max_s": self.max_s,
            }


class ForecastServingService:
    """Cache + micro-batching + warm pool in front of the forecast service.

    ``workers > 0`` requires a picklable ``service_factory`` rebuilding an
    equivalent service inside each pool worker (same contract as
    ``predict_transfers_many``).  ``cache_size=0`` disables the cache
    without changing any observable answer.  ``surrogate`` (a
    :class:`~repro.surrogate.tier.SurrogateTier`) is consulted first when
    given; its fallbacks reach the exact path unchanged.
    """

    def __init__(
        self,
        service: NetworkForecastService,
        service_factory: Optional[Callable[[], NetworkForecastService]] = None,
        workers: int = 0,
        window: float = 0.005,
        cache_size: int = 4096,
        max_batch: int = 256,
        max_requests: Optional[int] = None,
        surrogate: Optional[object] = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if workers > 0 and service_factory is None:
            raise ValueError(
                "ForecastServingService(workers > 0) needs a picklable "
                "service_factory rebuilding the service in each pool worker"
            )
        self.service = service
        self.surrogate = surrogate  # SurrogateTier or None
        self.cache = ForecastCache(maxsize=cache_size)
        self.latency = LatencyCounter()
        self.batcher = RequestCoalescer(
            self._execute_batch, window=window, max_batch=max_batch)
        self.pool: Optional[WarmWorkerPool] = None
        if workers > 0:
            self.pool = WarmWorkerPool(
                service_factory, workers=workers, max_requests=max_requests)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ForecastServingService":
        self.batcher.start()
        if self.pool is not None:
            self.pool.start()
        return self

    def stop(self) -> None:
        self.batcher.stop()
        if self.pool is not None:
            self.pool.stop()

    def __enter__(self) -> "ForecastServingService":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- the request path --------------------------------------------------------

    def predict(
        self,
        platform_name: str,
        transfers: Sequence[TransferSpec] | Iterable[tuple[str, str, float]],
        model: Optional[object] = None,
        ongoing: Sequence[TransferSpec] | Iterable[tuple[str, str, float]] = (),
        full_resolve: bool = False,
        vectorized: bool = True,
        timeout: Optional[float] = None,
    ) -> list[TransferForecast]:
        """One PNFS answer through the serving path (cache → batch → pool).

        Blocks until the forecast is available; ``timeout`` bounds the wait
        (seconds).  Raises exactly what ``predict_transfers`` would for bad
        requests — errors travel back through the request future.
        """
        t0 = time.perf_counter()
        request_model = model if model is not None else self.service.model
        specs = canonical_transfers(transfers)
        ongoing_specs = canonical_transfers(ongoing)
        if self.surrogate is not None:
            answered = self.surrogate.try_answer(
                self.service, platform_name, request_model, specs,
                ongoing_specs, full_resolve)
            if answered is not None:
                self.latency.record(time.perf_counter() - t0)
                return answered
        key = forecast_cache_key(
            platform_name, request_model, specs, ongoing_specs, full_resolve,
            vectorized)
        cached = self.cache.get(key)
        if cached is not None:
            self.latency.record(time.perf_counter() - t0)
            return cached
        future = self.batcher.submit(
            platform_name, specs, request_model, full_resolve=full_resolve,
            ongoing=ongoing_specs, vectorized=vectorized,
        )
        forecasts = future.result(timeout=timeout)
        self.cache.put(key, forecasts)
        self.latency.record(time.perf_counter() - t0)
        return forecasts

    # -- batch execution (batcher thread) ----------------------------------------

    def _execute_batch(self, batch: list[PendingRequest]) -> None:
        """Run one coalesced batch and resolve every request future.

        Requests are grouped by (platform, model, mode); each group is one
        campaign-style fan-out.  Within a group, *identical* requests are
        single-flighted — the motivating burst (N clients issuing the same
        probe before any answer lands in the cache) simulates once and
        resolves all N futures.  Answers are per request either way, so
        nothing depends on what else rode the batch.
        """
        groups: dict[tuple, list[PendingRequest]] = {}
        for pending in batch:
            groups.setdefault(pending.group_key(), []).append(pending)
        for group in groups.values():
            first = group[0]
            flights: dict[tuple, list[PendingRequest]] = {}
            for pending in group:
                key = (tuple(pending.transfers), tuple(pending.ongoing))
                flights.setdefault(key, []).append(pending)
            keys = list(flights)
            try:
                results = self._execute_group(
                    first.platform_name,
                    [list(transfers) for transfers, _ in keys],
                    [list(ongoing) for _, ongoing in keys],
                    first.model,
                    first.full_resolve,
                    first.vectorized,
                )
            except BaseException as exc:  # noqa: BLE001 - per-group isolation
                for pending in group:
                    pending.future.set_exception(exc)
                continue
            for key, forecasts in zip(keys, results):
                for pending in flights[key]:
                    # each waiter gets its own list: answers are shared
                    # values, not shared containers
                    pending.future.set_result(list(forecasts))

    def _execute_group(
        self,
        platform_name: str,
        requests: list,
        ongoing: list,
        model: object,
        full_resolve: bool,
        vectorized: bool = True,
    ) -> list[list[TransferForecast]]:
        if self.pool is not None:
            return self.pool.predict_many(
                platform_name, requests, model=model,
                full_resolve=full_resolve, vectorized=vectorized,
                ongoing=ongoing,
            )
        return [
            self.service.predict_transfers(
                platform_name, transfers, model=model,
                ongoing=flight, full_resolve=full_resolve,
                vectorized=vectorized,
            )
            for transfers, flight in zip(requests, ongoing)
        ]

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        """Cache + pool + batcher + latency counters, one JSON-able dict."""
        return {
            "surrogate": (self.surrogate.stats()
                          if self.surrogate is not None
                          else {"enabled": False}),
            "cache": self.cache.info(),
            "pool": self.pool.stats() if self.pool is not None
            else {"workers": 0, "mode": "inline"},
            "batcher": self.batcher.stats(),
            "latency": self.latency.info(),
        }
