"""Epoch-keyed forecast cache.

A bounded LRU over complete PNFS answers.  The key is the full identity of
a forecast::

    (platform name, link-mutation epoch, model id, transfers, ongoing,
    full-resolve mode, vectorized mode)

where ``transfers``/``ongoing`` are canonicalized tuples of
``(src, dst, size-in-bytes)`` — unit strings and :class:`TransferSpec`
objects normalize to the same key — and the epoch is the global
:func:`repro.simgrid.platform.link_epoch` captured at lookup time.

Invalidation is *implicit*: any in-place link recalibration (the latency
feed, a scenario dynamics schedule, a manual bandwidth edit) bumps the
epoch, so every previously cached answer simply becomes unreachable and
ages out of the LRU.  No subscription or callback wiring is needed — the
cache reuses the exact staleness mechanism the route/model memos already
trust.

The key is **order-sensitive** on purpose: max-min sharing has a unique
solution, but the solver's floating-point reduction order follows request
order, so only an identical request list is guaranteed a bit-identical
answer.  A permuted request is a clean miss, never a wrong hit.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Sequence

from repro._util.lru import _MISS, BoundedLRU
from repro.core.forecast import TransferForecast, TransferSpec
from repro.simgrid.models import model_key_of
from repro.simgrid.platform import link_epoch


def canonical_transfers(
    transfers: Sequence[TransferSpec] | Iterable[tuple[str, str, float]],
) -> tuple[tuple[str, str, float], ...]:
    """Normalize a transfer list to hashable ``(src, dst, bytes)`` tuples.

    Accepts :class:`TransferSpec` objects or raw tuples (sizes may be unit
    strings); both forms of the same request map to the same key.
    Idempotent with a fast path: an already-canonical tuple is returned
    as-is, so the hot serving path normalizes (and validates) only once.
    """
    items = tuple(transfers)
    if all(type(t) is tuple and len(t) == 3 and type(t[2]) is float
           for t in items):
        return items
    specs = [
        t if isinstance(t, TransferSpec) else TransferSpec(*t) for t in items
    ]
    return tuple((s.src, s.dst, float(s.size)) for s in specs)


def forecast_cache_key(
    platform_name: str,
    model: object,
    transfers: Sequence[TransferSpec] | Iterable[tuple[str, str, float]],
    ongoing: Sequence[TransferSpec] | Iterable[tuple[str, str, float]] = (),
    full_resolve: bool = False,
    vectorized: bool = True,
    epoch: Optional[int] = None,
) -> tuple:
    """The cache key for one forecast request.

    ``model`` is identified by :func:`repro.simgrid.models.model_key_of` —
    sharing models are frozen dataclasses whose ``model_key()`` pins every
    parameter (factors, gamma, window tuning), so two models with the same
    key are interchangeable for forecasting.
    """
    return (
        platform_name,
        link_epoch() if epoch is None else epoch,
        model_key_of(model),
        canonical_transfers(transfers),
        canonical_transfers(ongoing),
        bool(full_resolve),
        bool(vectorized),
    )


class ForecastCache(BoundedLRU):
    """Bounded, thread-safe LRU of forecast answers (the serving sibling of
    the platform's ``RouteCache``; both derive from
    :class:`repro._util.lru.BoundedLRU`).  On top of the base it adds a
    lock (HTTP handler threads share one cache) and value copying, so a
    caller mutating its answer list cannot poison later hits.

    ``maxsize=0`` builds a disabled cache: every lookup misses, nothing is
    stored — the serving layer uses this for its ``cache off`` mode so the
    counters still read consistently.
    """

    __slots__ = ("_lock",)

    def __init__(self, maxsize: int = 4096) -> None:
        super().__init__(maxsize)
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def get(self, key: tuple) -> Optional[list[TransferForecast]]:
        with self._lock:
            # the base class counts any stored value as a hit (even None);
            # probe with the miss sentinel so the copy applies to hits only
            entry = super().get(key, _MISS)
            return None if entry is _MISS else list(entry)

    def put(self, key: tuple, forecasts: Sequence[TransferForecast]) -> None:
        with self._lock:
            super().put(key, list(forecasts))

    def clear(self) -> None:
        with self._lock:
            super().clear()

    def info(self) -> dict:
        """Counters snapshot: enabled, hits, misses, evictions, size,
        maxsize."""
        with self._lock:
            return {"enabled": self.enabled, **super().info()}
