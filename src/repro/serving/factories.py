"""Picklable service factories for pool workers, benches and tests.

Warm-pool workers rebuild their forecast service from a factory shipped
over the process boundary, so factories must be module-level callables (or
``functools.partial`` over one).  These cover the common cases:

- :func:`star_forecast_service` — a synthetic full-mesh star cluster,
  cheap to simulate but with a real per-worker build cost, which is what
  the serving bench needs to contrast warm vs. cold pools;
- :func:`grid5000_forecast_service` — the session-cached Grid'5000
  service (under the default ``fork`` start method, workers inherit the
  parent's already-built platforms at fork time for free).
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.core.forecast import NetworkForecastService
from repro.simgrid.builder import build_star_cluster

#: Platform name used by the star factories (and the serving bench).
STAR_PLATFORM = "serving-star"


def star_forecast_service(n_hosts: int = 64,
                          name: str = STAR_PLATFORM) -> NetworkForecastService:
    """A forecast service over a fresh full-mesh star cluster."""
    return NetworkForecastService({name: build_star_cluster(name, n_hosts)})


def star_factory(n_hosts: int = 64,
                 name: str = STAR_PLATFORM) -> Callable[[], NetworkForecastService]:
    """A picklable factory building :func:`star_forecast_service`."""
    return partial(star_forecast_service, n_hosts, name)


def grid5000_forecast_service() -> NetworkForecastService:
    """The session-cached Grid'5000 forecast service (g5k_test + cabinets)."""
    from repro.experiments.environment import forecast_service

    return forecast_service()
