"""Picklable service factories for pool workers, benches and tests.

Warm-pool workers rebuild their forecast service from a factory shipped
over the process boundary, so factories must be module-level callables (or
``functools.partial`` over one).  These cover the common cases:

- :func:`star_forecast_service` — a synthetic full-mesh star cluster,
  cheap to simulate but with a real per-worker build cost, which is what
  the serving bench needs to contrast warm vs. cold pools;
- :func:`grid5000_forecast_service` — the session-cached Grid'5000
  service (under the default ``fork`` start method, workers inherit the
  parent's already-built platforms at fork time for free).
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.core.forecast import NetworkForecastService
from repro.simgrid.builder import build_star_cluster

#: Platform name used by the star factories (and the serving bench).
STAR_PLATFORM = "serving-star"


def star_forecast_service(n_hosts: int = 64,
                          name: str = STAR_PLATFORM) -> NetworkForecastService:
    """A forecast service over a fresh full-mesh star cluster."""
    return NetworkForecastService({name: build_star_cluster(name, n_hosts)})


def star_factory(n_hosts: int = 64,
                 name: str = STAR_PLATFORM) -> Callable[[], NetworkForecastService]:
    """A picklable factory building :func:`star_forecast_service`."""
    return partial(star_forecast_service, n_hosts, name)


def star_fleet_service(n_platforms: int = 4, n_hosts: int = 16,
                       prefix: str = STAR_PLATFORM) -> NetworkForecastService:
    """A forecast service over ``n_platforms`` independent star clusters.

    The gateway shards traffic by *platform*, so a single-platform service
    pins every request to one shard; benches and tests that want real
    cross-shard parallelism spread load over a fleet of platforms
    (``{prefix}-0`` … ``{prefix}-{n-1}``)."""
    return NetworkForecastService({
        f"{prefix}-{i}": build_star_cluster(f"{prefix}-{i}", n_hosts)
        for i in range(n_platforms)
    })


def star_fleet_factory(n_platforms: int = 4, n_hosts: int = 16,
                       prefix: str = STAR_PLATFORM) -> Callable[[], NetworkForecastService]:
    """A picklable factory building :func:`star_fleet_service`."""
    return partial(star_fleet_service, n_platforms, n_hosts, prefix)


def grid5000_forecast_service() -> NetworkForecastService:
    """The session-cached Grid'5000 forecast service (g5k_test + cabinets)."""
    from repro.experiments.environment import forecast_service

    return forecast_service()


#: Live platforms registered for pool workers (name → Platform).  Under the
#: ``fork`` start method workers inherit this dict at fork time, so a pool
#: recycle after a recalibration epoch bump hands every new worker the
#: *mutated* platform for free — the mechanism `repro metrology run
#: --workers` relies on.
_LIVE_PLATFORMS: dict = {}


def register_live_platform(name: str, platform) -> None:
    """Expose a live (mutable) platform to :func:`live_platform_service`.

    Re-registering a name replaces the platform — each metrology demo owns
    its platform for the duration of a run.
    """
    _LIVE_PLATFORMS[name] = platform


def live_platform_service(name: str) -> NetworkForecastService:
    """A forecast service over the registered live platform ``name``."""
    platform = _LIVE_PLATFORMS.get(name)
    if platform is None:
        raise KeyError(
            f"no live platform registered as {name!r} — workers not forked "
            f"from a process that called register_live_platform (non-fork "
            f"start method?)"
        )
    return NetworkForecastService({name: platform})


def live_platform_factory(name: str) -> Callable[[], NetworkForecastService]:
    """A picklable factory building :func:`live_platform_service`."""
    return partial(live_platform_service, name)
