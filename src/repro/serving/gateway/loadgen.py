"""Asyncio load generator: thousands of keep-alive clients, one thread.

The gateway bench needs 1k+ *concurrent* keep-alive connections hammering
``POST /pilgrim/predict_transfers`` — a thread-per-client generator would
melt long before the server under test does.  This generator multiplexes
every client on one event loop: each client owns one persistent connection
and runs a closed loop (send → await full response → record → repeat) over
a shared query set, so offered concurrency equals the number of clients.

Responses are parsed with a minimal HTTP/1.1 reader (status line, headers,
``Content-Length`` body — the only answer shape either Pilgrim server
produces).  Each worker records per-request latency and outcome; the
:class:`LoadReport` aggregates counts, percentiles, throughput and the
distinct response bodies per query index so callers can assert
bit-identical answers against serial ground truth.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.serving.gateway.metrics import percentile


@dataclass(frozen=True)
class LoadQuery:
    """One pre-encoded request replayed by the clients."""

    method: str
    path: str
    body: bytes = b""

    def encode(self, host: str) -> bytes:
        head = (
            f"{self.method} {self.path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(self.body)}\r\n"
            f"\r\n"
        )
        return head.encode("ascii") + self.body


@dataclass
class LoadReport:
    """Aggregated outcome of one load run."""

    clients: int
    completed: int = 0
    shed: int = 0                      # 503 responses (admission)
    errors: int = 0                    # non-2xx/non-503, or transport errors
    connect_failures: int = 0
    duration_s: float = 0.0
    latencies_s: list = field(default_factory=list)
    #: query index → set of distinct 200-response bodies observed
    bodies: dict = field(default_factory=dict)
    #: query index → set of distinct Retry-After header values on sheds
    retry_after_seen: set = field(default_factory=set)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return percentile(sorted(self.latencies_s), q) * 1e3

    def summary(self) -> dict:
        return {
            "clients": self.clients,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "connect_failures": self.connect_failures,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.percentile_ms(0.50),
            "p99_ms": self.percentile_ms(0.99),
        }


async def _read_response(reader: asyncio.StreamReader) -> tuple[int, dict, bytes]:
    """(status, headers, body) of one HTTP/1.1 response."""
    line = await reader.readline()
    if not line:
        raise ConnectionError("server closed the connection")
    parts = line.decode("ascii", errors="replace").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ConnectionError(f"malformed status line: {line!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        header_line = await reader.readline()
        if not header_line or header_line in (b"\r\n", b"\n"):
            break
        name, _, value = header_line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


async def _client_worker(
    client_id: int,
    host: str,
    port: int,
    queries: Sequence[LoadQuery],
    requests_per_client: int,
    report: LoadReport,
    lock: asyncio.Lock,
) -> None:
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError:
        async with lock:
            report.connect_failures += 1
        return
    completed = shed = errors = 0
    latencies: list[float] = []
    bodies: dict[int, set] = {}
    retry_after: set = set()
    try:
        for i in range(requests_per_client):
            qi = (client_id + i) % len(queries)
            payload = queries[qi].encode(host)
            t0 = time.perf_counter()
            writer.write(payload)
            await writer.drain()
            status, headers, body = await _read_response(reader)
            latencies.append(time.perf_counter() - t0)
            if status == 200:
                completed += 1
                bodies.setdefault(qi, set()).add(body)
            elif status == 503:
                shed += 1
                if "retry-after" in headers:
                    retry_after.add(headers["retry-after"])
            else:
                errors += 1
            if headers.get("connection", "").lower() == "close":
                raise ConnectionError("server closed a keep-alive stream")
    except (ConnectionError, asyncio.IncompleteReadError, OSError):
        errors += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    async with lock:
        report.completed += completed
        report.shed += shed
        report.errors += errors
        report.latencies_s.extend(latencies)
        report.retry_after_seen.update(retry_after)
        for qi, distinct in bodies.items():
            report.bodies.setdefault(qi, set()).update(distinct)


async def _run(host: str, port: int, queries: Sequence[LoadQuery],
               clients: int, requests_per_client: int) -> LoadReport:
    report = LoadReport(clients=clients)
    lock = asyncio.Lock()
    tasks = [
        asyncio.create_task(_client_worker(
            i, host, port, queries, requests_per_client, report, lock))
        for i in range(clients)
    ]
    t0 = time.perf_counter()
    await asyncio.gather(*tasks)
    report.duration_s = time.perf_counter() - t0
    return report


def run_load(
    host: str,
    port: int,
    queries: Sequence[LoadQuery],
    clients: int = 100,
    requests_per_client: int = 10,
) -> LoadReport:
    """Blocking entry point: run the swarm, return the aggregated report.

    Runs its own event loop, so it must be called from a thread that is
    not already inside one (benches and tests call it from the main
    thread while the gateway's loop lives in its own daemon thread).
    """
    if not queries:
        raise ValueError("at least one query is required")
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    return asyncio.run(_run(host, port, queries, clients,
                            requests_per_client))
