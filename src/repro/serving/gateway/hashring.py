"""Consistent-hash ring for shard routing.

The gateway pins every routing key (a platform name, or the request path
for platform-less routes) to one shard so each shard's warm state — its
``ForecastCache``, the platform route LRU, the solver arena — specializes
on the traffic it actually serves.  A consistent ring rather than
``hash(key) % N`` so that resizing the shard fleet remaps only ``~1/N`` of
the keyspace: the other shards keep their hot caches.

Hashing is :func:`hashlib.sha1` (stable across processes and runs —
``hash()`` is salted per interpreter and would route every restart
differently).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence


def _hash64(data: str) -> int:
    """First 8 bytes of sha1, as an int — stable, well-mixed, cheap."""
    return int.from_bytes(
        hashlib.sha1(data.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRing:
    """Maps string keys to member nodes via consistent hashing.

    ``replicas`` virtual points per node smooth the load split (with 64
    vnodes the max/min key-share imbalance across 4 nodes stays within a
    few tens of percent, enough for cache affinity — shard *occupancy*
    balancing is the admission controller's job, not the ring's).
    """

    def __init__(self, nodes: Iterable[object] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._nodes: list[object] = []
        self._points: list[int] = []      # sorted vnode hashes
        self._owners: list[object] = []   # node at each point (parallel)
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> Sequence[object]:
        return tuple(self._nodes)

    def add(self, node: object) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.append(node)
        for replica in range(self.replicas):
            point = _hash64(f"{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: object) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != node]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def node(self, key: str) -> object:
        """The shard owning ``key`` (clockwise successor on the ring)."""
        if not self._nodes:
            raise LookupError("hash ring is empty")
        index = bisect.bisect(self._points, _hash64(key))
        if index == len(self._points):  # wrap past the last point
            index = 0
        return self._owners[index]

    def distribution(self, keys: Iterable[str]) -> dict:
        """``{node: key count}`` over ``keys`` — balance introspection."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node(key)] += 1
        return counts
