"""Admission control: bounded in-flight budget + waiting room, then shed.

The gateway admits a request while fewer than ``max_inflight`` requests
are executing; above that, up to ``queue_depth`` more may wait (they are
"queued" in the sense that shards haven't freed capacity for them — the
transport itself never buffers unboundedly).  Beyond
``max_inflight + queue_depth`` the request is *shed*: an immediate
``503`` with a ``Retry-After`` hint, never a hang — a client that backs
off and retries is cheaper than a thread parked on a dead queue.

``GET /pilgrim/stats`` is exempt (monitoring must answer precisely when
the gateway is saturated); the front end enforces that, not this class.
"""

from __future__ import annotations

import threading


class AdmissionController:
    """Thread-safe in-flight accounting with a shed threshold."""

    def __init__(self, max_inflight: int = 256, queue_depth: int = 1024,
                 retry_after_s: float = 1.0) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        self.max_inflight = int(max_inflight)
        self.queue_depth = int(queue_depth)
        self.retry_after_s = float(retry_after_s)
        self._lock = threading.Lock()
        self.in_flight = 0
        # lifetime counters
        self.admitted = 0
        self.shed = 0
        self.peak_in_flight = 0

    @property
    def limit(self) -> int:
        return self.max_inflight + self.queue_depth

    def try_admit(self) -> bool:
        """Admit (and count) one request, or refuse at the shed threshold."""
        with self._lock:
            if self.in_flight >= self.limit:
                self.shed += 1
                return False
            self.in_flight += 1
            self.admitted += 1
            if self.in_flight > self.peak_in_flight:
                self.peak_in_flight = self.in_flight
            return True

    def release(self) -> None:
        with self._lock:
            if self.in_flight <= 0:
                raise RuntimeError("release() without a matching try_admit()")
            self.in_flight -= 1

    def retry_after(self) -> float:
        """The Retry-After hint (seconds) for a shed response."""
        return self.retry_after_s

    def snapshot(self) -> dict:
        with self._lock:
            queued = max(0, self.in_flight - self.max_inflight)
            return {
                "max_inflight": self.max_inflight,
                "queue_depth": self.queue_depth,
                "in_flight": self.in_flight,
                "queued": queued,
                "admitted": self.admitted,
                "shed": self.shed,
                "peak_in_flight": self.peak_in_flight,
            }
