"""Shard processes: shared-nothing serving stacks behind the gateway.

Each shard is a child process owning its *own* full request path — a
:class:`~repro.core.framework.Pilgrim` router over a
:class:`~repro.serving.service.ForecastServingService` (epoch-keyed
``ForecastCache``, ``RequestCoalescer``, optional ``WarmWorkerPool``) built
from a picklable ``service_factory`` (same contract as the warm pool).
Nothing is shared between shards: a shard's cache, route LRU and solver
arena specialize on the keys the gateway's hash ring sends it.

Transport is one duplex :func:`multiprocessing.Pipe` per shard carrying
tagged tuples:

- parent → shard: ``("req", rid, method, path, query, body)``,
  ``("stats", rid)``, ``("sync", epoch, link_states)``, ``("stop",)``
- shard → parent: ``("ready", pid)``, ``("res", rid, status, payload)``

**Epoch propagation**: the global link-mutation epoch is a per-process
counter, so a recalibration in the gateway process is invisible to a shard
that forked before it.  The gateway watches its local epoch and broadcasts
``("sync", epoch, {platform: {link: (bw, lat)}})`` ahead of the next
dispatch; the shard applies whichever link values actually changed, which
bumps the *shard-local* epoch through the normal ``Link`` setters — so the
shard's ``ForecastCache``, route memos and warm-pool generation all
invalidate through the exact mechanism they already trust.  Pipes deliver
in order: a request sent after the sync always sees the new capacities.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from multiprocessing.connection import Connection
from typing import Callable, Optional

#: Message tags (parent → shard).
REQ, STATS, SYNC, STOP = "req", "stats", "sync", "stop"
#: Message tags (shard → parent).
READY, RES = "ready", "res"


def apply_link_states(service, link_states: dict) -> int:
    """Apply ``{platform: {link: (bandwidth, latency)}}``; returns the
    number of links actually mutated.  Unchanged values are skipped so a
    redundant sync does not bump the local epoch (and flush caches) for
    nothing."""
    changed = 0
    for platform_name, links in link_states.items():
        platform = service.platform(platform_name)
        for link_name, (bandwidth, latency) in links.items():
            link = platform.link(link_name)
            if link.bandwidth != bandwidth:
                link.bandwidth = bandwidth
                changed += 1
            if link.latency != latency:
                link.latency = latency
                changed += 1
    return changed


def snapshot_link_states(service) -> dict:
    """``{platform: {link: (bandwidth, latency)}}`` for every platform."""
    return {
        name: {link.name: (link.bandwidth, link.latency)
               for link in service.platform(name).links()}
        for name in service.platform_names()
    }


def shard_main(
    conn: Connection,
    shard_id: int,
    service_factory: Callable,
    window: float = 0.002,
    cache_size: int = 4096,
    workers: int = 0,
    max_requests: Optional[int] = None,
    threads: int = 4,
    model_name: Optional[str] = None,
    surrogate_doc: Optional[dict] = None,
    surrogate_bound: float = 0.5,
) -> None:
    """Child-process entry point: build the stack, answer until ``stop``.

    Requests execute on a small thread pool so one slow simulation does
    not serialize the shard (and so the coalescer actually sees concurrent
    arrivals to batch); responses are tagged with their request id, so
    out-of-order completion is fine.

    ``surrogate_doc`` (a ``SurrogateModel.to_json()`` dict) arms a
    shard-local :class:`~repro.surrogate.tier.SurrogateTier` in front of
    the shard's cache.  Shards run it with ``require_fresh_epoch=False``:
    epoch syncs move the *shard-local* epoch and no retrainer runs inside
    a shard, but the tier's features read the live (synced) link state
    through the route LRU, so predictions track recalibrated rates; only
    the residual store ages until the parent ships a retrained model.
    """
    import os

    from repro.core.framework import Pilgrim
    from repro.core.rest.router import Request
    from repro.simgrid.platform import link_epoch

    service = service_factory()
    if model_name is not None:
        # resolve by name inside the child: registered-model names are
        # picklable where arbitrary model instances need not be
        from repro.simgrid.models import model_by_name

        service.model = model_by_name(model_name)
    platforms = {name: service.platform(name)
                 for name in service.platform_names()}
    surrogate = None
    if surrogate_doc is not None:
        from repro.surrogate.model import SurrogateModel
        from repro.surrogate.tier import SurrogateTier

        surrogate = SurrogateTier(
            SurrogateModel.from_json(surrogate_doc),
            bound=surrogate_bound, require_fresh_epoch=False)
    pilgrim = Pilgrim(platforms=platforms, model=service.model)
    serving = pilgrim.enable_serving(
        service_factory=service_factory if workers > 0 else None,
        workers=workers, window=window, cache_size=cache_size,
        max_requests=max_requests, surrogate=surrogate,
    )
    router = pilgrim.build_router()
    send_lock = threading.Lock()
    counters = {"requests": 0, "errors": 0, "syncs": 0, "links_updated": 0}

    def send(message: tuple) -> None:
        with send_lock:
            conn.send(message)

    def handle(rid: int, method: str, path: str, query: dict,
               body: object) -> None:
        try:
            request = Request(method=method, path=path, query=query,
                              body=body)
            status, payload = router.dispatch(request)
        except BaseException as exc:  # noqa: BLE001 - shard must not die
            counters["errors"] += 1
            status, payload = 500, {"error": "InternalError", "status": 500,
                                    "message": f"{type(exc).__name__}: {exc}"}
        send((RES, rid, status, payload))

    def stats_payload() -> dict:
        return {
            "shard": shard_id,
            "pid": os.getpid(),
            "epoch": link_epoch(),
            "requests": counters["requests"],
            "errors": counters["errors"],
            "syncs": counters["syncs"],
            "links_updated": counters["links_updated"],
            "platforms": sorted(platforms),
            "serving": serving.stats(),
        }

    executor = ThreadPoolExecutor(max_workers=max(1, threads),
                                  thread_name_prefix=f"shard{shard_id}")
    send((READY, os.getpid()))
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent died: exit quietly
            except KeyboardInterrupt:
                break  # Ctrl-C fans out to the fork'd group; parent drives shutdown
            tag = message[0]
            if tag == REQ:
                _, rid, method, path, query, body = message
                counters["requests"] += 1
                executor.submit(handle, rid, method, path, query, body)
            elif tag == SYNC:
                # applied on the recv thread, before any later request is
                # submitted: pipe ordering is the consistency guarantee
                _, _parent_epoch, link_states = message
                counters["syncs"] += 1
                counters["links_updated"] += apply_link_states(
                    service, link_states)
            elif tag == STATS:
                _, rid = message
                send((RES, rid, 200, stats_payload()))
            elif tag == STOP:
                break
    except KeyboardInterrupt:
        pass
    finally:
        executor.shutdown(wait=True)
        pilgrim.disable_serving()
        conn.close()
