"""Sharded async serving gateway.

The production request path in front of the forecast stack: an asyncio
HTTP/1.1 front end (keep-alive, pipelined parsing, bounded admission) that
consistent-hash routes requests across N shard processes, each owning its
own :class:`~repro.serving.service.ForecastServingService` (shared-nothing
``ForecastCache``, own coalescer, optional warm pool) — see
``docs/SERVING.md`` for the full architecture.
"""

from repro.serving.gateway.admission import AdmissionController
from repro.serving.gateway.gateway import GatewayConfig, ShardedGateway
from repro.serving.gateway.hashring import ConsistentHashRing
from repro.serving.gateway.metrics import GatewayMetrics, LatencyReservoir

__all__ = [
    "AdmissionController",
    "ConsistentHashRing",
    "GatewayConfig",
    "GatewayMetrics",
    "LatencyReservoir",
    "ShardedGateway",
]
