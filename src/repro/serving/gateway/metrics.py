"""SLO metrics for the gateway: per-route latency percentiles + counters.

The single-process serving layer's :class:`LatencyCounter` keeps
count/mean/max — enough for a test, useless for an SLO.  The gateway keeps
a bounded reservoir of recent latencies per route and computes p50/p99 at
read time, alongside the operational counters a shed decision needs:
current queue depth, shed count, per-shard occupancy, connection churn.

Everything here is thread-safe under one lock per reservoir; reads
(``GET /pilgrim/stats``) snapshot rather than stall the hot path.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty sequence."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    rank = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


class LatencyReservoir:
    """Bounded ring of recent request latencies with percentile reads.

    A ring of the last ``size`` samples (not a decaying sketch: the bench
    and the smoke checks want exact percentiles over a known window), plus
    lifetime count / total / max so long-run throughput math still works
    after the ring wraps.
    """

    def __init__(self, size: int = 4096) -> None:
        if size < 1:
            raise ValueError(f"reservoir size must be >= 1, got {size}")
        self.size = int(size)
        self._lock = threading.Lock()
        self._ring: list[float] = []
        self._next = 0
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total_s += seconds
            if seconds > self.max_s:
                self.max_s = seconds
            if len(self._ring) < self.size:
                self._ring.append(seconds)
            else:
                self._ring[self._next] = seconds
                self._next = (self._next + 1) % self.size

    def snapshot(self) -> dict:
        """Counters + p50/p99 over the retained window (JSON-able)."""
        with self._lock:
            window = sorted(self._ring)
            count, total_s, max_s = self.count, self.total_s, self.max_s
        info = {
            "count": count,
            "mean_ms": (total_s / count * 1e3) if count else 0.0,
            "max_ms": max_s * 1e3,
            "window": len(window),
        }
        if window:
            info["p50_ms"] = percentile(window, 0.50) * 1e3
            info["p99_ms"] = percentile(window, 0.99) * 1e3
        else:
            info["p50_ms"] = info["p99_ms"] = 0.0
        return info


class GatewayMetrics:
    """One metrics registry per gateway: routes, sheds, connections.

    Routes are coarse classes (``predict_transfers``, ``select_fastest``,
    ``what_if``, ``stats``, ``other``) — per-URI cardinality would make
    ``/stats`` unbounded under platform churn.
    """

    ROUTE_CLASSES = ("predict_transfers", "select_fastest", "what_if",
                     "stats", "other")

    def __init__(self, reservoir_size: int = 4096) -> None:
        self._routes = {name: LatencyReservoir(reservoir_size)
                        for name in self.ROUTE_CLASSES}
        self._lock = threading.Lock()
        self.responses: dict[str, int] = {}  # status family ("2xx") → count
        self.parse_errors = 0
        self.oversized = 0
        self.disconnects = 0
        self.connections_opened = 0
        self.connections_active = 0

    @classmethod
    def route_class(cls, path: str) -> str:
        parts = path.strip("/").split("/")
        if len(parts) >= 2 and parts[0] == "pilgrim":
            if parts[1] in ("predict_transfers", "select_fastest", "what_if",
                            "stats"):
                return parts[1]
        return "other"

    def record(self, route: str, seconds: float, status: int) -> None:
        self._routes[route].record(seconds)
        family = f"{status // 100}xx"
        with self._lock:
            self.responses[family] = self.responses.get(family, 0) + 1

    # -- connection lifecycle (front-end thread only) ---------------------------

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_opened += 1
            self.connections_active += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.connections_active -= 1

    def snapshot(self) -> dict:
        with self._lock:
            responses = dict(self.responses)
            connections = {
                "opened": self.connections_opened,
                "active": self.connections_active,
            }
            errors = {
                "parse_errors": self.parse_errors,
                "oversized": self.oversized,
                "disconnects": self.disconnects,
            }
        return {
            "routes": {name: res.snapshot()
                       for name, res in self._routes.items()},
            "responses": responses,
            "connections": connections,
            "errors": errors,
        }
