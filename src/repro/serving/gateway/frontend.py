"""Asyncio HTTP/1.1 front end: keep-alive, pipelined parsing, clean sheds.

One event-loop thread multiplexes every client connection — thousands of
keep-alive sockets cost one file descriptor each, not one thread each (the
``ThreadingHTTPServer`` front end's scaling wall).  The protocol surface
is deliberately the same minimal contract as
:class:`~repro.core.rest.server.PilgrimHTTPServer`: GET with URI-embedded
parameters, POST with a JSON body, JSON answers.

Robustness contract (exercised by the gateway tests):

- **keep-alive**: HTTP/1.1 connections persist across requests (1.0 with
  ``Connection: keep-alive`` too); ``Connection: close`` is honored.
- **pipelining**: back-to-back requests on one connection parse from the
  buffered stream and answer in order — no request is lost between reads.
- **bounded everything**: oversized bodies are refused with ``413``
  *before* reading them, oversized/malformed request heads get ``400``,
  both with ``Connection: close`` so the stream can't desynchronize.
- **mid-stream disconnects** (client vanishes between head and body, or
  mid-response) close the connection quietly — never a hung handler, never
  a traceback.
- idle keep-alive connections are reaped after ``idle_timeout`` seconds.

The front end delegates every complete request to an async ``app``
callable ``(method, target, body_bytes) -> (status, payload, headers)``;
admission control and routing live there (see
:class:`~repro.serving.gateway.gateway.ShardedGateway`), parse-level
rejections live here.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Awaitable, Callable, Optional

from repro.core.rest.json_codec import dumps

from repro.serving.gateway.metrics import GatewayMetrics

#: ``app`` contract: (method, target, body) → (status, payload, headers).
AppHandler = Callable[[str, str, bytes], Awaitable[tuple[int, object, dict]]]

#: Hard cap on a single request head line / header line (bytes).
MAX_LINE = 16384
#: Hard cap on header count per request.
MAX_HEADERS = 64


class _BadRequestLine(Exception):
    """Unparseable request head: answer 400 and close."""


class AsyncHTTPFrontend:
    """The gateway's listener: owns the event loop in a daemon thread."""

    def __init__(
        self,
        app: AppHandler,
        metrics: GatewayMetrics,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = 8 * 1024 * 1024,
        idle_timeout: float = 30.0,
        backlog: int = 2048,
    ) -> None:
        self.app = app
        self.metrics = metrics
        self.host = host
        self.port = port
        self.max_body_bytes = int(max_body_bytes)
        self.idle_timeout = float(idle_timeout)
        self.backlog = int(backlog)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._address: Optional[tuple[str, int]] = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "AsyncHTTPFrontend":
        if self._thread is not None:
            raise RuntimeError("frontend already started")
        self._thread = threading.Thread(
            target=self._run, name="gateway-frontend", daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._shutdown_event.set)
        self._thread.join()
        self._thread = None

    def _run(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            if not self._started.is_set():
                self._startup_error = exc
                self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port,
                backlog=self.backlog, limit=MAX_LINE,
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._address = self._server.sockets[0].getsockname()[:2]
        self._started.set()
        async with self._server:
            await self._shutdown_event.wait()

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RuntimeError("frontend not started")
        return self._address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.metrics.connection_opened()
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequestLine as exc:
                    self.metrics.parse_errors += 1
                    await self._respond(
                        writer, 400,
                        {"error": "BadRequest", "status": 400,
                         "message": str(exc)},
                        keep_alive=False)
                    return
                except _PayloadTooLarge as exc:
                    self.metrics.oversized += 1
                    await self._respond(
                        writer, 413,
                        {"error": "PayloadTooLarge", "status": 413,
                         "message": str(exc)},
                        keep_alive=False)
                    return
                if request is None:
                    return  # clean EOF / idle timeout between requests
                method, target, body, keep_alive = request
                status, payload, headers = await self.app(
                    method, target, body)
                await self._respond(writer, status, payload,
                                    keep_alive=keep_alive, headers=headers)
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            self.metrics.disconnects += 1  # client vanished mid-stream
        except asyncio.CancelledError:
            return  # loop shutdown: end normally so the streams
            # done-callback (which calls task.exception()) stays quiet
        finally:
            self.metrics.connection_closed()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader,
    ) -> Optional[tuple[str, str, bytes, bool]]:
        """One parsed request, or ``None`` on clean EOF / idle timeout.

        Raises :class:`_BadRequestLine` / :class:`_PayloadTooLarge` on
        malformed or oversized input (the caller answers and closes).
        """
        try:
            line = await asyncio.wait_for(reader.readline(),
                                          timeout=self.idle_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            return None  # idle keep-alive connection: reap it
        except ValueError:
            raise _BadRequestLine("request line too long") from None
        if not line:
            return None
        if line.strip() == b"":  # tolerate a stray CRLF between requests
            return await self._read_request(reader)
        if len(line) >= MAX_LINE:
            raise _BadRequestLine("request line too long")
        try:
            method, target, version = line.decode("ascii").split()
        except (UnicodeDecodeError, ValueError):
            raise _BadRequestLine("malformed request line") from None
        headers: dict[str, str] = {}
        while True:
            try:
                header_line = await reader.readline()
            except ValueError:
                raise _BadRequestLine("header line too long") from None
            if not header_line or header_line in (b"\r\n", b"\n"):
                break
            if len(header_line) >= MAX_LINE:
                raise _BadRequestLine("header line too long")
            if len(headers) >= MAX_HEADERS:
                raise _BadRequestLine("too many headers")
            try:
                name, _, value = header_line.decode("latin-1").partition(":")
            except UnicodeDecodeError:
                raise _BadRequestLine("undecodable header") from None
            headers[name.strip().lower()] = value.strip()
        raw_length = headers.get("content-length", "0") or "0"
        try:
            content_length = int(raw_length)
        except ValueError:
            raise _BadRequestLine(
                f"bad Content-Length: {raw_length!r}") from None
        if content_length < 0:
            raise _BadRequestLine("negative Content-Length")
        if content_length > self.max_body_bytes:
            raise _PayloadTooLarge(
                f"request body of {content_length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit")
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            keep_alive = connection == "keep-alive"
        else:
            keep_alive = connection != "close"
        return method.upper(), target, body, keep_alive

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: object, keep_alive: bool,
                       headers: Optional[dict] = None) -> None:
        body = dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write("\r\n".join(lines).encode("ascii") + b"\r\n\r\n" + body)
        await writer.drain()


class _PayloadTooLarge(Exception):
    """Declared body larger than the limit: answer 413 and close."""


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}
