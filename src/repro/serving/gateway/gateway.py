"""The sharded gateway: admission → hash-ring routing → shard fan-in.

:class:`ShardedGateway` assembles the production request path:

- an :class:`~repro.serving.gateway.frontend.AsyncHTTPFrontend` (one
  event-loop thread, keep-alive, pipelining, bounded parsing),
- an :class:`~repro.serving.gateway.admission.AdmissionController`
  shedding load with ``503 + Retry-After`` past the in-flight budget,
- a :class:`~repro.serving.gateway.hashring.ConsistentHashRing` pinning
  each platform to one shard (shared-nothing caches stay hot),
- N shard processes (:mod:`repro.serving.gateway.shard`), each a full
  serving stack built from a picklable ``service_factory``,
- per-route SLO metrics and an aggregated ``GET /pilgrim/stats``.

**Epoch propagation**: the gateway keeps a parent-side
``NetworkForecastService`` over the *same* platform objects the embedding
application mutates (pass ``service=``; the CLI passes the session-cached
Grid'5000 service).  Before dispatching, it compares the parent-process
link-mutation epoch against the last value it broadcast; on a change it
snapshots every platform's link state and sends a ``sync`` message down
each shard pipe ahead of the request — so a recalibration under
``repro metrology run`` reaches every shard before any later answer, and
each shard invalidates through its own local epoch bump.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.forecast import NetworkForecastService
from repro.core.rest.json_codec import loads
from repro.simgrid.platform import link_epoch

from repro.serving.gateway import shard as shard_proto
from repro.serving.gateway.admission import AdmissionController
from repro.serving.gateway.frontend import AsyncHTTPFrontend
from repro.serving.gateway.hashring import ConsistentHashRing
from repro.serving.gateway.metrics import GatewayMetrics
from repro.serving.gateway.shard import (
    READY,
    RES,
    REQ,
    STATS,
    STOP,
    SYNC,
    shard_main,
    snapshot_link_states,
)


class ShardError(Exception):
    """A shard process died with requests in flight."""


@dataclass(frozen=True)
class GatewayConfig:
    """Tuning knobs, one place (mirrored by ``repro serve --shards``)."""

    shards: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 256
    queue_depth: int = 1024
    retry_after_s: float = 1.0
    max_body_bytes: int = 8 * 1024 * 1024
    idle_timeout: float = 30.0
    request_timeout: float = 60.0
    #: per-shard serving knobs (see ForecastServingService)
    window: float = 0.002
    cache_size: int = 4096
    workers: int = 0
    max_requests: Optional[int] = None
    shard_threads: int = 4
    #: default sharing model for every shard service (a registered model
    #: name, resolved via ``model_by_name`` inside the shard process);
    #: ``None`` keeps the service factory's default.  Per-request
    #: ``model=`` parameters still win over this default.
    model_name: Optional[str] = None
    #: virtual nodes per shard on the hash ring
    ring_replicas: int = 64
    #: serialized SurrogateModel (``SurrogateModel.to_json()``) every shard
    #: deserializes into a shard-local SurrogateTier; None disables the tier
    surrogate_doc: Optional[dict] = None
    #: per-shard surrogate uncertainty bound (log2 units)
    surrogate_bound: float = 0.5

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")


class ShardHandle:
    """Parent-side endpoint of one shard process.

    Thread-safe: the frontend's event loop, the stats fan-out and the
    epoch broadcaster all send through one lock; a reader thread resolves
    response futures by request id, so completions may arrive in any
    order.
    """

    def __init__(self, shard_id: int, service_factory: Callable,
                 config: GatewayConfig) -> None:
        self.shard_id = shard_id
        ctx = multiprocessing.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._conn = parent_conn
        self.process = ctx.Process(
            target=shard_main,
            args=(child_conn, shard_id, service_factory),
            kwargs={
                "window": config.window,
                "cache_size": config.cache_size,
                "workers": config.workers,
                "max_requests": config.max_requests,
                "threads": config.shard_threads,
                "model_name": config.model_name,
                "surrogate_doc": config.surrogate_doc,
                "surrogate_bound": config.surrogate_bound,
            },
            daemon=True,
            name=f"gateway-shard-{shard_id}",
        )
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._rid = itertools.count()
        self._ready = threading.Event()
        self.alive = False
        self.dispatched = 0
        self.process.start()
        child_conn.close()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"shard-{shard_id}-reader",
            daemon=True)
        self.alive = True
        self._reader.start()

    def wait_ready(self, timeout: float = 60.0) -> None:
        if not self._ready.wait(timeout):
            raise ShardError(f"shard {self.shard_id} did not come up "
                             f"within {timeout}s")

    # -- parent → shard ----------------------------------------------------------

    def _submit(self, message_head: tuple) -> Future:
        """Register a future for a new rid and send ``(tag, rid, *rest)``."""
        future: Future = Future()
        rid = next(self._rid)
        with self._pending_lock:
            if not self.alive:
                raise ShardError(f"shard {self.shard_id} is down")
            self._pending[rid] = future
        tag, rest = message_head[0], message_head[1:]
        try:
            with self._send_lock:
                self._conn.send((tag, rid, *rest))
        except (OSError, ValueError, BrokenPipeError) as exc:
            with self._pending_lock:
                self._pending.pop(rid, None)
            raise ShardError(f"shard {self.shard_id} pipe broken") from exc
        return future

    def request(self, method: str, path: str, query: dict,
                body: object) -> Future:
        self.dispatched += 1
        return self._submit((REQ, method, path, query, body))

    def request_stats(self) -> Future:
        return self._submit((STATS,))

    def sync(self, epoch: int, link_states: dict) -> None:
        with self._send_lock:
            self._conn.send((SYNC, epoch, link_states))

    @property
    def occupancy(self) -> int:
        with self._pending_lock:
            return len(self._pending)

    # -- shard → parent ----------------------------------------------------------

    def _read_loop(self) -> None:
        try:
            while True:
                message = self._conn.recv()
                tag = message[0]
                if tag == READY:
                    self._ready.set()
                elif tag == RES:
                    _, rid, status, payload = message
                    with self._pending_lock:
                        future = self._pending.pop(rid, None)
                    # a timed-out waiter may have cancelled its future;
                    # the late answer is simply dropped
                    if future is not None and not future.done():
                        future.set_result((status, payload))
        except (EOFError, OSError):
            pass  # shard exited (stop() or crash): fail what's in flight
        finally:
            with self._pending_lock:
                self.alive = False
                pending, self._pending = self._pending, {}
            error = ShardError(f"shard {self.shard_id} exited with "
                               f"{len(pending)} request(s) in flight")
            for future in pending.values():
                if not future.done():
                    future.set_exception(error)
            self._ready.set()  # unblock a wait_ready on a crashed shard

    def stop(self, timeout: float = 10.0) -> None:
        try:
            with self._send_lock:
                self._conn.send((STOP,))
        except (OSError, ValueError, BrokenPipeError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout)
        self._conn.close()
        self._reader.join(timeout)


class ShardedGateway:
    """N shard processes behind one admission-controlled async front end.

    ``service_factory`` must be picklable (the warm-pool contract); it
    builds each shard's forecast service.  ``service`` optionally names
    the parent-side service whose platforms are the *mutation source* for
    epoch propagation — pass the service your application recalibrates.
    When omitted, the gateway builds one from the factory (mutate
    ``gateway.service`` to reach the shards).
    """

    def __init__(
        self,
        service_factory: Callable[[], NetworkForecastService],
        config: Optional[GatewayConfig] = None,
        service: Optional[NetworkForecastService] = None,
    ) -> None:
        self.config = config if config is not None else GatewayConfig()
        self.service_factory = service_factory
        self.service = service if service is not None else service_factory()
        self.metrics = GatewayMetrics()
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            queue_depth=self.config.queue_depth,
            retry_after_s=self.config.retry_after_s,
        )
        self.ring = ConsistentHashRing(range(self.config.shards),
                                       replicas=self.config.ring_replicas)
        self.shards: list[ShardHandle] = []
        self.frontend: Optional[AsyncHTTPFrontend] = None
        self._epoch_lock = threading.Lock()
        self._synced_epoch = link_epoch()
        self.epoch_syncs = 0
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ShardedGateway":
        if self._started:
            raise RuntimeError("gateway already started")
        self._started = True
        try:
            self.shards = [
                ShardHandle(i, self.service_factory, self.config)
                for i in range(self.config.shards)
            ]
            for handle in self.shards:
                handle.wait_ready()
                if not handle.alive:
                    raise ShardError(f"shard {handle.shard_id} crashed "
                                     f"during startup")
            self.frontend = AsyncHTTPFrontend(
                self._handle, self.metrics,
                host=self.config.host, port=self.config.port,
                max_body_bytes=self.config.max_body_bytes,
                idle_timeout=self.config.idle_timeout,
            ).start()
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self) -> None:
        if self.frontend is not None:
            self.frontend.stop()
            self.frontend = None
        for handle in self.shards:
            handle.stop()
        self.shards = []
        self._started = False

    def __enter__(self) -> "ShardedGateway":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def url(self) -> str:
        if self.frontend is None:
            raise RuntimeError("gateway not started")
        return self.frontend.url

    @property
    def address(self) -> tuple[str, int]:
        if self.frontend is None:
            raise RuntimeError("gateway not started")
        return self.frontend.address

    # -- epoch propagation -------------------------------------------------------

    def sync_epoch(self, force: bool = False) -> bool:
        """Broadcast parent link state to every shard if the epoch moved.

        Called on the dispatch path (a cheap int compare when nothing
        changed) and callable explicitly after a recalibration burst.
        Returns whether a broadcast happened.  Pipe ordering guarantees
        any request dispatched after this call answers with the new
        capacities.
        """
        epoch = link_epoch()
        if not force and epoch == self._synced_epoch:
            return False
        with self._epoch_lock:
            epoch = link_epoch()
            if not force and epoch == self._synced_epoch:
                return False
            link_states = snapshot_link_states(self.service)
            for handle in self.shards:
                if handle.alive:
                    handle.sync(epoch, link_states)
            self._synced_epoch = epoch
            self.epoch_syncs += 1
        return True

    # -- request path (frontend event loop) --------------------------------------

    def _shard_for(self, path: str) -> ShardHandle:
        """Consistent-hash pick: by platform for the predict/planner
        routes, by path otherwise (platform-agnostic routes answer
        identically on every shard)."""
        parts = path.strip("/").split("/")
        if (len(parts) >= 3 and parts[0] == "pilgrim"
                and parts[1] in ("predict_transfers", "select_fastest",
                                 "what_if")):
            key = parts[2]
        else:
            key = path
        return self.shards[self.ring.node(key)]

    async def _handle(self, method: str, target: str,
                      body: bytes) -> tuple[int, object, dict]:
        t0 = time.perf_counter()
        path = target.split("?", 1)[0]
        route = GatewayMetrics.route_class(path)
        if route == "stats" and method == "GET":
            # exempt from admission: monitoring must answer under overload
            status, payload = await self._handle_stats()
            self.metrics.record(route, time.perf_counter() - t0, status)
            return status, payload, {}
        if not self.admission.try_admit():
            retry_after = self.admission.retry_after()
            payload = {
                "error": "ServiceUnavailable", "status": 503,
                "message": "gateway at admission limit, retry later",
                "retry_after_s": retry_after,
            }
            self.metrics.record(route, time.perf_counter() - t0, 503)
            return 503, payload, {"Retry-After": f"{retry_after:g}"}
        try:
            status, payload = await self._dispatch(method, target, body)
        finally:
            self.admission.release()
            self.metrics.record(route, time.perf_counter() - t0,
                                status if "status" in locals() else 500)
        return status, payload, {}

    async def _dispatch(self, method: str, target: str,
                        body: bytes) -> tuple[int, object]:
        from repro.core.rest.router import Request

        decoded = None
        if body:
            try:
                decoded = loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                return 400, {"error": "BadRequest", "status": 400,
                             "message": "request body is not valid JSON"}
        parsed = Request.from_target(method, target, body=decoded)
        self.sync_epoch()  # recalibrations reach shards before the request
        handle = self._shard_for(parsed.path)
        if not handle.alive:
            return 503, {"error": "ServiceUnavailable", "status": 503,
                         "message": f"shard {handle.shard_id} is down"}
        try:
            future = handle.request(method, parsed.path, parsed.query,
                                    decoded)
        except ShardError as exc:
            return 503, {"error": "ServiceUnavailable", "status": 503,
                         "message": str(exc)}
        try:
            return await asyncio.wait_for(
                asyncio.wrap_future(future),
                timeout=self.config.request_timeout)
        except asyncio.TimeoutError:
            return 504, {"error": "GatewayTimeout", "status": 504,
                         "message": f"shard {handle.shard_id} did not "
                                    f"answer within "
                                    f"{self.config.request_timeout:g}s"}
        except ShardError as exc:
            return 503, {"error": "ServiceUnavailable", "status": 503,
                         "message": str(exc)}

    async def _handle_stats(self) -> tuple[int, object]:
        futures = []
        for handle in self.shards:
            if not handle.alive:
                futures.append(None)
                continue
            try:
                futures.append(handle.request_stats())
            except ShardError:
                futures.append(None)
        shard_stats: list[object] = []
        for handle, future in zip(self.shards, futures):
            if future is None:
                shard_stats.append({"shard": handle.shard_id,
                                    "alive": False})
                continue
            try:
                _status, payload = await asyncio.wait_for(
                    asyncio.wrap_future(future), timeout=10.0)
                shard_stats.append({"alive": True, **payload})
            except (asyncio.TimeoutError, ShardError):
                shard_stats.append({"shard": handle.shard_id,
                                    "alive": False})
        return 200, {"gateway": self.stats(), "shards": shard_stats}

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        """Gateway-local counters (shard internals come from the shards)."""
        return {
            "shards": self.config.shards,
            "admission": self.admission.snapshot(),
            "epoch": {"parent": link_epoch(),
                      "synced": self._synced_epoch,
                      "syncs": self.epoch_syncs},
            "shard_occupancy": [h.occupancy for h in self.shards],
            "shard_dispatched": [h.dispatched for h in self.shards],
            "shard_alive": [h.alive for h in self.shards],
            **self.metrics.snapshot(),
        }
