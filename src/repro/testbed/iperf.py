"""iperf-like measurement application for the testbed.

The paper's protocol (§V-A): "TCP iperf servers (receivers) are started on
all destination nodes.  TCP iperf clients (senders) are simultaneously
started on all source nodes, each transferring the same amount of data to
its destination."  This module models that application layer: servers that
listen, clients that transfer a byte count, and an iperf-style plain-text
report, so the orchestration layer can drive experiments the way execo
drives real iperf.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.testbed.fluid import Flow, FluidSimulator, TestbedNetwork

_port_counter = itertools.count(5001)


class IperfError(Exception):
    """Raised on protocol misuse (client without a started server, …)."""


@dataclass
class IperfServer:
    """A listening receiver on one node."""

    node: str
    port: int = field(default_factory=lambda: next(_port_counter))
    started: bool = False

    def start(self) -> "IperfServer":
        self.started = True
        return self

    def stop(self) -> None:
        self.started = False


@dataclass
class IperfClient:
    """A sender: transfers ``size`` bytes to ``server``."""

    node: str
    server: IperfServer
    size: float
    flow: Optional[Flow] = None

    def transfer_tuple(self) -> tuple[str, str, float]:
        if not self.server.started:
            raise IperfError(
                f"iperf client on {self.node!r}: server on {self.server.node!r} not started"
            )
        return (self.node, self.server.node, self.size)


def run_iperf_session(
    network: TestbedNetwork,
    clients: list[IperfClient],
    seed: int = 0,
) -> list[Flow]:
    """Start every client simultaneously (t=0) and run to completion.

    Mirrors the experimental step list of §V-A.  Each client's ``flow`` field
    is filled with the finished :class:`~repro.testbed.fluid.Flow`.
    """
    sim = FluidSimulator(network, seed=seed)
    for client in clients:
        src, dst, size = client.transfer_tuple()
        client.flow = sim.submit(src, dst, size, t=0.0)
    sim.run()
    return [client.flow for client in clients]


def format_report(flow: Flow) -> str:
    """One iperf-style report line for a finished flow."""
    if math.isnan(flow.finish_time):
        raise IperfError(f"flow {flow.src}->{flow.dst} has not finished")
    duration = flow.completion_time_raw
    mbytes = flow.size / 1e6
    mbits = flow.size * 8.0 / duration / 1e6 if duration > 0 else float("inf")
    return (
        f"[{flow.index:3d}]  0.0-{duration:.1f} sec  "
        f"{mbytes:.1f} MBytes  {mbits:.1f} Mbits/sec"
    )
