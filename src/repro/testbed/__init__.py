"""Synthetic Grid'5000 testbed emulator — the reproduction's "reality".

The paper validates its predictions against *real* iperf transfers on
Grid'5000.  Without the physical testbed, this subpackage provides the
closest synthetic equivalent: a fluid network simulator with

- per-flow TCP windows (classic slow start + CUBIC congestion avoidance,
  HyStart disabled, 4 MiB maximum windows — the paper's sender tuning,
  :mod:`repro.testbed.tcp`),
- full-duplex links and realistic topologies (:mod:`repro.testbed.fluid`),
- per-cluster hardware profiles: connection/process startup overheads, NIC
  efficiency, kernel stack latency (:mod:`repro.testbed.profiles`),
- an iperf-like measurement application (:mod:`repro.testbed.iperf`),
- optional background cross-traffic (:mod:`repro.testbed.crosstraffic`),
- seeded measurement noise (:mod:`repro.testbed.measurement`).

It shares **no sharing-model code** with the predictor (:mod:`repro.simgrid`):
its steady-state allocator is a per-bottleneck-link water-filling over
full-duplex capacities, its transient behaviour comes from the TCP window
ramp, and its constants are calibrated to hardware-era values, not to the
predictor's LV08 factors.  See DESIGN.md §3 and §6.
"""

from repro.testbed.fluid import DuplexLink, FluidSimulator, TestbedNetwork
from repro.testbed.profiles import HostProfile, PROFILES
from repro.testbed.tcp import TcpParams, TcpFlowState
from repro.testbed.measurement import MeasuredTransfer, run_transfers

__all__ = [
    "DuplexLink",
    "FluidSimulator",
    "TestbedNetwork",
    "HostProfile",
    "PROFILES",
    "TcpParams",
    "TcpFlowState",
    "MeasuredTransfer",
    "run_transfers",
]
