"""Fluid network engine with TCP window transients — the testbed's core.

Flows progress through three stages:

1. **startup** — a sampled application overhead (iperf spawn + TCP connect,
   per the source host's :class:`~repro.testbed.profiles.HostProfile`) plus
   one RTT of handshake before data flows,
2. **ramp** — per-RTT-round simulation of the congestion window (classic
   slow start, then CUBIC — :mod:`repro.testbed.tcp`); the flow's rate is
   ``min(cwnd/RTT, network share)``.  When the window overshoots the
   achievable share the queue drops (one multiplicative decrease) and the
   flow becomes
3. **steady** — capacity-limited: rate = ``min(share, max_window/RTT)``.

Network shares come from *per-bottleneck-link water-filling* over full-duplex
directional capacities (Bertsekas-Gallager style): repeatedly find the most
constraining link direction, split its remaining capacity among its unfixed
flows proportionally to ``1/RTT`` (TCP's RTT bias) capped by each flow's
demand, freeze them, and continue.  This is deliberately a different
algorithm and codebase from the predictor's progressive-filling solver
(DESIGN.md §3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro._util.rng import rng_for
from repro.testbed.profiles import DEFAULT, HostProfile
from repro.testbed.tcp import TcpFlowState, TcpParams

_EPS = 1e-9


class TestbedError(Exception):
    """Raised on invalid testbed construction or use."""

    __test__ = False  # not a pytest class despite the Test* name


class DuplexLink:
    """A full-duplex link: independent capacity per direction.

    ``capacity`` is the nominal rate per direction in bytes/s; the usable
    goodput is ``capacity × efficiency``.  ``latency`` is one-way seconds.
    """

    __slots__ = ("name", "capacity", "latency", "efficiency")

    def __init__(self, name: str, capacity: float, latency: float,
                 efficiency: float = 1.0) -> None:
        if capacity <= 0:
            raise TestbedError(f"link {name!r}: capacity must be positive")
        if latency < 0:
            raise TestbedError(f"link {name!r}: negative latency")
        if not 0 < efficiency <= 1:
            raise TestbedError(f"link {name!r}: efficiency must be in (0, 1]")
        self.name = name
        self.capacity = float(capacity)
        self.latency = float(latency)
        self.efficiency = float(efficiency)

    @property
    def goodput_capacity(self) -> float:
        return self.capacity * self.efficiency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DuplexLink({self.name!r}, {self.capacity:.4g}B/s/dir, {self.latency:.4g}s)"


@dataclass(frozen=True)
class Hop:
    """One directional traversal of a duplex link (direction 0 or 1)."""

    link: DuplexLink
    direction: int = 0

    def __post_init__(self) -> None:
        if self.direction not in (0, 1):
            raise TestbedError(f"direction must be 0 or 1, got {self.direction}")

    @property
    def key(self) -> tuple[str, int]:
        return (self.link.name, self.direction)

    def reversed(self) -> "Hop":
        return Hop(self.link, 1 - self.direction)


class TestbedNode:
    """A testbed endpoint with its hardware profile."""

    __slots__ = ("name", "profile")
    __test__ = False  # not a pytest class despite the Test* name

    def __init__(self, name: str, profile: HostProfile) -> None:
        self.name = name
        self.profile = profile


class TestbedNetwork:
    """Topology: nodes, duplex links, and a route resolver.

    Routes can be declared explicitly (:meth:`add_route`) or provided by a
    resolver callback (:meth:`set_route_resolver`) for large platforms where
    precomputing all pairs would be wasteful.
    """

    __test__ = False  # not a pytest class despite the Test* name

    def __init__(self, name: str = "testbed") -> None:
        self.name = name
        self.nodes: dict[str, TestbedNode] = {}
        self.links: dict[str, DuplexLink] = {}
        self._routes: dict[tuple[str, str], list[Hop]] = {}
        self._resolver: Optional[Callable[[str, str], list[Hop]]] = None

    def add_node(self, name: str, profile: HostProfile = DEFAULT) -> TestbedNode:
        if name in self.nodes:
            raise TestbedError(f"duplicate node {name!r}")
        node = TestbedNode(name, profile)
        self.nodes[name] = node
        return node

    def add_link(self, name: str, capacity: float, latency: float,
                 efficiency: float = 1.0) -> DuplexLink:
        if name in self.links:
            raise TestbedError(f"duplicate link {name!r}")
        link = DuplexLink(name, capacity, latency, efficiency)
        self.links[name] = link
        return link

    def add_route(self, src: str, dst: str, hops: Sequence[Hop],
                  symmetrical: bool = True) -> None:
        self._require_node(src)
        self._require_node(dst)
        self._routes[(src, dst)] = list(hops)
        if symmetrical:
            self._routes.setdefault(
                (dst, src), [hop.reversed() for hop in reversed(hops)]
            )

    def set_route_resolver(self, resolver: Callable[[str, str], list[Hop]]) -> None:
        self._resolver = resolver

    def _require_node(self, name: str) -> TestbedNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise TestbedError(f"unknown node {name!r}") from None

    def route(self, src: str, dst: str) -> list[Hop]:
        self._require_node(src)
        self._require_node(dst)
        cached = self._routes.get((src, dst))
        if cached is None:
            if self._resolver is None:
                raise TestbedError(f"no route {src!r} -> {dst!r} and no resolver")
            cached = self._resolver(src, dst)
            self._routes[(src, dst)] = cached
        return cached

    def rtt(self, src: str, dst: str) -> float:
        """Round-trip time: both stacks + twice the path latency."""
        path_latency = sum(hop.link.latency for hop in self.route(src, dst))
        return (
            2.0 * path_latency
            + self.nodes[src].profile.stack_latency
            + self.nodes[dst].profile.stack_latency
        )


# ---------------------------------------------------------------------------
# flows
# ---------------------------------------------------------------------------

_WAITING = "waiting"
_RAMP = "ramp"
_STEADY = "steady"
_DONE = "done"


class Flow:
    """One TCP transfer in flight on the testbed."""

    __slots__ = (
        "index", "src", "dst", "size", "submit_time", "route", "rtt",
        "tcp", "state", "data_start", "remaining", "rate", "next_round",
        "finish_time", "startup_overhead", "is_background",
    )

    def __init__(self, index: int, src: str, dst: str, size: float,
                 submit_time: float, route: list[Hop], rtt: float,
                 tcp_params: TcpParams, startup_overhead: float,
                 is_background: bool = False) -> None:
        self.index = index
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.submit_time = submit_time
        self.route = route
        self.rtt = rtt
        self.tcp = TcpFlowState(params=tcp_params)
        self.state = _WAITING
        self.startup_overhead = startup_overhead
        # handshake: one RTT before the first data round
        self.data_start = submit_time + startup_overhead + rtt
        self.remaining = float(size)
        self.rate = 0.0
        self.next_round = math.inf
        self.finish_time = math.nan
        self.is_background = is_background

    @property
    def demand(self) -> float:
        """Current rate ceiling from the TCP window."""
        if self.state == _RAMP:
            return self.tcp.window_rate(self.rtt)
        return self.tcp.max_rate(self.rtt)

    @property
    def completion_time_raw(self) -> float:
        """Wall duration from submission to last byte (before noise)."""
        return self.finish_time - self.submit_time


def water_fill(
    demands: Sequence[float],
    weights: Sequence[float],
    routes: Sequence[Sequence[tuple]],
    capacities: dict,
) -> list[float]:
    """Per-bottleneck-link water-filling.

    ``demands[i]`` is flow *i*'s rate ceiling, ``weights[i]`` its fairness
    weight (testbed uses ``1/RTT``), ``routes[i]`` the constraint keys it
    crosses and ``capacities`` maps key → capacity.  Returns allocated rates.
    """
    n = len(demands)
    rates = [0.0] * n
    fixed = [False] * n
    remaining = dict(capacities)
    members: dict[object, list[int]] = {}
    for i, route in enumerate(routes):
        for key in route:
            members.setdefault(key, []).append(i)

    for _ in range(len(capacities) + 1):
        # for each congested link, the water level theta such that
        # sum_i min(d_i, theta*w_i) == remaining capacity
        best_key, best_theta = None, math.inf
        for key, flow_ids in members.items():
            unfixed = [i for i in flow_ids if not fixed[i]]
            if not unfixed:
                continue
            cap = remaining[key]
            total_demand = sum(demands[i] for i in unfixed)
            if total_demand <= cap + _EPS:
                continue  # link not congested
            theta = _water_level(
                [demands[i] for i in unfixed], [weights[i] for i in unfixed], cap
            )
            if theta < best_theta:
                best_key, best_theta = key, theta
        if best_key is None:
            break
        for i in members[best_key]:
            if not fixed[i]:
                rates[i] = min(demands[i], best_theta * weights[i])
                fixed[i] = True
        # recompute every link's remaining capacity from fixed consumption
        remaining = dict(capacities)
        for i in range(n):
            if fixed[i]:
                for key in routes[i]:
                    remaining[key] -= rates[i]
    for i in range(n):
        if not fixed[i]:
            rates[i] = demands[i]
    return rates


def _water_level(demands: list[float], weights: list[float], capacity: float) -> float:
    """Solve Σ min(d_i, θ·w_i) = capacity for θ (θ ≥ 0)."""
    # sort by the level at which each flow becomes demand-limited
    order = sorted(range(len(demands)), key=lambda i: demands[i] / weights[i])
    active_weight = sum(weights)
    used = 0.0
    for idx in order:
        threshold = demands[idx] / weights[idx]
        # if every remaining flow stays rate-limited up to this threshold
        needed = used + threshold * active_weight
        if needed >= capacity - _EPS:
            return max((capacity - used) / active_weight, 0.0)
        used += demands[idx]
        active_weight -= weights[idx]
    # all flows demand-limited within capacity — level is effectively infinite
    return math.inf


class FluidSimulator:
    """Event loop advancing flows through startup → ramp → steady → done."""

    def __init__(
        self,
        network: TestbedNetwork,
        seed: int = 0,
        noise_sigma: float = 0.04,
    ) -> None:
        self.network = network
        self.seed = seed
        self.noise_sigma = noise_sigma
        self.clock = 0.0
        self._flows: list[Flow] = []
        self._counter = 0

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        src: str,
        dst: str,
        size: float,
        t: float = 0.0,
        is_background: bool = False,
    ) -> Flow:
        """Schedule a transfer of ``size`` bytes at time ``t``."""
        if size <= 0:
            raise TestbedError(f"transfer size must be positive, got {size}")
        src_node = self.network._require_node(src)
        self.network._require_node(dst)
        route = self.network.route(src, dst)
        rtt = self.network.rtt(src, dst)
        rng = rng_for(self.seed, "flow", self._counter)
        profile = src_node.profile
        startup = float(
            profile.startup_median * math.exp(rng.normal(0.0, profile.startup_sigma))
        )
        flow = Flow(
            index=self._counter, src=src, dst=dst, size=size, submit_time=t,
            route=route, rtt=rtt, tcp_params=profile.tcp,
            startup_overhead=startup, is_background=is_background,
        )
        self._counter += 1
        self._flows.append(flow)
        return flow

    # -- the event loop --------------------------------------------------------

    def run(self) -> list[Flow]:
        """Run until every submitted flow completes; returns all flows."""
        capacities = {}
        for link in self.network.links.values():
            capacities[(link.name, 0)] = link.goodput_capacity
            capacities[(link.name, 1)] = link.goodput_capacity

        flows = self._flows
        active: list[Flow] = []
        waiting = sorted(
            (f for f in flows if f.state == _WAITING),
            key=lambda f: f.data_start,
        )
        guard = 0
        max_events = 10000 * max(len(flows), 1) + 10000
        while waiting or active:
            guard += 1
            if guard > max_events:
                raise TestbedError("testbed event loop did not converge")
            self._allocate(active, capacities)
            # next event: activation, ramp round boundary, or completion
            t_next = math.inf
            if waiting:
                t_next = waiting[0].data_start
            for flow in active:
                if flow.state == _RAMP:
                    t_next = min(t_next, flow.next_round)
                if flow.rate > _EPS:
                    t_next = min(t_next, self.clock + flow.remaining / flow.rate)
            if not math.isfinite(t_next):
                raise TestbedError("deadlock: active flows with zero rate")
            dt = max(t_next - self.clock, 0.0)
            for flow in active:
                flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
            self.clock = t_next
            # activations
            while waiting and waiting[0].data_start <= self.clock + _EPS:
                flow = waiting.pop(0)
                flow.state = _RAMP
                flow.next_round = self.clock + flow.rtt
                active.append(flow)
            # completions
            still: list[Flow] = []
            for flow in active:
                if flow.remaining <= _EPS * max(flow.size, 1.0):
                    flow.remaining = 0.0
                    flow.state = _DONE
                    flow.finish_time = self.clock
                else:
                    still.append(flow)
            active = still
            # ramp round boundaries
            for flow in active:
                if flow.state == _RAMP and flow.next_round <= self.clock + _EPS:
                    self._end_ramp_round(flow)
        return flows

    def _allocate(self, active: list[Flow], capacities: dict) -> None:
        if not active:
            return
        demands = [flow.demand for flow in active]
        weights = [1.0 / flow.rtt for flow in active]
        routes = [[hop.key for hop in flow.route] for flow in active]
        rates = water_fill(demands, weights, routes, capacities)
        for flow, rate in zip(active, rates):
            flow.rate = rate

    def _end_ramp_round(self, flow: Flow) -> None:
        window_rate = flow.tcp.window_rate(flow.rtt)
        if flow.rate < window_rate * (1.0 - 1e-6):
            # the network share caps this flow: the window has overshot the
            # bandwidth-delay product, the queue dropped — one multiplicative
            # decrease, then the flow is capacity-limited (steady)
            flow.tcp.on_loss()
            flow.state = _STEADY
            flow.next_round = math.inf
            return
        flow.tcp.on_round(flow.rtt)
        if flow.tcp.cwnd >= flow.tcp.params.max_window_bytes * (1.0 - 1e-9):
            flow.state = _STEADY  # window at cap; max_rate bound applies
            flow.next_round = math.inf
        else:
            flow.next_round += flow.rtt
