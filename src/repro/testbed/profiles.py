"""Per-cluster hardware/OS calibration profiles.

Each Grid'5000 cluster generation behaves differently at the *application*
level: how long starting an iperf client and establishing the TCP connection
takes, how close the NIC gets to line rate, how much latency the kernel stack
adds.  These constants generate the paper's error signatures mechanistically
(DESIGN.md §6):

- **sagittaire** (2005 dual-Opteron nodes): large per-transfer startup
  overhead — this is what makes real small transfers much slower than the
  flow-level prediction (the strongly negative errors of Figures 3-5),
- **graphene** (2010 Xeon X3440 nodes): millisecond-scale startup — small
  transfers are *fast*, so the model's inflated hierarchical latency
  over-predicts them (the positive errors of Figures 6-9),
- Ethernet goodput efficiency ≈ 94.1 % (1448 payload bytes per 1538-byte
  wire frame), the reality the predictor's LV08 97 % factor slightly
  overestimates.

All values are calibration inputs recorded here for reviewability — nothing
else in the testbed is tuned per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.testbed.tcp import TcpParams

#: Goodput fraction of nominal Ethernet rate: 1448 TCP payload bytes out of
#: 1538 bytes on the wire (preamble+ethernet+IP+TCP headers).
ETHERNET_GOODPUT_EFFICIENCY = 1448.0 / 1538.0


@dataclass(frozen=True)
class HostProfile:
    """Application-level behaviour of one node generation."""

    name: str
    #: Median of the per-transfer startup overhead (process spawn, ssh fan-out
    #: slack, TCP connect), seconds; sampled lognormally per transfer.
    startup_median: float
    #: Lognormal sigma of the startup overhead (in ln space).
    startup_sigma: float
    #: NIC nominal rate, bytes/s.
    nic_bandwidth: float = 1.25e8
    #: Achievable goodput fraction of the nominal rate.
    nic_efficiency: float = ETHERNET_GOODPUT_EFFICIENCY
    #: One-way latency added by each endpoint's kernel/NIC stack, seconds.
    stack_latency: float = 3.0e-5
    #: TCP stack parameters (identical across the paper's Debian deployment).
    tcp: TcpParams = field(default_factory=TcpParams)

    def __post_init__(self) -> None:
        if self.startup_median < 0 or self.startup_sigma < 0:
            raise ValueError(f"profile {self.name!r}: negative startup parameters")
        if not 0 < self.nic_efficiency <= 1:
            raise ValueError(f"profile {self.name!r}: efficiency must be in (0, 1]")


#: 2005-era Opteron 250 nodes (Lyon): slow process spawn and connection setup.
SAGITTAIRE = HostProfile(
    name="sagittaire", startup_median=0.120, startup_sigma=0.45,
    stack_latency=4.5e-5,
)

#: 2005-era Opteron nodes (Lyon, capricorne cluster) — sagittaire-like.
CAPRICORNE = HostProfile(
    name="capricorne", startup_median=0.110, startup_sigma=0.45,
    stack_latency=4.5e-5,
)

#: 2010-era Xeon X3440 nodes (Nancy): fast startup, low stack latency.
GRAPHENE = HostProfile(
    name="graphene", startup_median=0.0009, startup_sigma=0.30,
    stack_latency=2.0e-5,
)

#: 2009-era Xeon L5420 nodes (Nancy, griffon cluster).
GRIFFON = HostProfile(
    name="griffon", startup_median=0.004, startup_sigma=0.35,
    stack_latency=2.5e-5,
)

#: Mid-generation nodes used for the Lille clusters.
CHTI = HostProfile(
    name="chti", startup_median=0.050, startup_sigma=0.40,
    stack_latency=3.5e-5,
)
CHICON = HostProfile(
    name="chicon", startup_median=0.045, startup_sigma=0.40,
    stack_latency=3.5e-5,
)
CHINQCHINT = HostProfile(
    name="chinqchint", startup_median=0.008, startup_sigma=0.35,
    stack_latency=2.5e-5,
)

#: Generic modern profile for synthetic platforms in tests/examples.
DEFAULT = HostProfile(
    name="default", startup_median=0.002, startup_sigma=0.30,
)

PROFILES: dict[str, HostProfile] = {
    profile.name: profile
    for profile in (
        SAGITTAIRE, CAPRICORNE, GRAPHENE, GRIFFON, CHTI, CHICON, CHINQCHINT, DEFAULT,
    )
}
