"""Running transfer sets on the testbed and recording completion times.

This is the testbed-side half of the paper's §V protocol: start all
transfers simultaneously, wait for the last byte, record per-transfer
completion times.  A small multiplicative lognormal noise models measurement
jitter (clock granularity, iperf reporting) on top of the structural
behaviour simulated by :mod:`repro.testbed.fluid`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro._util.rng import rng_for
from repro.testbed.crosstraffic import CrossTrafficSpec, inject_background
from repro.testbed.fluid import FluidSimulator, TestbedNetwork


@dataclass(frozen=True)
class MeasuredTransfer:
    """One measured transfer: what the paper's scripts record per iperf run."""

    src: str
    dst: str
    size: float
    #: Measured wall-clock completion time (with measurement noise), seconds.
    duration: float
    #: Noise-free completion time (submission → last byte), seconds.
    raw_duration: float
    #: Sampled application startup overhead included in the duration.
    startup_overhead: float

    def __post_init__(self) -> None:
        if self.duration <= 0 or math.isnan(self.duration):
            raise ValueError(f"invalid measured duration: {self.duration}")


def run_transfers(
    network: TestbedNetwork,
    transfers: list[tuple[str, str, float]],
    seed: int = 0,
    measurement_noise_sigma: float = 0.06,
    background: Optional[CrossTrafficSpec] = None,
) -> list[MeasuredTransfer]:
    """Measure ``(src, dst, size)`` transfers started simultaneously at t=0.

    Returns one :class:`MeasuredTransfer` per input, in input order.  The
    ``seed`` controls every stochastic element (startup overheads, noise,
    background traffic) so repetitions are reproducible.
    """
    sim = FluidSimulator(network, seed=seed)
    flows = [sim.submit(src, dst, size, t=0.0) for src, dst, size in transfers]
    if background is not None:
        inject_background(sim, background, seed=seed)
    sim.run()
    noise_rng = rng_for(seed, "measurement-noise")
    results = []
    for flow in flows:
        raw = flow.completion_time_raw
        noise = math.exp(noise_rng.normal(0.0, measurement_noise_sigma))
        results.append(
            MeasuredTransfer(
                src=flow.src,
                dst=flow.dst,
                size=flow.size,
                duration=raw * noise,
                raw_duration=raw,
                startup_overhead=flow.startup_overhead,
            )
        )
    return results
