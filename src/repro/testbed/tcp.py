"""Per-flow TCP window dynamics: slow start + CUBIC.

Models the sender stack the paper's experiments ran (§V-A): Linux 2.6.32,
CUBIC congestion control with HyStart *disabled*, maximum congestion window
4 MiB (``net.ipv4.tcp_wmem``/``rmem`` tuning).  The fluid engine consults
this state machine for the transient (window-limited) phase of each flow;
the steady phase is capacity-limited and handled by the allocator.

Window arithmetic is in bytes; CUBIC's cubic-growth function internally uses
segments of ``mss`` bytes as in the kernel implementation.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TcpParams:
    """Host TCP stack parameters (defaults = the paper's configuration)."""

    mss: float = 1448.0
    #: Initial congestion window, segments (Linux 2.6.32 default: ~3 MSS).
    initial_window_segments: int = 3
    #: Maximum congestion window (bytes) — 4 MiB in the paper's tuning.
    max_window_bytes: float = 4194304.0
    #: CUBIC aggressiveness constant (kernel default 0.4, units segs/s^3).
    cubic_c: float = 0.4
    #: CUBIC multiplicative-decrease factor (kernel: 717/1024 ≈ 0.7).
    cubic_beta: float = 0.7
    #: Window growth factor per slow-start round.  With delayed ACKs (the
    #: Linux default the paper's kernels ran) the sender receives one ACK per
    #: two segments, so the window multiplies by ≈1.5 per RTT, not 2.
    slow_start_growth: float = 1.5

    @property
    def initial_window_bytes(self) -> float:
        return self.initial_window_segments * self.mss


class TcpPhase(enum.Enum):
    SLOW_START = "slow_start"
    CONGESTION_AVOIDANCE = "congestion_avoidance"


@dataclass
class TcpFlowState:
    """Evolving congestion state of one flow."""

    params: TcpParams = field(default_factory=TcpParams)
    cwnd: float = 0.0
    ssthresh: float = math.inf
    phase: TcpPhase = TcpPhase.SLOW_START
    #: Window size just before the last loss (CUBIC's W_max), bytes.
    w_max: float = 0.0
    #: Seconds of congestion-avoidance time since the last loss event.
    t_since_loss: float = 0.0

    def __post_init__(self) -> None:
        if self.cwnd <= 0.0:
            self.cwnd = self.params.initial_window_bytes

    # -- transitions ---------------------------------------------------------

    def on_round(self, rtt: float) -> None:
        """Advance the window by one RTT round without loss."""
        if rtt <= 0:
            raise ValueError(f"rtt must be positive, got {rtt}")
        if self.phase is TcpPhase.SLOW_START:
            self.cwnd = min(
                self.cwnd * self.params.slow_start_growth,
                self.params.max_window_bytes,
            )
            if self.cwnd >= self.ssthresh:
                self.cwnd = min(self.cwnd, max(self.ssthresh, self.params.initial_window_bytes))
                self._enter_avoidance()
        else:
            self.t_since_loss += rtt
            self.cwnd = min(self.cubic_window(self.t_since_loss), self.params.max_window_bytes)

    def on_loss(self) -> None:
        """Multiplicative decrease (CUBIC β) and switch to avoidance."""
        self.w_max = self.cwnd
        self.cwnd = max(self.cwnd * self.params.cubic_beta, self.params.mss)
        self.ssthresh = self.cwnd
        self.t_since_loss = 0.0
        self.phase = TcpPhase.CONGESTION_AVOIDANCE

    def _enter_avoidance(self) -> None:
        self.phase = TcpPhase.CONGESTION_AVOIDANCE
        # seed CUBIC so that growth continues from the current window
        self.w_max = max(self.w_max, self.cwnd)
        self.t_since_loss = self.cubic_k()

    # -- CUBIC window function -------------------------------------------------

    def cubic_k(self) -> float:
        """CUBIC's K: seconds from a loss until the window regains W_max."""
        w_max_seg = self.w_max / self.params.mss
        drop_seg = w_max_seg * (1.0 - self.params.cubic_beta)
        if drop_seg <= 0:
            return 0.0
        return (drop_seg / self.params.cubic_c) ** (1.0 / 3.0)

    def cubic_window(self, t: float) -> float:
        """W(t) = C·(t − K)³ + W_max, in bytes (RFC 8312 eq. 1)."""
        k = self.cubic_k()
        w_max_seg = self.w_max / self.params.mss
        w_seg = self.params.cubic_c * (t - k) ** 3 + w_max_seg
        return max(w_seg * self.params.mss, self.params.mss)

    # -- queries -----------------------------------------------------------------

    def window_rate(self, rtt: float) -> float:
        """Achievable rate when window-limited: cwnd / RTT (bytes/s)."""
        if rtt <= 0:
            raise ValueError(f"rtt must be positive, got {rtt}")
        return self.cwnd / rtt

    def is_window_limited(self, rtt: float, available_rate: float) -> bool:
        """True while the window, not the network share, caps this flow."""
        return self.window_rate(rtt) < available_rate

    def max_rate(self, rtt: float) -> float:
        """Hard ceiling from the maximum window: max_window / RTT."""
        if rtt <= 0:
            raise ValueError(f"rtt must be positive, got {rtt}")
        return self.params.max_window_bytes / rtt


def slow_start_bytes(params: TcpParams, rounds: int) -> float:
    """Cumulative bytes deliverable in the first ``rounds`` slow-start rounds
    (no loss, no window cap) — geometric series IW·(g^rounds − 1)/(g − 1)."""
    if rounds < 0:
        raise ValueError("rounds must be >= 0")
    g = params.slow_start_growth
    iw = params.initial_window_bytes
    if g == 1.0:
        return iw * rounds
    return iw * (g**rounds - 1.0) / (g - 1.0)


def slow_start_rounds_for(params: TcpParams, size_bytes: float) -> int:
    """Number of slow-start rounds needed to deliver ``size_bytes``
    (ignores window caps) — inverse of :func:`slow_start_bytes`."""
    if size_bytes <= 0:
        return 0
    g = params.slow_start_growth
    iw = params.initial_window_bytes
    if g == 1.0:
        return max(0, math.ceil(size_bytes / iw))
    return max(0, math.ceil(math.log(size_bytes * (g - 1.0) / iw + 1.0, g)))
