"""Background cross-traffic generation.

The paper minimizes cross-traffic perturbation by reserving whole sites at
night and averaging over 10 repetitions (§V-A).  This generator produces the
perturbation those precautions avoid: Poisson flow arrivals with heavy-tailed
(lognormal) sizes between random node pairs.  Headline benches run with it
disabled; robustness tests use it to check that the error metrics degrade
gracefully rather than collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro._util.rng import rng_for
from repro.testbed.fluid import FluidSimulator, TestbedNetwork


@dataclass(frozen=True)
class CrossTrafficSpec:
    """Shape of the background load."""

    #: Mean flow arrivals per second across the whole platform.
    arrival_rate: float = 2.0
    #: Lognormal parameters of flow sizes (ln-space); defaults give a median
    #: of ~10 MB with a heavy tail.
    size_log_mean: float = 16.1
    size_log_sigma: float = 1.8
    #: Arrival window [0, duration) in seconds.
    duration: float = 30.0
    #: Restrict endpoints to these nodes (None = all nodes).
    nodes: Optional[Sequence[str]] = None

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError("arrival_rate must be >= 0")
        if self.duration <= 0:
            raise ValueError("duration must be positive")


def inject_background(
    sim: FluidSimulator,
    spec: CrossTrafficSpec,
    seed: int = 0,
) -> int:
    """Submit background flows into ``sim`` per ``spec``; returns the count."""
    network = sim.network
    pool = list(spec.nodes) if spec.nodes is not None else sorted(network.nodes)
    if len(pool) < 2:
        raise ValueError("need at least two nodes for cross-traffic")
    rng = rng_for(seed, "crosstraffic")
    count = 0
    t = 0.0
    if spec.arrival_rate <= 0:
        return 0
    while True:
        t += rng.exponential(1.0 / spec.arrival_rate)
        if t >= spec.duration:
            break
        src, dst = rng.choice(len(pool), size=2, replace=False)
        size = float(rng.lognormal(spec.size_log_mean, spec.size_log_sigma))
        size = min(max(size, 1e4), 5e9)  # clip the pathological tail
        sim.submit(pool[int(src)], pool[int(dst)], size, t=t, is_background=True)
        count += 1
    return count
