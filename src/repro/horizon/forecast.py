"""Multi-horizon forecasts with stability safeguards.

NWS predictors (:mod:`repro.nws`) are one-step point estimators; iterating
them naively k steps ahead diverges — the classic failure mode of lagged
dynamic network models (Mallik & Almquist).  This module rolls an
:class:`~repro.nws.forecaster.AdaptiveForecaster` forward k steps with the
three published safeguards:

- **damped trend** — the per-step drift estimated from the recent window is
  applied with a geometric damping factor ``phi``, so the cumulative
  excursion is bounded by ``trend · phi / (1 - phi)`` instead of growing
  linearly;
- **divergence cutoff** — once the rolled trajectory has moved more than
  ``cutoff_frac`` of the one-step anchor away from it (an iterated model
  extrapolating outside its support), the trajectory is held flat and the
  step is flagged;
- **physical clamp** — every point forecast and interval endpoint is
  clamped to ``[floor, capacity]`` (a link cannot exceed its configured
  capacity, nor go negative).

Per-step **prediction intervals** come from the forecaster's one-step
residual history: the half-width at horizon h is ``z · sigma · sqrt(h)``
(sigma = RMS of recent one-step residuals), so intervals widen
monotonically with the horizon — uncertainty accumulates over iterated
steps.  The *unclamped* half-width is kept on each step so the
monotonicity is observable even when the clamp saturates an endpoint.

:class:`PlatformHorizon` keeps one :class:`HorizonForecaster` per link of a
platform and turns projections into the ``capacity_factors`` dict the
simulation engine already understands — the bridge from per-link series
forecasting to whole-platform what-if answers (:mod:`repro.horizon.whatif`).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.nws.forecaster import AdaptiveForecaster, ColdSeriesError

#: Capacity factors must stay positive: the floor a projection can derate to.
MIN_CAPACITY_FACTOR = 1e-9


@dataclass(frozen=True)
class HorizonStep:
    """One step of a rolled-forward forecast."""

    #: 1-based horizon index (step 1 = one step ahead).
    step: int
    #: Point forecast, clamped to ``[floor, capacity]``.
    value: float
    #: Prediction-interval endpoints, clamped to ``[floor, capacity]``.
    lower: float
    upper: float
    #: Unclamped interval half-width ``z · sigma · sqrt(step)`` — monotone
    #: non-decreasing in ``step`` even when the clamp saturates the bounds.
    half_width: float
    #: True once the divergence cutoff held the trajectory at this step.
    cutoff: bool

    def to_json(self) -> dict:
        return {"step": self.step, "value": self.value, "lower": self.lower,
                "upper": self.upper, "half_width": self.half_width,
                "cutoff": self.cutoff}


@dataclass(frozen=True)
class HorizonSeries:
    """A k-step forecast trajectory for one series."""

    steps: tuple[HorizonStep, ...]
    #: The one-step adaptive forecast the roll is anchored on.
    base: float
    #: Damped per-step trend estimate (before damping weights).
    trend: float
    #: Residual scale the intervals are built from.
    sigma: float
    #: First step where the divergence cutoff engaged, or None.
    cutoff_step: Optional[int]

    def __len__(self) -> int:
        return len(self.steps)

    def at(self, step: int) -> HorizonStep:
        """The forecast ``step`` steps ahead (1-based)."""
        return self.steps[step - 1]

    def to_json(self) -> dict:
        return {
            "base": self.base,
            "trend": self.trend,
            "sigma": self.sigma,
            "cutoff_step": self.cutoff_step,
            "steps": [s.to_json() for s in self.steps],
        }


class HorizonForecaster:
    """Rolls one adaptive one-step forecaster forward k steps, stably.

    Wraps an :class:`AdaptiveForecaster` (the NWS battery + best-predictor
    selection) and keeps two bounded windows of its own: recent
    observations (for the trend estimate) and one-step residuals (for the
    interval scale).  ``capacity`` is the physical ceiling of the series —
    for a link-bandwidth series, the link's configured capacity.
    """

    def __init__(
        self,
        capacity: float = math.inf,
        floor: float = 0.0,
        window: int = 32,
        phi: float = 0.8,
        z: float = 2.0,
        cutoff_frac: float = 0.25,
        factories: Optional[Sequence] = None,
    ) -> None:
        if not 0.0 < phi < 1.0:
            raise ValueError(f"damping phi must be in (0, 1), got {phi}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if z < 0:
            raise ValueError(f"interval width z must be >= 0, got {z}")
        if cutoff_frac <= 0:
            raise ValueError(f"cutoff_frac must be > 0, got {cutoff_frac}")
        if capacity <= floor:
            raise ValueError(
                f"capacity must exceed floor, got [{floor}, {capacity}]")
        self.capacity = float(capacity)
        self.floor = float(floor)
        self.phi = float(phi)
        self.z = float(z)
        self.cutoff_frac = float(cutoff_frac)
        self.forecaster = AdaptiveForecaster(factories)
        self._window: deque[float] = deque(maxlen=window)
        self._residuals: deque[float] = deque(maxlen=window)

    # -- feeding ------------------------------------------------------------

    def update(self, value: float, weight: int = 1) -> None:
        """Feed one measurement (``weight`` replays it, like the
        forecaster's consolidated-archive contract); records the one-step
        residual of the *pre-update* forecast first."""
        for _ in range(max(1, int(weight))):
            postcast = self.forecaster.forecast(default=None)
            if postcast is not None:
                self._residuals.append(value - postcast)
            self.forecaster.update(value)
            self._window.append(float(value))

    @property
    def ready(self) -> bool:
        return self.forecaster.ready

    @property
    def observations(self) -> int:
        return self.forecaster.observations

    # -- the safeguards -----------------------------------------------------

    def _trend(self) -> float:
        """Least-squares slope over the recent window (0 when too cold)."""
        n = len(self._window)
        if n < 2:
            return 0.0
        mean_i = (n - 1) / 2.0
        mean_x = sum(self._window) / n
        num = 0.0
        den = 0.0
        for i, x in enumerate(self._window):
            di = i - mean_i
            num += di * (x - mean_x)
            den += di * di
        return num / den if den else 0.0

    def _sigma(self) -> float:
        """RMS of recent one-step residuals (0 on a perfectly predicted
        series — intervals then collapse honestly instead of inventing
        width)."""
        if not self._residuals:
            return 0.0
        return math.sqrt(
            sum(r * r for r in self._residuals) / len(self._residuals))

    def _clamp(self, value: float) -> float:
        return min(max(value, self.floor), self.capacity)

    # -- forecasting --------------------------------------------------------

    def forecast_horizon(self, horizon: int) -> HorizonSeries:
        """Roll the current best predictor forward ``horizon`` steps.

        Raises :class:`ColdSeriesError` (from the wrapped forecaster) when
        the series has no usable observation yet.
        """
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        base = self.forecaster.forecast()  # raises ColdSeriesError when cold
        trend = self._trend()
        sigma = self._sigma()
        # the iterated model may drift at most this far from its anchor
        # before the divergence cutoff holds the trajectory
        max_excursion = self.cutoff_frac * max(abs(base), sigma,
                                               abs(trend), 1e-12)
        steps: list[HorizonStep] = []
        cutoff_step: Optional[int] = None
        damp = 0.0  # sum_{j=1..h} phi^j
        phi_pow = 1.0
        excursion = 0.0
        for h in range(1, horizon + 1):
            if cutoff_step is None:
                phi_pow *= self.phi
                damp += phi_pow
                excursion = trend * damp
                if abs(excursion) > max_excursion:
                    cutoff_step = h
                    excursion = math.copysign(max_excursion, excursion)
            value = self._clamp(base + excursion)
            half_width = self.z * sigma * math.sqrt(h)
            steps.append(HorizonStep(
                step=h,
                value=value,
                lower=self._clamp(value - half_width),
                upper=self._clamp(value + half_width),
                half_width=half_width,
                cutoff=cutoff_step is not None,
            ))
        return HorizonSeries(steps=tuple(steps), base=base, trend=trend,
                             sigma=sigma, cutoff_step=cutoff_step)


class PlatformHorizon:
    """Per-link horizon forecasters for one platform.

    ``observe(link, value)`` feeds the link's bandwidth series (creating
    the forecaster lazily with the link's *current* bandwidth as physical
    capacity); ``project(k)`` returns one :class:`HorizonSeries` per warm
    link; ``capacity_factors_at(k)`` turns a projection into the
    ``{link: factor}`` dict the engine's ``capacity_factors`` machinery
    consumes — factors are relative to the link's live bandwidth and
    clamped to ``(0, 1]`` (projections derate; they never promise more
    than the configured capacity).
    """

    def __init__(self, platform, **forecaster_kwargs) -> None:
        self.platform = platform
        self._kwargs = dict(forecaster_kwargs)
        self._links: dict[str, HorizonForecaster] = {}

    def __len__(self) -> int:
        return len(self._links)

    def forecaster_for(self, link_name: str) -> HorizonForecaster:
        """The (lazily created) forecaster of one link."""
        forecaster = self._links.get(link_name)
        if forecaster is None:
            link = self.platform.link(link_name)  # raises on unknown links
            forecaster = HorizonForecaster(capacity=link.bandwidth,
                                           **self._kwargs)
            self._links[link_name] = forecaster
        return forecaster

    def observe(self, link_name: str, value: float, weight: int = 1) -> None:
        """Feed one bandwidth measurement for ``link_name``."""
        self.forecaster_for(link_name).update(value, weight=weight)

    def ready_links(self) -> list[str]:
        return sorted(name for name, f in self._links.items() if f.ready)

    def project(self, horizon: int) -> dict[str, HorizonSeries]:
        """``{link: HorizonSeries}`` for every warm link."""
        projection: dict[str, HorizonSeries] = {}
        for name in self.ready_links():
            try:
                projection[name] = self._links[name].forecast_horizon(horizon)
            except ColdSeriesError:  # pragma: no cover - ready_links guards
                continue
        return projection

    def capacity_factors_at(
        self,
        horizon: int,
        bound: str = "value",
        combine: Optional[dict[str, float]] = None,
    ) -> dict[str, float]:
        """Projected capacity factors ``horizon`` steps ahead.

        ``bound`` selects the trajectory: ``"value"`` (point forecast),
        ``"lower"`` (pessimistic — interval lower bound) or ``"upper"``
        (optimistic).  ``combine`` multiplies explicit factors (e.g. a
        background-traffic model's) into the projection, clamped to
        ``(0, 1]``.
        """
        if bound not in ("value", "lower", "upper"):
            raise ValueError(f"bound must be value/lower/upper, got {bound!r}")
        factors = dict(combine or {})
        for name, series in self.project(horizon).items():
            projected = getattr(series.at(horizon), bound)
            live = self.platform.link(name).bandwidth
            factor = projected / live if live > 0 else 1.0
            factor *= factors.get(name, 1.0)
            factors[name] = min(1.0, max(factor, MIN_CAPACITY_FACTOR))
        return factors

    def info(self) -> dict:
        """Counters for ``/pilgrim/stats``."""
        return {
            "links": len(self._links),
            "ready": len(self.ready_links()),
            "observations": sum(f.observations
                                for f in self._links.values()),
        }
