"""Multi-horizon forecasting and what-if planning.

- :mod:`repro.horizon.forecast` — per-series k-step forecasts with damped
  trend, divergence cutoff, physical clamping and residual-history
  prediction intervals; :class:`PlatformHorizon` keeps one per platform
  link and emits projected ``capacity_factors``.
- :mod:`repro.horizon.whatif` — transient ``LinkEvent`` schedules run
  through the scenario dynamics machinery against a live platform, with
  snapshot/restore sandboxing.

The forecast service composes both:
:meth:`repro.core.forecast.NetworkForecastService.predict_transfers_at`
(forecasts under the projected platform state k steps ahead) and
:meth:`~repro.core.forecast.NetworkForecastService.predict_what_if`
(forecasts under a hypothetical event schedule), both answering with
interval-annotated :class:`~repro.core.forecast.TransferForecast` 4-uples.
See ``docs/PLANNING.md``.
"""

from repro.horizon.forecast import (
    MIN_CAPACITY_FACTOR,
    HorizonForecaster,
    HorizonSeries,
    HorizonStep,
    PlatformHorizon,
)
from repro.horizon.whatif import (
    events_from_json,
    parse_event,
    run_what_if,
    transient_link_states,
)

__all__ = [
    "MIN_CAPACITY_FACTOR",
    "HorizonForecaster",
    "HorizonSeries",
    "HorizonStep",
    "PlatformHorizon",
    "events_from_json",
    "parse_event",
    "run_what_if",
    "transient_link_states",
]
