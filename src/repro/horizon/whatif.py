"""What-if transfer forecasts: transient ``LinkEvent`` schedules.

A what-if query — "these transfers, if link X degrades 50% at t+30s" —
composes a forecast request with a :class:`~repro.scenarios.spec.LinkEvent`
schedule.  The events run through the *existing* dynamics machinery
(:func:`repro.scenarios.dynamics.schedule_dynamics`): timers mutate matched
links in place, which bumps the global link-mutation epoch and recalibrates
in-flight transfers exactly like the scenario runner and the metrology
latency feed do — so a what-if answer is bit-identical to hand-building the
same ``ScenarioSpec`` dynamics on the same platform.

Because the schedule mutates *live* registered platforms, the run is
sandboxed: link states touched by the schedule are snapshotted up front and
restored afterwards (only values that actually changed are written back, so
an untouched run does not bump the epoch).  The transient bumps during the
run invalidate epoch-keyed caches by design — that is the consistency
mechanism the whole stack trusts; callers that answer concurrent point
queries serialize what-if runs behind a lock (see
:meth:`repro.core.forecast.NetworkForecastService.predict_what_if`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Optional, Sequence

from repro.scenarios.dynamics import DynamicsLog, schedule_dynamics
from repro.scenarios.spec import LinkEvent
from repro.simgrid.engine import Simulation
from repro.simgrid.msg import transfer_processes


@contextmanager
def transient_link_states(platform, patterns: Iterable[str]):
    """Snapshot the links matching ``patterns``; restore them on exit.

    Restoration writes back only values that actually changed, so the exit
    path bumps the link-mutation epoch once per genuinely mutated quantity
    and not at all for a schedule that never fired.
    """
    touched: dict[str, tuple[object, float, float]] = {}
    for pattern in patterns:
        for link in platform.links_matching(pattern):
            touched.setdefault(link.name, (link, link.bandwidth, link.latency))
    try:
        yield
    finally:
        for link, bandwidth, latency in touched.values():
            if link.bandwidth != bandwidth:
                link.bandwidth = bandwidth
            if link.latency != latency:
                link.latency = latency


def run_what_if(
    platform,
    model,
    transfers: Sequence[tuple[str, str, float]],
    events: Sequence[LinkEvent],
    ongoing: Sequence[tuple[str, str, float]] = (),
    capacity_factors: Optional[dict[str, float]] = None,
    full_resolve: bool = False,
    vectorized: bool = True,
) -> tuple[list[dict], DynamicsLog]:
    """One what-if simulation; returns (transfer records, applied events).

    The call order matches :func:`repro.scenarios.runner.run_scenario` —
    dynamics scheduled first (at clock 0), then ongoing background comms,
    then the forecast transfers — so an equivalent hand-built scenario run
    produces bit-identical completion times.  The platform's touched link
    states are restored before returning.
    """
    with transient_link_states(platform, (e.link for e in events)):
        sim = Simulation(platform, model, capacity_factors=capacity_factors,
                         full_resolve=full_resolve, vectorized=vectorized)
        log = schedule_dynamics(sim, events)
        for idx, (src, dst, size) in enumerate(ongoing):
            sim.add_comm(src, dst, size, name=f"ongoing:{src}->{dst}#{idx}")
        records = transfer_processes(sim, list(transfers))
    return records, log


def parse_event(text: str) -> LinkEvent:
    """Parse the CLI/query form ``time,link,action[,factor]``."""
    parts = [p.strip() for p in str(text).split(",")]
    if len(parts) not in (3, 4):
        raise ValueError(
            f"event must be 'time,link,action[,factor]', got {text!r}")
    time, link, action = parts[0], parts[1], parts[2]
    factor = float(parts[3]) if len(parts) == 4 else 1.0
    return LinkEvent(time=float(time), link=link, action=action,
                     factor=factor)


def events_from_json(items: Sequence) -> list[LinkEvent]:
    """Decode a JSON ``events`` array (dicts in ``LinkEvent.to_json`` form)."""
    events: list[LinkEvent] = []
    for item in items:
        if not isinstance(item, dict):
            raise ValueError(
                f"each event must be an object with time/link/action, "
                f"got {item!r}")
        events.append(LinkEvent.from_json(item))
    return events
