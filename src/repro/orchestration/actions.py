"""Composable experiment actions (the execo Action model).

An :class:`Action` has the execo lifecycle: ``start()`` (idempotent
transition to RUNNING), ``wait()`` (block until finished, return the
action), ``run()`` (= start + wait).  Results accumulate in ``reports``.
On the simulated testbed "remote execution" is a Python callable per host;
the value of keeping the shape is that experiment scripts read like the
paper's execo scripts and the engine can compose them.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional, Sequence


class ActionError(Exception):
    """Action protocol violations or remote failures."""


class ActionState(enum.Enum):
    NEW = "new"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class Action:
    """Base action; subclasses implement :meth:`_execute`."""

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self.state = ActionState.NEW
        self.reports: list[object] = []
        self.error: Optional[BaseException] = None

    def start(self) -> "Action":
        if self.state is not ActionState.NEW:
            raise ActionError(f"action {self.name!r} already started")
        self.state = ActionState.RUNNING
        return self

    def wait(self) -> "Action":
        if self.state is ActionState.NEW:
            raise ActionError(f"action {self.name!r} not started")
        if self.state is ActionState.RUNNING:
            try:
                self.reports = list(self._execute())
                self.state = ActionState.DONE
            except Exception as exc:  # noqa: BLE001 - recorded, re-raised
                self.state = ActionState.FAILED
                self.error = exc
                raise
        if self.state is ActionState.FAILED:
            assert self.error is not None
            raise self.error
        return self

    def run(self) -> "Action":
        return self.start().wait()

    @property
    def ok(self) -> bool:
        return self.state is ActionState.DONE

    def _execute(self) -> Sequence[object]:
        raise NotImplementedError


class FunctionAction(Action):
    """Run one callable; its return value is the single report."""

    def __init__(self, func: Callable[[], object], name: str = "") -> None:
        super().__init__(name or getattr(func, "__name__", "function"))
        self._func = func

    def _execute(self) -> Sequence[object]:
        return [self._func()]


class Remote(Action):
    """A per-host callable set — execo's ``Remote(cmd, hosts)``.

    ``func`` is called once per host with the host name; each return value
    becomes one report (in host order).
    """

    def __init__(self, func: Callable[[str], object], hosts: Sequence[str],
                 name: str = "") -> None:
        super().__init__(name or "remote")
        if not hosts:
            raise ActionError("Remote needs at least one host")
        self._func = func
        self.hosts = list(hosts)

    def _execute(self) -> Sequence[object]:
        return [self._func(host) for host in self.hosts]


class SequentialActions(Action):
    """Run sub-actions one after the other; reports are concatenated."""

    def __init__(self, actions: Sequence[Action], name: str = "") -> None:
        super().__init__(name or "sequential")
        self.actions = list(actions)

    def _execute(self) -> Sequence[object]:
        reports: list[object] = []
        for action in self.actions:
            action.run()
            reports.extend(action.reports)
        return reports


class ParallelActions(Action):
    """Start all sub-actions, then wait for all (simulated concurrency).

    On the simulated testbed true concurrency lives inside the fluid
    simulator; this preserves execo's composition semantics so scripts that
    "simultaneously start iperf clients on all source nodes" read the same.
    """

    def __init__(self, actions: Sequence[Action], name: str = "") -> None:
        super().__init__(name or "parallel")
        self.actions = list(actions)

    def _execute(self) -> Sequence[object]:
        for action in self.actions:
            action.start()
        reports: list[object] = []
        for action in self.actions:
            action.wait()
            reports.extend(action.reports)
        return reports
