"""execo-like experiment orchestration.

"The automated execution of all these steps is performed using the Execo
tool, which allows powerful scripting of the experiments in python" (§V-A).
This subpackage provides the same vocabulary over the testbed:

- :mod:`repro.orchestration.actions` — composable actions (remote process
  sets, sequences, parallel groups) with start/wait lifecycle,
- :mod:`repro.orchestration.sweep` — parameter sweeps (cartesian products
  with exclusions), execo_engine-style,
- :mod:`repro.orchestration.engine` — the experiment engine running each
  combination with retries and result collection.
"""

from repro.orchestration.actions import (
    Action,
    ActionError,
    FunctionAction,
    ParallelActions,
    Remote,
    SequentialActions,
)
from repro.orchestration.engine import ExperimentEngine, combination_id
from repro.orchestration.sweep import ParamSweep

__all__ = [
    "Action",
    "ActionError",
    "FunctionAction",
    "ParallelActions",
    "Remote",
    "SequentialActions",
    "ParamSweep",
    "ExperimentEngine",
    "combination_id",
]
