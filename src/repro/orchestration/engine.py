"""The experiment engine: run every sweep combination, collect results.

Mirrors execo_engine's workflow: iterate a :class:`ParamSweep`, call the
experiment body per combination, retry failures a bounded number of times,
and keep (combination, result) pairs.  Deterministic: the per-combination
seed derives from the engine seed and the combination id.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro._util.rng import derive_seed
from repro.orchestration.sweep import ParamSweep, combination_id

__all__ = ["ExperimentEngine", "combination_id"]


class ExperimentEngine:
    """Runs ``body(combination, seed) -> result`` over a sweep."""

    def __init__(
        self,
        sweep: ParamSweep,
        body: Callable[[dict, int], object],
        seed: int = 0,
        max_retries: int = 1,
        progress: Optional[Callable[[dict, object], None]] = None,
    ) -> None:
        self.sweep = sweep
        self.body = body
        self.seed = seed
        self.max_retries = max_retries
        self.progress = progress
        self.results: list[tuple[dict, object]] = []
        self.failures: list[tuple[dict, BaseException]] = []

    def run(self) -> list[tuple[dict, object]]:
        """Execute all combinations; returns (combination, result) pairs."""
        for combination, comb_seed in self.sweep.seeded_combinations(self.seed):
            result: object = None
            last_error: Optional[BaseException] = None
            for attempt in range(self.max_retries + 1):
                try:
                    result = self.body(combination, derive_seed(comb_seed, attempt))
                    last_error = None
                    break
                except Exception as exc:  # noqa: BLE001 - engine boundary
                    last_error = exc
            if last_error is not None:
                self.failures.append((combination, last_error))
                continue
            self.results.append((combination, result))
            if self.progress is not None:
                self.progress(combination, result)
        return self.results
