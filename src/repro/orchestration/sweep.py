"""Parameter sweeps (execo_engine's ``sweep``/``ParamSweeper`` shape).

A :class:`ParamSweep` is the cartesian product of named parameter value
lists, with optional exclusion predicates (e.g. the paper never runs
1 source × 1 destination grid experiments).

This module also owns the sweep-level identities every executor builds on:
:func:`combination_id` (stable, filesystem-safe) and
:meth:`ParamSweep.seeded_combinations` (the per-combination seed chain that
the serial :class:`~repro.orchestration.engine.ExperimentEngine` and the
parallel campaign executor share, so both produce bit-identical results)."""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, Optional, Sequence

from repro._util.parallel import pool_chunk_size
from repro._util.rng import derive_seed


def combination_id(combination: dict) -> str:
    """Stable, filesystem-safe identifier of a sweep combination."""
    parts = [f"{key}={combination[key]}" for key in sorted(combination)]
    return "__".join(parts).replace(" ", "").replace("/", "-")


class ParamSweep:
    """Cartesian product of parameter values, as dicts."""

    def __init__(self, parameters: dict[str, Sequence[object]]) -> None:
        if not parameters:
            raise ValueError("sweep needs at least one parameter")
        for key, values in parameters.items():
            if not values:
                raise ValueError(f"parameter {key!r} has no values")
        self.parameters = {key: list(values) for key, values in parameters.items()}
        self._exclusions: list[Callable[[dict], bool]] = []

    def exclude(self, predicate: Callable[[dict], bool]) -> "ParamSweep":
        """Skip combinations where ``predicate`` is true (chainable)."""
        self._exclusions.append(predicate)
        return self

    def __iter__(self) -> Iterator[dict]:
        keys = list(self.parameters)
        for values in itertools.product(*(self.parameters[k] for k in keys)):
            combination = dict(zip(keys, values))
            if any(excl(combination) for excl in self._exclusions):
                continue
            yield combination

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def combinations(self) -> list[dict]:
        return list(self)

    def seeded_combinations(self, root_seed: int) -> list[tuple[dict, int]]:
        """``(combination, seed)`` pairs, seeds derived from ``root_seed``
        and the combination id.

        This is the single source of per-combination seeds: the serial
        engine and the parallel campaign executor both consume it, which is
        what makes their results bit-identical regardless of worker count or
        scheduling order.
        """
        return [
            (combination, derive_seed(root_seed, combination_id(combination)))
            for combination in self
        ]

    @staticmethod
    def chunk_size(n_items: int, workers: int, per_worker_waves: int = 4) -> int:
        """A map chunksize giving each worker ~``per_worker_waves`` chunks
        (see :func:`repro._util.parallel.pool_chunk_size`)."""
        return pool_chunk_size(n_items, workers, per_worker_waves)
