"""Parameter sweeps (execo_engine's ``sweep``/``ParamSweeper`` shape).

A :class:`ParamSweep` is the cartesian product of named parameter value
lists, with optional exclusion predicates (e.g. the paper never runs
1 source × 1 destination grid experiments)."""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, Optional, Sequence


class ParamSweep:
    """Cartesian product of parameter values, as dicts."""

    def __init__(self, parameters: dict[str, Sequence[object]]) -> None:
        if not parameters:
            raise ValueError("sweep needs at least one parameter")
        for key, values in parameters.items():
            if not values:
                raise ValueError(f"parameter {key!r} has no values")
        self.parameters = {key: list(values) for key, values in parameters.items()}
        self._exclusions: list[Callable[[dict], bool]] = []

    def exclude(self, predicate: Callable[[dict], bool]) -> "ParamSweep":
        """Skip combinations where ``predicate`` is true (chainable)."""
        self._exclusions.append(predicate)
        return self

    def __iter__(self) -> Iterator[dict]:
        keys = list(self.parameters)
        for values in itertools.product(*(self.parameters[k] for k in keys)):
            combination = dict(zip(keys, values))
            if any(excl(combination) for excl in self._exclusions):
                continue
            yield combination

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def combinations(self) -> list[dict]:
        return list(self)
