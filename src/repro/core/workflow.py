"""Workflow forecasting: computations + transfers (§VI future work).

"In the future we plan to add some service which will not only forecast
network transfers but also full workflows involving computations and network
transfers.  This is another reason why we chose SimGrid, as adding the
simulation of computation will be straightforward."

A workflow is a :class:`~repro.simgrid.tasks.TaskGraph`: tasks placed on
hosts, each consuming its predecessors' output data (moved over the
simulated network) and then computing its flops.  The forecast runs the DAG
on the MSG layer — one process per task — and reports per-task finish times
and the makespan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.forecast import NetworkForecastService
from repro.core.rest.errors import BadRequest, NotFound
from repro.simgrid.engine import Simulation
from repro.simgrid.models import NetworkModel
from repro.simgrid.msg import add_process
from repro.simgrid.tasks import TaskGraph


@dataclass(frozen=True)
class WorkflowForecast:
    """Predicted schedule of one workflow."""

    makespan: float
    #: task name -> (start_time, finish_time)
    task_times: dict
    #: (producer, consumer) -> transfer completion time
    transfer_times: dict

    def to_json(self) -> dict:
        return {
            "makespan": self.makespan,
            "tasks": {
                name: {"start": start, "finish": finish}
                for name, (start, finish) in sorted(self.task_times.items())
            },
            "transfers": {
                f"{p}->{c}": t for (p, c), t in sorted(self.transfer_times.items())
            },
        }


class WorkflowForecastService:
    """Workflow predictions over the forecast service's platforms."""

    def __init__(self, forecast: NetworkForecastService) -> None:
        self.forecast = forecast

    def predict_workflow(
        self,
        platform_name: str,
        graph: TaskGraph,
        model: Optional[NetworkModel] = None,
    ) -> WorkflowForecast:
        """Simulate the workflow; returns task times and makespan."""
        try:
            graph.validate()
        except ValueError as exc:
            raise BadRequest(f"invalid workflow: {exc}") from None
        platform = self.forecast.platform(platform_name)
        for name, host in graph.placement.items():
            if not platform.has_host(host):
                raise NotFound(f"unknown host {host!r} for task {name!r}")

        sim = Simulation(platform, model or self.forecast.model)
        task_times: dict[str, tuple[float, float]] = {}
        transfer_times: dict[tuple[str, str], float] = {}

        def task_process(ctx, name):
            task = graph.tasks[name]
            preds = graph.predecessors(name)
            if preds:
                recvs = [ctx.recv(f"wf-{p}->{name}") for p in preds]
                yield ctx.wait_all(recvs)
                for p in preds:
                    transfer_times[(p, name)] = ctx.now
            start = ctx.now
            if task.flops > 0:
                yield ctx.execute(task.flops)
            task_times[name] = (start, ctx.now)
            for succ in graph.successors(name):
                # successors wait on the data, so completion of the send is
                # tracked on their side; fire-and-forget here
                ctx.send(f"wf-{name}->{succ}", max(task.output_bytes, 1.0))
            if not graph.successors(name):
                return
            yield ctx.sleep(0.0)

        for name in graph.tasks:
            add_process(sim, f"task-{name}", graph.placement[name], task_process, name)
        sim.run()

        if len(task_times) != len(graph.tasks):
            missing = sorted(set(graph.tasks) - set(task_times))
            raise BadRequest(f"workflow deadlocked; tasks never ran: {missing}")
        makespan = max(finish for (_, finish) in task_times.values())
        return WorkflowForecast(
            makespan=makespan,
            task_times=dict(task_times),
            transfer_times=dict(transfer_times),
        )
