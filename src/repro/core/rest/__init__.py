"""REST layer: router, JSON codec, threaded HTTP server, client."""

from repro.core.rest.errors import ApiError, BadRequest, NotFound
from repro.core.rest.router import Request, Router
from repro.core.rest.server import PilgrimHTTPServer
from repro.core.rest.client import RestClient

__all__ = [
    "ApiError",
    "BadRequest",
    "NotFound",
    "Request",
    "Router",
    "PilgrimHTTPServer",
    "RestClient",
]
