"""URI routing for the REST services.

Route patterns are slash-separated segments; a segment may embed one
``{placeholder}`` with optional literal prefix/suffix, e.g.::

    /pilgrim/rrd/{tool}/{site}/{host}/{metric}.rrd

matches the paper's example request and binds ``metric="pdu"`` for
``…/pdu.rrd``.  Query parameters are multi-valued (``?transfer=…&transfer=…``
is how PNFS receives its transfer list, §IV-C2).
"""

from __future__ import annotations

import re
import urllib.parse
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.rest.errors import ApiError, BadRequest, MethodNotAllowed, NotFound

_SEGMENT_RE = re.compile(r"^(?P<prefix>[^{}]*)\{(?P<name>[A-Za-z_][A-Za-z0-9_]*)\}(?P<suffix>[^{}]*)$")

#: Sentinel distinguishing "no default" from an explicit ``None`` default.
_MISSING = object()


@dataclass(frozen=True)
class Request:
    """A parsed HTTP request.

    ``body`` carries the decoded JSON document of a POST request (``None``
    for body-less methods — the GET contract is unchanged).
    """

    method: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    body: Optional[object] = None

    @staticmethod
    def from_target(method: str, target: str,
                    body: Optional[object] = None) -> "Request":
        """Build from a raw request target like ``/a/b?x=1&x=2``."""
        parsed = urllib.parse.urlsplit(target)
        query = urllib.parse.parse_qs(parsed.query, keep_blank_values=True)
        return Request(method=method.upper(),
                       path=urllib.parse.unquote(parsed.path), query=query,
                       body=body)

    # -- convenient, validated accessors -----------------------------------

    def json_body(self) -> object:
        """The request's JSON document; :class:`BadRequest` if absent."""
        if self.body is None:
            raise BadRequest("a JSON request body is required")
        return self.body

    def body_field(self, name: str, default: object = _MISSING) -> object:
        """One key of a JSON-object body, with optional default."""
        body = self.json_body()
        if not isinstance(body, dict):
            raise BadRequest("request body must be a JSON object")
        if name in body:
            return body[name]
        if default is not _MISSING:
            return default
        raise BadRequest(f"missing body field {name!r}")

    def param(self, name: str, default: Optional[str] = None) -> str:
        values = self.query.get(name)
        if not values:
            if default is not None:
                return default
            raise BadRequest(f"missing query parameter {name!r}")
        return values[-1]

    def params(self, name: str) -> list[str]:
        return list(self.query.get(name, []))

    def float_param(self, name: str, default: Optional[float] = None) -> float:
        raw = self.query.get(name)
        if not raw:
            if default is not None:
                return default
            raise BadRequest(f"missing query parameter {name!r}")
        try:
            return float(raw[-1])
        except ValueError:
            raise BadRequest(f"parameter {name!r} is not a number: {raw[-1]!r}") from None


class _Route:
    def __init__(self, method: str, pattern: str, handler: Callable) -> None:
        self.method = method.upper()
        self.handler = handler
        self.segments: list[tuple[str, str, str, Optional[str]]] = []
        cleaned = pattern.strip("/")
        for raw in cleaned.split("/") if cleaned else []:
            match = _SEGMENT_RE.match(raw)
            if match:
                self.segments.append(
                    (match.group("prefix"), match.group("suffix"), raw, match.group("name"))
                )
            else:
                self.segments.append((raw, "", raw, None))

    def match(self, path: str) -> Optional[dict[str, str]]:
        cleaned = path.strip("/")
        parts = cleaned.split("/") if cleaned else []
        if len(parts) != len(self.segments):
            return None
        bound: dict[str, str] = {}
        for part, (prefix, suffix, literal, name) in zip(parts, self.segments):
            if name is None:
                if part != literal:
                    return None
            else:
                if not part.startswith(prefix) or not part.endswith(suffix):
                    return None
                value = part[len(prefix): len(part) - len(suffix) if suffix else len(part)]
                if not value:
                    return None
                bound[name] = value
        return bound


class Router:
    """Dispatches requests to handlers; converts errors to JSON responses."""

    def __init__(self) -> None:
        self._routes: list[_Route] = []

    def add(self, method: str, pattern: str, handler: Callable) -> None:
        """Register ``handler(request, **path_params) -> json-able``."""
        self._routes.append(_Route(method, pattern, handler))

    def get(self, pattern: str) -> Callable:
        """Decorator form for GET routes."""

        def decorate(handler: Callable) -> Callable:
            self.add("GET", pattern, handler)
            return handler

        return decorate

    def post(self, pattern: str) -> Callable:
        """Decorator form for POST routes (JSON body in ``request.body``)."""

        def decorate(handler: Callable) -> Callable:
            self.add("POST", pattern, handler)
            return handler

        return decorate

    def dispatch(self, request: Request) -> tuple[int, object]:
        """Returns ``(http_status, payload)``; payload is JSON-able."""
        path_exists = False
        for route in self._routes:
            bound = route.match(request.path)
            if bound is None:
                continue
            path_exists = True
            if route.method != request.method:
                continue
            try:
                return 200, route.handler(request, **bound)
            except ApiError as exc:
                return exc.status, exc.to_json()
            except Exception as exc:  # noqa: BLE001 - service boundary
                return 500, {"error": "InternalError", "status": 500,
                             "message": f"{type(exc).__name__}: {exc}"}
        if path_exists:
            err = MethodNotAllowed(f"{request.method} not allowed on {request.path}")
            return err.status, err.to_json()
        err = NotFound(f"no route for {request.path}")
        return err.status, err.to_json()
