"""Threaded HTTP server exposing a :class:`~repro.core.rest.router.Router`.

Binds to an ephemeral port by default so tests and examples can run many
instances concurrently.  The server is deliberately minimal — HTTP GET with
URI-embedded parameters and JSON answers is the paper's full transport
contract (§IV-C).  POST with a JSON body is the serving-layer extension for
transfer lists too large to embed in a request target.

Speaks HTTP/1.1 with keep-alive (every response carries Content-Length, so
persistent connections are safe), and refuses request bodies above
``max_body_bytes`` with a clean ``413`` *before* reading them — the same
bounded-ingest contract as the sharded gateway front end
(:mod:`repro.serving.gateway.frontend`), which supersedes this server for
sustained traffic.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.core.rest.json_codec import dumps, loads
from repro.core.rest.router import Request, Router

#: Default request-body cap (bytes) — matches the gateway front end.
DEFAULT_MAX_BODY = 8 * 1024 * 1024


class PilgrimHTTPServer:
    """Lifecycle wrapper: ``start()`` serves in a daemon thread."""

    def __init__(self, router: Router, host: str = "127.0.0.1", port: int = 0,
                 max_body_bytes: int = DEFAULT_MAX_BODY) -> None:
        self.router = router
        self.max_body_bytes = int(max_body_bytes)
        outer = self

        class Handler(BaseHTTPRequestHandler):
            # HTTP/1.1 enables keep-alive: handler threads persist per
            # *connection*, and every response declares Content-Length
            protocol_version = "HTTP/1.1"
            # reap idle keep-alive connections so abandoned clients do
            # not pin handler threads forever
            timeout = 30

            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                self._handle("GET")

            def do_POST(self) -> None:  # noqa: N802 - stdlib naming
                # POST carries a JSON body, so transfer lists are not
                # limited by request-target length; the GET contract
                # (URI-embedded parameters) is unchanged
                try:
                    length = int(self.headers.get("Content-Length", 0) or 0)
                except ValueError:
                    self._respond(400, {"error": "BadRequest", "status": 400,
                                        "message": "bad Content-Length"})
                    return
                if length > outer.max_body_bytes:
                    # refuse before reading: close the connection so the
                    # unread body cannot desynchronize a keep-alive stream
                    self.close_connection = True
                    self._respond(
                        413, {"error": "PayloadTooLarge", "status": 413,
                              "message": f"request body of {length} bytes "
                                         f"exceeds the "
                                         f"{outer.max_body_bytes}-byte "
                                         f"limit"})
                    return
                raw = self.rfile.read(length) if length > 0 else b""
                body = None
                if raw:
                    try:
                        body = loads(raw.decode("utf-8"))
                    except (UnicodeDecodeError, ValueError):
                        self._respond(400, {"error": "BadRequest", "status": 400,
                                            "message": "request body is not "
                                                       "valid JSON"})
                        return
                self._handle("POST", body=body)

            def _handle(self, method: str, body: object = None) -> None:
                request = Request.from_target(method, self.path, body=body)
                status, payload = outer.router.dispatch(request)
                self._respond(status, payload)

            def _respond(self, status: int, payload: object) -> None:
                body = dumps(payload).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: object) -> None:  # noqa: A003
                pass  # keep test output clean

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "PilgrimHTTPServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "PilgrimHTTPServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
