"""Threaded HTTP server exposing a :class:`~repro.core.rest.router.Router`.

Binds to an ephemeral port by default so tests and examples can run many
instances concurrently.  The server is deliberately minimal — HTTP GET with
URI-embedded parameters and JSON answers is the paper's full transport
contract (§IV-C).
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.core.rest.json_codec import dumps
from repro.core.rest.router import Request, Router


class PilgrimHTTPServer:
    """Lifecycle wrapper: ``start()`` serves in a daemon thread."""

    def __init__(self, router: Router, host: str = "127.0.0.1", port: int = 0) -> None:
        self.router = router
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                self._handle("GET")

            def _handle(self, method: str) -> None:
                request = Request.from_target(method, self.path)
                status, payload = outer.router.dispatch(request)
                body = dumps(payload).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: object) -> None:  # noqa: A003
                pass  # keep test output clean

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "PilgrimHTTPServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "PilgrimHTTPServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
