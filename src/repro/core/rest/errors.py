"""API error hierarchy mapped to HTTP status codes."""

from __future__ import annotations


class ApiError(Exception):
    """Base service error; subclasses carry the HTTP status."""

    status = 500

    def to_json(self) -> dict:
        return {"error": type(self).__name__, "status": self.status,
                "message": str(self)}


class BadRequest(ApiError):
    """Malformed parameters (missing query keys, bad numbers, …)."""

    status = 400


class NotFound(ApiError):
    """Unknown resource (platform, host, metric, route…)."""

    status = 404


class MethodNotAllowed(ApiError):
    """The path exists but not for this HTTP method."""

    status = 405


class PayloadTooLarge(ApiError):
    """Request body exceeds the server's byte limit."""

    status = 413


class ServiceUnavailable(ApiError):
    """Load shed (admission limit) or a shard down; retry after backoff."""

    status = 503

    def __init__(self, message: str = "",
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        #: parsed Retry-After hint in seconds, when the server sent one
        self.retry_after = retry_after
