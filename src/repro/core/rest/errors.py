"""API error hierarchy mapped to HTTP status codes."""

from __future__ import annotations


class ApiError(Exception):
    """Base service error; subclasses carry the HTTP status."""

    status = 500

    def to_json(self) -> dict:
        return {"error": type(self).__name__, "status": self.status,
                "message": str(self)}


class BadRequest(ApiError):
    """Malformed parameters (missing query keys, bad numbers, …)."""

    status = 400


class NotFound(ApiError):
    """Unknown resource (platform, host, metric, route…)."""

    status = 404


class MethodNotAllowed(ApiError):
    """The path exists but not for this HTTP method."""

    status = 405
