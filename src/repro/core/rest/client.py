"""HTTP client for Pilgrim services.

Typed helpers mirroring the paper's two example ``curl`` requests
(§IV-C1, §IV-C2), over a keep-alive transport: each thread keeps one
persistent :class:`http.client.HTTPConnection` per client instance, so a
request train pays the TCP handshake once instead of per call — the
difference between a load generator measuring the server and one
measuring its own connect loop.  A request that trips over a stale pooled
connection (server restarted, keep-alive reaped) is retried once on a
fresh connection; errors close the connection so the stream can never
desynchronize.
"""

from __future__ import annotations

import http.client
import threading
import urllib.parse
from typing import Optional, Sequence

from repro.core.rest.errors import (
    ApiError,
    BadRequest,
    NotFound,
    PayloadTooLarge,
    ServiceUnavailable,
)
from repro.core.rest.json_codec import dumps, loads

#: HTTP status → raised error class (everything else maps to ApiError).
_ERROR_CLASSES = {400: BadRequest, 404: NotFound, 413: PayloadTooLarge,
                  503: ServiceUnavailable}


class RestClient:
    """Client bound to a base URL (e.g. ``http://127.0.0.1:8080``).

    Thread-safe: connections are pooled per thread, so N threads sharing
    one client hold N keep-alive sockets.  ``keep_alive=False`` restores
    one-connection-per-request behavior (each request sends
    ``Connection: close``).
    """

    def __init__(self, base_url: str, timeout: float = 10.0,
                 keep_alive: bool = True) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.keep_alive = keep_alive
        split = urllib.parse.urlsplit(self.base_url)
        if split.scheme != "http":
            raise ValueError(
                f"RestClient speaks plain http, got {self.base_url!r}")
        self._host = split.hostname or "127.0.0.1"
        self._port = split.port or 80
        self._prefix = split.path.rstrip("/")
        self._local = threading.local()

    # -- connection pool (one per thread) ----------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout)
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Drop this thread's pooled connection (if any)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            conn.close()

    def __enter__(self) -> "RestClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- transport ---------------------------------------------------------------

    def get(self, path: str, params: Optional[Sequence[tuple[str, str]]] = None) -> object:
        """GET ``path`` with multi-valued query ``params``; returns JSON."""
        target = self._prefix + path
        if params:
            target += "?" + urllib.parse.urlencode(list(params))
        return self._request("GET", target)

    def post(self, path: str, payload: object) -> object:
        """POST ``payload`` as a JSON body to ``path``; returns JSON."""
        return self._request("POST", self._prefix + path,
                             body=dumps(payload).encode("utf-8"))

    def _request(self, method: str, target: str,
                 body: Optional[bytes] = None) -> object:
        headers = {"Content-Type": "application/json",
                   "Accept": "application/json"}
        if not self.keep_alive:
            headers["Connection"] = "close"
        # a pooled connection may have been reaped by the server between
        # requests; retry exactly once on a fresh connection, and only
        # when the failure happened on a *reused* socket (a fresh-socket
        # failure is a real error, and retrying a POST that may have
        # executed is not this client's call to make)
        for attempt in (0, 1):
            conn = self._connection()
            reused = conn.sock is not None
            try:
                conn.request(method, target, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
            except (http.client.BadStatusLine, http.client.CannotSendRequest,
                    ConnectionError, BrokenPipeError, OSError):
                self.close()
                if reused and attempt == 0:
                    continue
                raise
            return self._decode(response, data)
        raise AssertionError("unreachable")  # pragma: no cover

    def _decode(self, response: http.client.HTTPResponse,
                data: bytes) -> object:
        if response.will_close or not self.keep_alive:
            self.close()
        status = response.status
        text = data.decode("utf-8", errors="replace")
        if status < 400:
            return loads(text)
        try:
            payload = loads(text)
            message = payload.get("message", text)  # type: ignore[union-attr]
        except Exception:  # noqa: BLE001 - best-effort decode
            message = text
        error_cls = _ERROR_CLASSES.get(status, ApiError)
        if error_cls is ServiceUnavailable:
            raw = response.getheader("Retry-After")
            try:
                retry_after = float(raw) if raw is not None else None
            except ValueError:
                retry_after = None
            error: ApiError = ServiceUnavailable(message,
                                                 retry_after=retry_after)
        else:
            error = error_cls(message)
        error.status = status
        raise error

    # -- typed helpers -----------------------------------------------------------

    def fetch_metric(self, tool: str, site: str, host: str, metric: str,
                     begin: float | str, end: float | str) -> list[list[float]]:
        """The §IV-C1 example: RRD values between two timestamps."""
        path = f"/pilgrim/rrd/{tool}/{site}/{host}/{metric}.rrd/"
        result = self.get(path, [("begin", str(begin)), ("end", str(end))])
        return result  # type: ignore[return-value]

    def predict_transfers(
        self, platform: str, transfers: Sequence[tuple[str, str, float]]
    ) -> list[dict]:
        """The §IV-C2 example: predicted completion times for concurrent
        transfers, each given as ``(src, dst, size)``."""
        params = [
            ("transfer", f"{src},{dst},{size:g}") for src, dst, size in transfers
        ]
        result = self.get(f"/pilgrim/predict_transfers/{platform}", params)
        return result  # type: ignore[return-value]

    def post_predict_transfers(
        self,
        platform: str,
        transfers: Sequence[tuple[str, str, float]],
        ongoing: Sequence[tuple[str, str, float]] = (),
    ) -> list[dict]:
        """POST variant of :meth:`predict_transfers` for large transfer
        lists (the serving-layer route, not limited by URI length)."""
        payload: dict = {
            "transfers": [[src, dst, size] for src, dst, size in transfers],
        }
        if ongoing:
            payload["ongoing"] = [[src, dst, size] for src, dst, size in ongoing]
        result = self.post(f"/pilgrim/predict_transfers/{platform}", payload)
        return result  # type: ignore[return-value]

    def stats(self) -> dict:
        """The serving layer's cache/pool/latency counters."""
        return self.get("/pilgrim/stats")  # type: ignore[return-value]

    def what_if(
        self,
        platform: str,
        transfers: Sequence[tuple[str, str, float]],
        events: Sequence[dict],
        horizon: Optional[int] = None,
        model: Optional[str] = None,
        ongoing: Sequence[tuple[str, str, float]] = (),
    ) -> dict:
        """A what-if planning query: transfers under a hypothetical
        ``LinkEvent`` schedule (``events`` in ``LinkEvent.to_json`` form,
        e.g. ``{"time": 30, "link": "bottleneck", "action": "degrade",
        "factor": 0.5}``), optionally under the platform state projected
        ``horizon`` steps ahead.  Answers with interval-annotated
        forecasts plus the applied event log."""
        payload: dict = {
            "transfers": [[src, dst, size] for src, dst, size in transfers],
            "events": list(events),
        }
        if horizon is not None:
            payload["horizon"] = horizon
        if model is not None:
            payload["model"] = model
        if ongoing:
            payload["ongoing"] = [[src, dst, size] for src, dst, size in ongoing]
        return self.post(f"/pilgrim/what_if/{platform}", payload)  # type: ignore[return-value]

    def select_fastest(
        self, platform: str, hypotheses: dict[str, Sequence[tuple[str, str, float]]]
    ) -> dict:
        """§VI extension: submit named transfer hypotheses, get the fastest."""
        params = []
        for name, transfers in hypotheses.items():
            spec = ";".join(f"{s},{d},{z:g}" for s, d, z in transfers)
            params.append(("hypothesis", f"{name}:{spec}"))
        return self.get(f"/pilgrim/select_fastest/{platform}", params)  # type: ignore[return-value]
