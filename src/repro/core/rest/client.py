"""HTTP client for Pilgrim services.

Thin urllib wrapper plus typed helpers mirroring the paper's two example
``curl`` requests (§IV-C1, §IV-C2).
"""

from __future__ import annotations

import urllib.error
import urllib.parse
import urllib.request
from typing import Optional, Sequence

from repro.core.rest.errors import ApiError, BadRequest, NotFound
from repro.core.rest.json_codec import dumps, loads


class RestClient:
    """Client bound to a base URL (e.g. ``http://127.0.0.1:8080``)."""

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def get(self, path: str, params: Optional[Sequence[tuple[str, str]]] = None) -> object:
        """GET ``path`` with multi-valued query ``params``; returns JSON."""
        url = self.base_url + path
        if params:
            url += "?" + urllib.parse.urlencode(list(params))
        return self._request(urllib.request.Request(url))

    def post(self, path: str, payload: object) -> object:
        """POST ``payload`` as a JSON body to ``path``; returns JSON."""
        request = urllib.request.Request(
            self.base_url + path,
            data=dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._request(request)

    def _request(self, request: urllib.request.Request) -> object:
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            body = exc.read().decode("utf-8", errors="replace")
            try:
                payload = loads(body)
                message = payload.get("message", body)  # type: ignore[union-attr]
            except Exception:  # noqa: BLE001 - best-effort decode
                message = body
            error_cls = {400: BadRequest, 404: NotFound}.get(exc.code, ApiError)
            error = error_cls(message)
            error.status = exc.code
            raise error from None

    # -- typed helpers -----------------------------------------------------------

    def fetch_metric(self, tool: str, site: str, host: str, metric: str,
                     begin: float | str, end: float | str) -> list[list[float]]:
        """The §IV-C1 example: RRD values between two timestamps."""
        path = f"/pilgrim/rrd/{tool}/{site}/{host}/{metric}.rrd/"
        result = self.get(path, [("begin", str(begin)), ("end", str(end))])
        return result  # type: ignore[return-value]

    def predict_transfers(
        self, platform: str, transfers: Sequence[tuple[str, str, float]]
    ) -> list[dict]:
        """The §IV-C2 example: predicted completion times for concurrent
        transfers, each given as ``(src, dst, size)``."""
        params = [
            ("transfer", f"{src},{dst},{size:g}") for src, dst, size in transfers
        ]
        result = self.get(f"/pilgrim/predict_transfers/{platform}", params)
        return result  # type: ignore[return-value]

    def post_predict_transfers(
        self,
        platform: str,
        transfers: Sequence[tuple[str, str, float]],
        ongoing: Sequence[tuple[str, str, float]] = (),
    ) -> list[dict]:
        """POST variant of :meth:`predict_transfers` for large transfer
        lists (the serving-layer route, not limited by URI length)."""
        payload: dict = {
            "transfers": [[src, dst, size] for src, dst, size in transfers],
        }
        if ongoing:
            payload["ongoing"] = [[src, dst, size] for src, dst, size in ongoing]
        result = self.post(f"/pilgrim/predict_transfers/{platform}", payload)
        return result  # type: ignore[return-value]

    def stats(self) -> dict:
        """The serving layer's cache/pool/latency counters."""
        return self.get("/pilgrim/stats")  # type: ignore[return-value]

    def select_fastest(
        self, platform: str, hypotheses: dict[str, Sequence[tuple[str, str, float]]]
    ) -> dict:
        """§VI extension: submit named transfer hypotheses, get the fastest."""
        params = []
        for name, transfers in hypotheses.items():
            spec = ";".join(f"{s},{d},{z:g}" for s, d, z in transfers)
            params.append(("hypothesis", f"{name}:{spec}"))
        return self.get(f"/pilgrim/select_fastest/{platform}", params)  # type: ignore[return-value]
