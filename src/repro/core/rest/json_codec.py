"""JSON encoding for service payloads.

NaN/inf never appear on the wire (strict JSON): they are encoded as
``null``, matching what the paper's clients (schedulers parsing predictions)
can actually consume.
"""

from __future__ import annotations

import json
import math
from typing import Any


def _sanitize(obj: Any) -> Any:
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, dict):
        return {k: _sanitize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_sanitize(v) for v in obj]
    return obj


def dumps(payload: object) -> str:
    """Serialise a payload to strict JSON (non-finite floats → null)."""
    return json.dumps(_sanitize(payload), allow_nan=False, separators=(",", ":"))


def loads(text: str) -> object:
    """Parse strict JSON."""
    return json.loads(text)
