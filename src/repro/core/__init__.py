"""Pilgrim — the paper's metrology and performance-prediction framework.

Services are "implemented as REST-style web-services: transport is HTTP,
requests are HTTP GET whose parameters are embedded in the requested URI.
Answers to requests are JSON formatted documents" (§IV-C).  The two services
of the paper, plus the §VI extensions:

- :mod:`repro.core.metrology` — remote access to RRD time-series (§IV-C1),
- :mod:`repro.core.forecast` — the Pilgrim Network Forecast Service (PNFS,
  §IV-C2): completion-time predictions for concurrent TCP transfers via a
  fresh flow-level simulation per request,
- :mod:`repro.core.planner` — fastest-of-n transfer-hypothesis selection
  with pruning heuristics (§VI),
- :mod:`repro.core.workflow` — full workflow (computation + transfer)
  forecasting (§VI),
- :mod:`repro.core.latency_feed` — calibrating platform latencies from
  Smokeping-style measurements instead of hardcoded values (§VI),
- :mod:`repro.core.framework` — the :class:`~repro.core.framework.Pilgrim`
  facade wiring everything together, and :mod:`repro.core.rest` — the HTTP
  layer.
"""

from repro.core.forecast import NetworkForecastService, TransferForecast, TransferSpec
from repro.core.framework import Pilgrim

__all__ = ["Pilgrim", "NetworkForecastService", "TransferForecast", "TransferSpec"]
