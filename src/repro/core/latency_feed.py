"""Dynamic latency calibration from metrology measurements (§VI).

The converter hardcodes link latencies (1e-4 s intra-site, 2.25e-3 s
backbone) because the Reference API does not measure them; the paper plans
to "use automatic link latency measurements instead of arbitrary values"
from SmokePing/Cacti through the Pilgrim metrology service.  This module
implements that loop: probe representative host pairs, derive per-backbone
one-way latencies, and update the (mutable) platform links in place.

The routing layer reads latencies live, so the next forecast request uses
the calibrated values — no platform rebuild needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrology.ping import LatencyProber
from repro.simgrid.platform import Link, Platform

#: Never calibrate a backbone below this one-way latency (sanity floor).
MIN_BACKBONE_LATENCY = 1e-4


@dataclass(frozen=True)
class CalibrationEntry:
    """One adjusted backbone link."""

    link: str
    old_latency: float
    new_latency: float
    measured_rtt: float


class LatencyFeed:
    """Backbone-latency calibration for one platform."""

    def __init__(self, platform: Platform, prober: LatencyProber) -> None:
        self.platform = platform
        self.prober = prober

    def _backbone_link(self, src: str, dst: str) -> Link:
        """The backbone link on the modeled route: the largest-latency hop."""
        route = self.platform.route(src, dst)
        if not route:
            raise ValueError(f"empty route {src!r} -> {dst!r}")
        return max(route, key=lambda use: use.link.latency).link

    def calibrate_backbone(
        self,
        site_representatives: dict[str, str],
        probe_seconds: float = 300.0,
    ) -> list[CalibrationEntry]:
        """Probe one representative host per site, adjust backbone latencies.

        For each site pair, the measured median RTT minus the modeled
        intra-site latency contributions gives the backbone's one-way value.
        Returns the adjustments applied.
        """
        sites = sorted(site_representatives)
        pairs = [
            (site_representatives[a], site_representatives[b])
            for i, a in enumerate(sites)
            for b in sites[i + 1:]
        ]
        for src, dst in pairs:
            self.prober.add_pair(src, dst)
        self.prober.probe_for(probe_seconds)

        entries: list[CalibrationEntry] = []
        for src, dst in pairs:
            rtt = self.prober.measured_rtt(src, dst)
            backbone = self._backbone_link(src, dst)
            others = sum(
                use.link.latency
                for use in self.platform.route(src, dst)
                if use.link is not backbone
            )
            new_latency = max(rtt / 2.0 - others, MIN_BACKBONE_LATENCY)
            entries.append(
                CalibrationEntry(
                    link=backbone.name,
                    old_latency=backbone.latency,
                    new_latency=new_latency,
                    measured_rtt=rtt,
                )
            )
            backbone.latency = new_latency
        return entries
