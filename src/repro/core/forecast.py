"""PNFS — the Pilgrim Network Forecast Service (§IV-C2).

"Given a list of 3-uples (source, destination, size), it will answer with
the list of 4-uples (source, destination, size, predicted TCP transfer
completion time)."  For each request "a SimGrid simulation is instantiated,
containing one send and one receive process for each requested transfer.
These processes do nothing except sending the data and waiting for it, and
tracking the transfer completion time in the simulated world."

This module implements exactly that, over :mod:`repro.simgrid`.
"""

from __future__ import annotations

import threading
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Optional, Sequence

from repro._util.parallel import pool_chunk_size

from repro.core.rest.errors import BadRequest, NotFound
from repro.horizon.forecast import PlatformHorizon
from repro.horizon.whatif import run_what_if
from repro.scenarios.spec import LinkEvent
from repro.simgrid.engine import Simulation
from repro.simgrid.models import LV08, NetworkModel
from repro.simgrid.msg import transfer_processes
from repro.simgrid.platform import Platform, UnknownElementError
from repro.simgrid.units import parse_size


@dataclass(frozen=True)
class TransferSpec:
    """One requested transfer: source host, destination host, size in bytes.

    ``size`` accepts numbers or unit strings (``"5e8"``, ``"500MB"``)."""

    src: str
    dst: str
    size: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "size", parse_size(self.size))
        if self.size <= 0:
            raise ValueError(f"transfer size must be positive, got {self.size}")
        if not self.src or not self.dst:
            raise ValueError("transfer endpoints must be non-empty")

    @staticmethod
    def parse(text: str) -> "TransferSpec":
        """Parse the service's query form ``src,dst,size``."""
        parts = text.split(",")
        if len(parts) != 3:
            raise BadRequest(
                f"transfer must be 'src,dst,size', got {text!r}"
            )
        try:
            return TransferSpec(parts[0].strip(), parts[1].strip(), parts[2].strip())
        except ValueError as exc:
            raise BadRequest(str(exc)) from None


@dataclass(frozen=True)
class TransferForecast:
    """One predicted transfer: the paper's answer 4-uple.

    Horizon-aware queries (:meth:`NetworkForecastService.predict_transfers_at`
    and :meth:`~NetworkForecastService.predict_what_if`) additionally carry a
    prediction interval on the duration, derived from the per-link horizon
    intervals (optimistic and pessimistic link-state simulations).  Plain
    point forecasts leave both ends ``None`` and serialize exactly as
    before."""

    src: str
    dst: str
    size: float
    #: Predicted completion time, seconds (from simultaneous start).
    duration: float
    #: Prediction-interval endpoints on the duration (seconds), or None.
    lower: Optional[float] = None
    upper: Optional[float] = None

    def to_json(self) -> dict:
        doc = {"src": self.src, "dst": self.dst,
               "size": self.size, "duration": self.duration}
        if self.lower is not None:
            doc["lower"] = self.lower
        if self.upper is not None:
            doc["upper"] = self.upper
        return doc


@dataclass(frozen=True)
class WhatIfResult:
    """Answer to one what-if query: interval-annotated forecasts plus the
    event schedule that actually fired in the simulated world."""

    forecasts: tuple[TransferForecast, ...]
    #: ``AppliedEvent.to_json()`` dicts, in firing order.
    applied: tuple[dict, ...] = ()
    #: Horizon the baseline platform state was projected to (None = live).
    horizon: Optional[int] = None

    def to_json(self) -> dict:
        doc: dict = {
            "forecasts": [f.to_json() for f in self.forecasts],
            "applied": list(self.applied),
        }
        if self.horizon is not None:
            doc["horizon"] = self.horizon
        return doc


class NetworkForecastService:
    """Prediction service over a set of named platform descriptions."""

    def __init__(
        self,
        platforms: Optional[dict[str, Platform]] = None,
        model: Optional[NetworkModel] = None,
    ) -> None:
        self._platforms: dict[str, Platform] = dict(platforms or {})
        self.model = model if model is not None else LV08()
        #: lazily created per-platform multi-horizon link-state forecasters
        self._horizons: dict[str, PlatformHorizon] = {}
        #: what-if runs transiently mutate live platforms; serialize them
        self._whatif_lock = threading.Lock()
        #: query counters surfaced in ``GET /pilgrim/stats``
        self.what_if_queries = 0
        self.horizon_queries = 0

    # -- platform registry -------------------------------------------------------

    def register_platform(self, name: str, platform: Platform) -> None:
        self._platforms[name] = platform

    def platform(self, name: str) -> Platform:
        try:
            return self._platforms[name]
        except KeyError:
            raise NotFound(f"unknown platform {name!r}") from None

    def platform_names(self) -> list[str]:
        return sorted(self._platforms)

    # -- the service -------------------------------------------------------------

    def _validated_specs(
        self,
        platform_name: str,
        transfers: Sequence[TransferSpec] | Iterable[tuple[str, str, float]],
        ongoing: Sequence[TransferSpec] | Iterable[tuple[str, str, float]] = (),
    ) -> tuple[Platform, list[TransferSpec], list[TransferSpec]]:
        """Resolve the platform and normalize/validate the transfer lists."""
        platform = self.platform(platform_name)
        specs = [
            t if isinstance(t, TransferSpec) else TransferSpec(*t) for t in transfers
        ]
        ongoing_specs = [
            t if isinstance(t, TransferSpec) else TransferSpec(*t) for t in ongoing
        ]
        if not specs:
            raise BadRequest("at least one transfer is required")
        for spec in specs + ongoing_specs:
            for host in (spec.src, spec.dst):
                if not platform.has_host(host):
                    raise NotFound(
                        f"unknown host {host!r} on platform {platform_name!r}"
                    )
        return platform, specs, ongoing_specs

    def predict_transfers(
        self,
        platform_name: str,
        transfers: Sequence[TransferSpec] | Iterable[tuple[str, str, float]],
        model: Optional[NetworkModel] = None,
        ongoing: Sequence[TransferSpec] | Iterable[tuple[str, str, float]] = (),
        capacity_factors: Optional[dict[str, float]] = None,
        full_resolve: bool = False,
        vectorized: bool = True,
    ) -> list[TransferForecast]:
        """Predict completion times of transfers started concurrently.

        ``ongoing`` lists transfers already in flight (src, dst, remaining
        bytes): they consume bandwidth in the simulated world but are not
        part of the answer — the fine-grained half of the paper's §VI
        background-traffic modeling (a scheduler knows its own in-flight
        movements).  ``capacity_factors`` (link name → fraction of capacity
        available) is the coarse half, typically produced by
        :class:`repro.core.background.BackgroundTrafficModel` from
        metrology counters.

        ``full_resolve=True`` makes the simulation rebuild the whole
        bandwidth-sharing system at every event instead of the default
        incremental component re-solves — slower, kept as a verification
        escape hatch.  ``vectorized=False`` routes the incremental solver
        through its scalar arena path instead of the batched numpy kernel —
        the second verification escape hatch, equivalent within 1e-9.

        Raises :class:`NotFound` for unknown platforms or hosts and
        :class:`BadRequest` for empty requests.
        """
        platform, specs, ongoing_specs = self._validated_specs(
            platform_name, transfers, ongoing)
        sim = Simulation(platform, model or self.model,
                         capacity_factors=capacity_factors,
                         full_resolve=full_resolve, vectorized=vectorized)
        try:
            for spec in ongoing_specs:
                sim.add_comm(spec.src, spec.dst, spec.size,
                             name=f"ongoing:{spec.src}->{spec.dst}")
            records = transfer_processes(
                sim, [(s.src, s.dst, s.size) for s in specs]
            )
        except UnknownElementError as exc:  # pragma: no cover - double guard
            raise NotFound(str(exc)) from None
        return [
            TransferForecast(src=r["src"], dst=r["dst"], size=r["size"],
                             duration=r["duration"])
            for r in records
        ]

    # -- multi-horizon and what-if queries ---------------------------------------

    def horizon_state(self, platform_name: str, **kwargs) -> PlatformHorizon:
        """The (lazily created) per-link horizon forecasters of a platform.

        ``kwargs`` tune the underlying :class:`HorizonForecaster`s (phi, z,
        window, cutoff_frac) and only apply on first creation.
        """
        state = self._horizons.get(platform_name)
        if state is None:
            platform = self.platform(platform_name)  # raises NotFound
            state = self._horizons[platform_name] = PlatformHorizon(
                platform, **kwargs)
        return state

    def observe_link(self, platform_name: str, link_name: str,
                     bandwidth: float, weight: int = 1) -> None:
        """Feed one bandwidth measurement into a link's horizon series."""
        try:
            self.horizon_state(platform_name).observe(link_name, bandwidth,
                                                      weight=weight)
        except UnknownElementError as exc:
            raise NotFound(str(exc)) from None

    def horizon_capacity_factors(
        self,
        platform_name: str,
        horizon: int,
        bound: str = "value",
        combine: Optional[dict[str, float]] = None,
    ) -> dict[str, float]:
        """Projected ``capacity_factors`` for a platform ``horizon`` steps
        ahead (empty — i.e. live state — when no link series is warm)."""
        if horizon < 1:
            raise BadRequest(f"horizon must be >= 1, got {horizon}")
        state = self._horizons.get(platform_name)
        if state is None:
            return dict(combine or {})
        return state.capacity_factors_at(horizon, bound=bound,
                                         combine=combine)

    def _interval_annotated(
        self,
        point: list[TransferForecast],
        optimistic: Optional[list[TransferForecast]],
        pessimistic: Optional[list[TransferForecast]],
    ) -> list[TransferForecast]:
        """Fold optimistic/pessimistic durations into per-transfer intervals."""
        if optimistic is None or pessimistic is None:
            return point
        return [
            replace(f,
                    lower=min(o.duration, f.duration),
                    upper=max(p.duration, f.duration))
            for f, o, p in zip(point, optimistic, pessimistic)
        ]

    def predict_transfers_at(
        self,
        platform_name: str,
        transfers: Sequence[TransferSpec] | Iterable[tuple[str, str, float]],
        horizon: int,
        model: Optional[NetworkModel] = None,
        ongoing: Sequence[TransferSpec] | Iterable[tuple[str, str, float]] = (),
        capacity_factors: Optional[dict[str, float]] = None,
        full_resolve: bool = False,
        vectorized: bool = True,
        intervals: bool = True,
    ) -> list[TransferForecast]:
        """Forecast transfers under the platform state ``horizon`` steps ahead.

        Per-link horizon projections (see :meth:`observe_link`) become
        ``capacity_factors`` for the simulation — multiplied into any
        explicit factors.  With ``intervals`` (and at least one warm link
        series) the answer carries per-transfer duration intervals from two
        extra simulations: one under every link's optimistic (interval
        upper) projection, one under the pessimistic.  Cold platforms fall
        back to the live link state — a plain point forecast.
        """
        self.horizon_queries += 1
        state = self._horizons.get(platform_name)
        warm = state is not None and bool(state.ready_links())
        point_factors = self.horizon_capacity_factors(
            platform_name, horizon, combine=capacity_factors)

        def predict(factors: Optional[dict[str, float]]):
            return self.predict_transfers(
                platform_name, transfers, model=model, ongoing=ongoing,
                capacity_factors=factors or None,
                full_resolve=full_resolve, vectorized=vectorized)

        point = predict(point_factors)
        if not (intervals and warm):
            return point
        optimistic = predict(self.horizon_capacity_factors(
            platform_name, horizon, bound="upper", combine=capacity_factors))
        pessimistic = predict(self.horizon_capacity_factors(
            platform_name, horizon, bound="lower", combine=capacity_factors))
        return self._interval_annotated(point, optimistic, pessimistic)

    def predict_what_if(
        self,
        platform_name: str,
        transfers: Sequence[TransferSpec] | Iterable[tuple[str, str, float]],
        events: Sequence[LinkEvent] | Sequence[dict],
        model: Optional[NetworkModel] = None,
        ongoing: Sequence[TransferSpec] | Iterable[tuple[str, str, float]] = (),
        capacity_factors: Optional[dict[str, float]] = None,
        horizon: Optional[int] = None,
        full_resolve: bool = False,
        vectorized: bool = True,
        intervals: bool = True,
    ) -> WhatIfResult:
        """Answer a what-if query: "these transfers, under this event
        schedule" — e.g. link X degrading 50% at t+30s.

        ``events`` (:class:`~repro.scenarios.spec.LinkEvent` objects or
        their JSON dicts) become a transient dynamics schedule run through
        the scenario machinery on the live platform — touched link states
        are snapshotted and restored, and concurrent what-if runs are
        serialized behind a per-service lock (the transient epoch bumps
        invalidate epoch-keyed caches by design; see
        :mod:`repro.horizon.whatif`).  ``horizon=k`` additionally projects
        the *baseline* link state k steps ahead before applying the
        schedule, and (with ``intervals``) annotates each forecast with a
        duration interval from the optimistic/pessimistic projections.

        The answer is bit-identical to hand-building the same schedule with
        :func:`repro.scenarios.dynamics.schedule_dynamics` on this platform.
        """
        self.what_if_queries += 1
        platform, specs, ongoing_specs = self._validated_specs(
            platform_name, transfers, ongoing)
        try:
            event_objs = [
                e if isinstance(e, LinkEvent) else LinkEvent.from_json(e)
                for e in events
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise BadRequest(f"bad what-if event: {exc}") from None
        state = self._horizons.get(platform_name)
        warm = (horizon is not None and state is not None
                and bool(state.ready_links()))
        triples = [(s.src, s.dst, s.size) for s in specs]
        ongoing_triples = [(s.src, s.dst, s.size) for s in ongoing_specs]

        def run(factors: Optional[dict[str, float]]):
            try:
                return run_what_if(
                    platform, model or self.model, triples, event_objs,
                    ongoing=ongoing_triples, capacity_factors=factors or None,
                    full_resolve=full_resolve, vectorized=vectorized)
            except ValueError as exc:  # unmatched event pattern, bad factor
                raise BadRequest(str(exc)) from None

        base_factors = capacity_factors
        if horizon is not None:
            base_factors = self.horizon_capacity_factors(
                platform_name, horizon, combine=capacity_factors)
        with self._whatif_lock:
            records, log = run(base_factors)
            optimistic = pessimistic = None
            if intervals and warm:
                opt_records, _ = run(self.horizon_capacity_factors(
                    platform_name, horizon, bound="upper",
                    combine=capacity_factors))
                pess_records, _ = run(self.horizon_capacity_factors(
                    platform_name, horizon, bound="lower",
                    combine=capacity_factors))
                optimistic = [TransferForecast(r["src"], r["dst"], r["size"],
                                               r["duration"])
                              for r in opt_records]
                pessimistic = [TransferForecast(r["src"], r["dst"], r["size"],
                                                r["duration"])
                               for r in pess_records]
        point = [
            TransferForecast(src=r["src"], dst=r["dst"], size=r["size"],
                             duration=r["duration"])
            for r in records
        ]
        forecasts = self._interval_annotated(point, optimistic, pessimistic)
        return WhatIfResult(
            forecasts=tuple(forecasts),
            applied=tuple(e.to_json() for e in log.applied),
            horizon=horizon,
        )

    def planning_stats(self) -> dict:
        """Horizon/what-if counters for ``GET /pilgrim/stats``."""
        return {
            "what_if_queries": self.what_if_queries,
            "horizon_queries": self.horizon_queries,
            "horizons": {
                name: state.info() for name, state in sorted(
                    self._horizons.items())
            },
        }

    def predict_transfers_many(
        self,
        platform_name: str,
        requests: Sequence[Sequence[TransferSpec] | Sequence[tuple[str, str, float]]],
        model: Optional[NetworkModel] = None,
        full_resolve: bool = False,
        vectorized: bool = True,
        workers: Optional[int] = None,
        service_factory: Optional[Callable[[], "NetworkForecastService"]] = None,
        executor: Optional[Executor] = None,
    ) -> list[list[TransferForecast]]:
        """Answer many independent forecast requests (a backtest batch).

        Each element of ``requests`` is one ``predict_transfers`` transfer
        list; the answers come back in request order.  With ``workers > 1``
        the requests fan out over a :class:`ProcessPoolExecutor` —
        ``service_factory`` must then be a picklable module-level callable
        returning an equivalent service (platforms hold closure-free but
        heavyweight state, so workers rebuild instead of shipping them; the
        session-cached :func:`repro.experiments.environment.forecast_service`
        is the usual factory).  Every simulation is independent, so parallel
        answers are identical to serial ones.

        ``executor`` injects a live pool instead of the throwaway per-call
        one (which stays the no-pool default):

        - a :class:`repro.serving.pool.WarmWorkerPool` (anything with a
          ``predict_many`` method) answers from its resident services —
          ``service_factory`` is not needed;
        - any other :class:`concurrent.futures.Executor` receives the same
          ``service_factory`` tasks the throwaway pool would, but is left
          running for the caller to reuse and shut down.
        """
        requests = list(requests)
        if executor is not None:
            predict_many = getattr(executor, "predict_many", None)
            if predict_many is not None:  # a warm pool with resident services
                # ship this service's model explicitly (like the factory
                # path below): the pool's rebuilt services may default
                # differently
                return predict_many(platform_name, requests,
                                    model=model or self.model,
                                    full_resolve=full_resolve,
                                    vectorized=vectorized)
        elif workers is None or workers <= 1 or len(requests) <= 1:
            return [
                self.predict_transfers(platform_name, transfers, model=model,
                                       full_resolve=full_resolve,
                                       vectorized=vectorized)
                for transfers in requests
            ]
        if service_factory is None:
            raise ValueError(
                "predict_transfers_many(workers > 1) needs a picklable "
                "service_factory rebuilding the service in each worker"
            )
        # ship the model object itself (a frozen, picklable dataclass) so
        # custom factors/gamma survive the process boundary
        request_model = model or self.model
        payloads = [
            (service_factory, platform_name,
             [(s.src, s.dst, s.size) if isinstance(s, TransferSpec) else tuple(s)
              for s in transfers],
             request_model, full_resolve, vectorized)
            for transfers in requests
        ]
        if executor is not None:
            chunk = pool_chunk_size(
                len(payloads), getattr(executor, "_max_workers", workers or 1))
            return list(executor.map(_predict_request_task, payloads,
                                     chunksize=chunk))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            chunk = pool_chunk_size(len(payloads), workers)
            return list(pool.map(_predict_request_task, payloads, chunksize=chunk))


#: Worker-process cache: one rebuilt service per factory per process.
_WORKER_SERVICES: dict = {}


def _predict_request_task(payload: tuple) -> list[TransferForecast]:
    """One ``predict_transfers`` call inside a worker process."""
    service_factory, platform_name, transfers, model, full_resolve, \
        vectorized = payload
    service = _WORKER_SERVICES.get(service_factory)
    if service is None:
        service = _WORKER_SERVICES[service_factory] = service_factory()
    return service.predict_transfers(
        platform_name, transfers, model=model, full_resolve=full_resolve,
        vectorized=vectorized,
    )
