"""PNFS — the Pilgrim Network Forecast Service (§IV-C2).

"Given a list of 3-uples (source, destination, size), it will answer with
the list of 4-uples (source, destination, size, predicted TCP transfer
completion time)."  For each request "a SimGrid simulation is instantiated,
containing one send and one receive process for each requested transfer.
These processes do nothing except sending the data and waiting for it, and
tracking the transfer completion time in the simulated world."

This module implements exactly that, over :mod:`repro.simgrid`.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro._util.parallel import pool_chunk_size

from repro.core.rest.errors import BadRequest, NotFound
from repro.simgrid.engine import Simulation
from repro.simgrid.models import LV08, NetworkModel
from repro.simgrid.msg import transfer_processes
from repro.simgrid.platform import Platform, UnknownElementError
from repro.simgrid.units import parse_size


@dataclass(frozen=True)
class TransferSpec:
    """One requested transfer: source host, destination host, size in bytes.

    ``size`` accepts numbers or unit strings (``"5e8"``, ``"500MB"``)."""

    src: str
    dst: str
    size: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "size", parse_size(self.size))
        if self.size <= 0:
            raise ValueError(f"transfer size must be positive, got {self.size}")
        if not self.src or not self.dst:
            raise ValueError("transfer endpoints must be non-empty")

    @staticmethod
    def parse(text: str) -> "TransferSpec":
        """Parse the service's query form ``src,dst,size``."""
        parts = text.split(",")
        if len(parts) != 3:
            raise BadRequest(
                f"transfer must be 'src,dst,size', got {text!r}"
            )
        try:
            return TransferSpec(parts[0].strip(), parts[1].strip(), parts[2].strip())
        except ValueError as exc:
            raise BadRequest(str(exc)) from None


@dataclass(frozen=True)
class TransferForecast:
    """One predicted transfer: the paper's answer 4-uple."""

    src: str
    dst: str
    size: float
    #: Predicted completion time, seconds (from simultaneous start).
    duration: float

    def to_json(self) -> dict:
        return {"src": self.src, "dst": self.dst,
                "size": self.size, "duration": self.duration}


class NetworkForecastService:
    """Prediction service over a set of named platform descriptions."""

    def __init__(
        self,
        platforms: Optional[dict[str, Platform]] = None,
        model: Optional[NetworkModel] = None,
    ) -> None:
        self._platforms: dict[str, Platform] = dict(platforms or {})
        self.model = model if model is not None else LV08()

    # -- platform registry -------------------------------------------------------

    def register_platform(self, name: str, platform: Platform) -> None:
        self._platforms[name] = platform

    def platform(self, name: str) -> Platform:
        try:
            return self._platforms[name]
        except KeyError:
            raise NotFound(f"unknown platform {name!r}") from None

    def platform_names(self) -> list[str]:
        return sorted(self._platforms)

    # -- the service -------------------------------------------------------------

    def predict_transfers(
        self,
        platform_name: str,
        transfers: Sequence[TransferSpec] | Iterable[tuple[str, str, float]],
        model: Optional[NetworkModel] = None,
        ongoing: Sequence[TransferSpec] | Iterable[tuple[str, str, float]] = (),
        capacity_factors: Optional[dict[str, float]] = None,
        full_resolve: bool = False,
        vectorized: bool = True,
    ) -> list[TransferForecast]:
        """Predict completion times of transfers started concurrently.

        ``ongoing`` lists transfers already in flight (src, dst, remaining
        bytes): they consume bandwidth in the simulated world but are not
        part of the answer — the fine-grained half of the paper's §VI
        background-traffic modeling (a scheduler knows its own in-flight
        movements).  ``capacity_factors`` (link name → fraction of capacity
        available) is the coarse half, typically produced by
        :class:`repro.core.background.BackgroundTrafficModel` from
        metrology counters.

        ``full_resolve=True`` makes the simulation rebuild the whole
        bandwidth-sharing system at every event instead of the default
        incremental component re-solves — slower, kept as a verification
        escape hatch.  ``vectorized=False`` routes the incremental solver
        through its scalar arena path instead of the batched numpy kernel —
        the second verification escape hatch, equivalent within 1e-9.

        Raises :class:`NotFound` for unknown platforms or hosts and
        :class:`BadRequest` for empty requests.
        """
        platform = self.platform(platform_name)
        specs = [
            t if isinstance(t, TransferSpec) else TransferSpec(*t) for t in transfers
        ]
        ongoing_specs = [
            t if isinstance(t, TransferSpec) else TransferSpec(*t) for t in ongoing
        ]
        if not specs:
            raise BadRequest("at least one transfer is required")
        for spec in specs + ongoing_specs:
            for host in (spec.src, spec.dst):
                if not platform.has_host(host):
                    raise NotFound(
                        f"unknown host {host!r} on platform {platform_name!r}"
                    )
        sim = Simulation(platform, model or self.model,
                         capacity_factors=capacity_factors,
                         full_resolve=full_resolve, vectorized=vectorized)
        try:
            for spec in ongoing_specs:
                sim.add_comm(spec.src, spec.dst, spec.size,
                             name=f"ongoing:{spec.src}->{spec.dst}")
            records = transfer_processes(
                sim, [(s.src, s.dst, s.size) for s in specs]
            )
        except UnknownElementError as exc:  # pragma: no cover - double guard
            raise NotFound(str(exc)) from None
        return [
            TransferForecast(src=r["src"], dst=r["dst"], size=r["size"],
                             duration=r["duration"])
            for r in records
        ]

    def predict_transfers_many(
        self,
        platform_name: str,
        requests: Sequence[Sequence[TransferSpec] | Sequence[tuple[str, str, float]]],
        model: Optional[NetworkModel] = None,
        full_resolve: bool = False,
        vectorized: bool = True,
        workers: Optional[int] = None,
        service_factory: Optional[Callable[[], "NetworkForecastService"]] = None,
        executor: Optional[Executor] = None,
    ) -> list[list[TransferForecast]]:
        """Answer many independent forecast requests (a backtest batch).

        Each element of ``requests`` is one ``predict_transfers`` transfer
        list; the answers come back in request order.  With ``workers > 1``
        the requests fan out over a :class:`ProcessPoolExecutor` —
        ``service_factory`` must then be a picklable module-level callable
        returning an equivalent service (platforms hold closure-free but
        heavyweight state, so workers rebuild instead of shipping them; the
        session-cached :func:`repro.experiments.environment.forecast_service`
        is the usual factory).  Every simulation is independent, so parallel
        answers are identical to serial ones.

        ``executor`` injects a live pool instead of the throwaway per-call
        one (which stays the no-pool default):

        - a :class:`repro.serving.pool.WarmWorkerPool` (anything with a
          ``predict_many`` method) answers from its resident services —
          ``service_factory`` is not needed;
        - any other :class:`concurrent.futures.Executor` receives the same
          ``service_factory`` tasks the throwaway pool would, but is left
          running for the caller to reuse and shut down.
        """
        requests = list(requests)
        if executor is not None:
            predict_many = getattr(executor, "predict_many", None)
            if predict_many is not None:  # a warm pool with resident services
                # ship this service's model explicitly (like the factory
                # path below): the pool's rebuilt services may default
                # differently
                return predict_many(platform_name, requests,
                                    model=model or self.model,
                                    full_resolve=full_resolve,
                                    vectorized=vectorized)
        elif workers is None or workers <= 1 or len(requests) <= 1:
            return [
                self.predict_transfers(platform_name, transfers, model=model,
                                       full_resolve=full_resolve,
                                       vectorized=vectorized)
                for transfers in requests
            ]
        if service_factory is None:
            raise ValueError(
                "predict_transfers_many(workers > 1) needs a picklable "
                "service_factory rebuilding the service in each worker"
            )
        # ship the model object itself (a frozen, picklable dataclass) so
        # custom factors/gamma survive the process boundary
        request_model = model or self.model
        payloads = [
            (service_factory, platform_name,
             [(s.src, s.dst, s.size) if isinstance(s, TransferSpec) else tuple(s)
              for s in transfers],
             request_model, full_resolve, vectorized)
            for transfers in requests
        ]
        if executor is not None:
            chunk = pool_chunk_size(
                len(payloads), getattr(executor, "_max_workers", workers or 1))
            return list(executor.map(_predict_request_task, payloads,
                                     chunksize=chunk))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            chunk = pool_chunk_size(len(payloads), workers)
            return list(pool.map(_predict_request_task, payloads, chunksize=chunk))


#: Worker-process cache: one rebuilt service per factory per process.
_WORKER_SERVICES: dict = {}


def _predict_request_task(payload: tuple) -> list[TransferForecast]:
    """One ``predict_transfers`` call inside a worker process."""
    service_factory, platform_name, transfers, model, full_resolve, \
        vectorized = payload
    service = _WORKER_SERVICES.get(service_factory)
    if service is None:
        service = _WORKER_SERVICES[service_factory] = service_factory()
    return service.predict_transfers(
        platform_name, transfers, model=model, full_resolve=full_resolve,
        vectorized=vectorized,
    )
