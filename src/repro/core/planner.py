"""Transfer-hypothesis planning (§VI future work, implemented).

"More clever services could also be added to Pilgrim, e.g., given n
different transfer hypotheses, select the fastest one.  As Pilgrim has some
knowledge of the platform, it could use some heuristic to prune the n
hypotheses and only simulate a subset of them, before returning an answer."

A *hypothesis* is a named set of concurrent transfers (e.g. "send the
dataset to cluster A" vs "split it between A and B").  The planner scores
each hypothesis by simulation and returns the fastest; the pruning heuristic
discards hypotheses whose *static lower bound* (bottleneck bandwidth +
latency, no contention) already exceeds the best static *upper bound*
(serialised transfers), so they cannot win.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.forecast import NetworkForecastService, TransferSpec
from repro.core.rest.errors import BadRequest
from repro.simgrid.platform import Platform


@dataclass(frozen=True)
class Hypothesis:
    """A named candidate set of concurrent transfers."""

    name: str
    transfers: tuple[TransferSpec, ...]

    def __post_init__(self) -> None:
        if not self.transfers:
            raise ValueError(f"hypothesis {self.name!r} has no transfers")

    @staticmethod
    def parse(text: str) -> "Hypothesis":
        """Parse the query form ``name:src,dst,size;src,dst,size``."""
        if ":" not in text:
            raise BadRequest(f"hypothesis must be 'name:transfers', got {text!r}")
        name, _, spec = text.partition(":")
        transfers = tuple(
            TransferSpec.parse(part) for part in spec.split(";") if part.strip()
        )
        if not transfers:
            raise BadRequest(f"hypothesis {name!r} has no transfers")
        return Hypothesis(name.strip(), transfers)


@dataclass(frozen=True)
class HypothesisScore:
    """Outcome for one hypothesis."""

    name: str
    #: Completion time of the slowest transfer (the scheduling criterion).
    makespan: float
    #: Per-transfer predicted durations.
    durations: tuple[float, ...]
    #: Whether the score came from simulation (False = pruned).
    simulated: bool


@dataclass(frozen=True)
class PlannerResult:
    best: str
    scores: tuple[HypothesisScore, ...]

    def to_json(self) -> dict:
        return {
            "best": self.best,
            "scores": {
                s.name: {
                    "makespan": s.makespan,
                    "durations": list(s.durations),
                    "simulated": s.simulated,
                }
                for s in self.scores
            },
        }


class TransferPlanner:
    """Fastest-of-n hypothesis selection over one platform."""

    def __init__(self, forecast: NetworkForecastService, platform_name: str) -> None:
        self.forecast = forecast
        self.platform_name = platform_name

    # -- static bounds for pruning -----------------------------------------------

    def _static_bounds(self, platform: Platform, hyp: Hypothesis) -> tuple[float, float]:
        """(lower, upper) bounds on the makespan without simulating.

        Lower: each transfer alone at its bottleneck bandwidth (no
        contention can beat that).  Upper: all transfers serialised on the
        slowest single path (full contention cannot be slower than fully
        sequential on the worst shared path).
        """
        lower = 0.0
        total_serial = 0.0
        for t in hyp.transfers:
            route = platform.route(t.src, t.dst)
            bw = self.forecast.model.effective_bandwidth(
                min((u.link.bandwidth for u in route), default=float("inf"))
            )
            lat = self.forecast.model.startup_latency(route)
            alone = lat + (t.size / bw if bw != float("inf") else 0.0)
            lower = max(lower, alone)
            total_serial += alone
        return lower, total_serial

    def prune(self, hypotheses: Sequence[Hypothesis]) -> list[Hypothesis]:
        """Keep only hypotheses whose lower bound beats the best upper bound."""
        platform = self.forecast.platform(self.platform_name)
        bounds = {h.name: self._static_bounds(platform, h) for h in hypotheses}
        best_upper = min(upper for (_, upper) in bounds.values())
        return [h for h in hypotheses if bounds[h.name][0] <= best_upper]

    # -- selection ------------------------------------------------------------------

    def select_fastest(
        self,
        hypotheses: Sequence[Hypothesis],
        use_pruning: bool = True,
    ) -> PlannerResult:
        """Simulate (surviving) hypotheses; best = smallest makespan."""
        if not hypotheses:
            raise BadRequest("at least one hypothesis is required")
        names = [h.name for h in hypotheses]
        if len(set(names)) != len(names):
            raise BadRequest("hypothesis names must be unique")
        survivors = self.prune(hypotheses) if use_pruning else list(hypotheses)
        surviving_names = {h.name for h in survivors}
        scores: list[HypothesisScore] = []
        for hyp in hypotheses:
            if hyp.name in surviving_names:
                forecasts = self.forecast.predict_transfers(
                    self.platform_name, hyp.transfers
                )
                durations = tuple(f.duration for f in forecasts)
                scores.append(HypothesisScore(hyp.name, max(durations),
                                              durations, simulated=True))
            else:
                platform = self.forecast.platform(self.platform_name)
                lower, _ = self._static_bounds(platform, hyp)
                scores.append(HypothesisScore(hyp.name, lower, (), simulated=False))
        best = min((s for s in scores if s.simulated), key=lambda s: s.makespan)
        return PlannerResult(best=best.name, scores=tuple(scores))
