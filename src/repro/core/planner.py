"""Transfer-hypothesis planning (§VI future work, implemented).

"More clever services could also be added to Pilgrim, e.g., given n
different transfer hypotheses, select the fastest one.  As Pilgrim has some
knowledge of the platform, it could use some heuristic to prune the n
hypotheses and only simulate a subset of them, before returning an answer."

A *hypothesis* is a named set of concurrent transfers (e.g. "send the
dataset to cluster A" vs "split it between A and B").  The planner scores
each hypothesis by simulation and returns the fastest; the pruning heuristic
discards hypotheses whose *static lower bound* (effective bottleneck
bandwidth + latency, no contention) already exceeds the best static *upper
bound* (serialised transfers), so they cannot win.

Both bounds are computed from **effective** capacities: the active model's
``effective_bandwidth``/``rate_bound`` and any ``capacity_factors``
derating, exactly as the simulation will see them — so a hypothesis is
never pruned by a nominal-bandwidth bound the simulated answers would
contradict.  Time-varying models (``model.time_varying``) have no sound
static bound (a flow's rate evolves over its lifetime), so pruning is
skipped and every hypothesis is simulated.

The planner can also rank hypotheses under a *projected future* platform
state: ``select_fastest(..., horizon=k)`` folds the forecast service's
multi-horizon link projections (see :mod:`repro.horizon`) into the
capacity factors used by both the bounds and the simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.forecast import NetworkForecastService, TransferSpec
from repro.core.rest.errors import BadRequest
from repro.simgrid.platform import Platform


@dataclass(frozen=True)
class Hypothesis:
    """A named candidate set of concurrent transfers."""

    name: str
    transfers: tuple[TransferSpec, ...]

    def __post_init__(self) -> None:
        if not self.transfers:
            raise ValueError(f"hypothesis {self.name!r} has no transfers")

    @staticmethod
    def parse(text: str) -> "Hypothesis":
        """Parse the query form ``name:src,dst,size;src,dst,size``."""
        if ":" not in text:
            raise BadRequest(f"hypothesis must be 'name:transfers', got {text!r}")
        name, _, spec = text.partition(":")
        transfers = tuple(
            TransferSpec.parse(part) for part in spec.split(";") if part.strip()
        )
        if not transfers:
            raise BadRequest(f"hypothesis {name!r} has no transfers")
        return Hypothesis(name.strip(), transfers)


@dataclass(frozen=True)
class HypothesisScore:
    """Outcome for one hypothesis."""

    name: str
    #: Completion time of the slowest transfer (the scheduling criterion).
    makespan: float
    #: Per-transfer predicted durations.
    durations: tuple[float, ...]
    #: Whether the score came from simulation (False = pruned).
    simulated: bool


@dataclass(frozen=True)
class PlannerResult:
    best: str
    scores: tuple[HypothesisScore, ...]

    def to_json(self) -> dict:
        return {
            "best": self.best,
            "scores": {
                s.name: {
                    "makespan": s.makespan,
                    "durations": list(s.durations),
                    "simulated": s.simulated,
                }
                for s in self.scores
            },
        }


class TransferPlanner:
    """Fastest-of-n hypothesis selection over one platform."""

    def __init__(self, forecast: NetworkForecastService, platform_name: str) -> None:
        self.forecast = forecast
        self.platform_name = platform_name

    # -- static bounds for pruning -----------------------------------------------

    def _static_bounds(
        self,
        platform: Platform,
        hyp: Hypothesis,
        model=None,
        capacity_factors: Optional[dict[str, float]] = None,
    ) -> tuple[float, float]:
        """(lower, upper) bounds on the makespan without simulating.

        Lower: each transfer alone at its *effective* uncontended rate (no
        contention can beat that).  Upper: all transfers serialised (full
        contention under max-min sharing cannot be slower than fully
        sequential).

        The uncontended rate is exactly what the simulation would grant a
        lone flow: the model's per-flow ``rate_bound`` further limited by
        every capacity constraint's effective bandwidth — the model's
        ``effective_bandwidth`` of the link, derated by its
        ``capacity_factors`` entry, divided by the constraint coefficient
        (a SHARED link crossed twice grants half its capacity).  Computing
        bounds from nominal bandwidths here would *underestimate* durations
        on derated links, making the "upper bound" not an upper bound and
        letting pruning discard the true winner.
        """
        model = model if model is not None else self.forecast.model
        lower = 0.0
        total_serial = 0.0
        for t in hyp.transfers:
            route = platform.route(t.src, t.dst)
            lat, _weight, rate, usages = model.comm_spec(route)
            for key, capacity, coefficient in usages:
                factor = (capacity_factors.get(key[0].name, 1.0)
                          if capacity_factors else 1.0)
                rate = min(rate, capacity * factor / coefficient)
            alone = lat + (t.size / rate if rate != float("inf") else 0.0)
            lower = max(lower, alone)
            total_serial += alone
        return lower, total_serial

    def prune(
        self,
        hypotheses: Sequence[Hypothesis],
        model=None,
        capacity_factors: Optional[dict[str, float]] = None,
    ) -> list[Hypothesis]:
        """Keep only hypotheses whose lower bound beats the best upper bound.

        Time-varying models have no sound static bound (per-flow rates
        evolve over a flow's lifetime, so "alone at the steady-state rate"
        is not an upper bound on the alone duration): every hypothesis
        survives and is simulated.
        """
        model = model if model is not None else self.forecast.model
        if getattr(model, "time_varying", False):
            return list(hypotheses)
        platform = self.forecast.platform(self.platform_name)
        bounds = {
            h.name: self._static_bounds(platform, h, model=model,
                                        capacity_factors=capacity_factors)
            for h in hypotheses
        }
        best_upper = min(upper for (_, upper) in bounds.values())
        return [h for h in hypotheses if bounds[h.name][0] <= best_upper]

    # -- selection ------------------------------------------------------------------

    def select_fastest(
        self,
        hypotheses: Sequence[Hypothesis],
        use_pruning: bool = True,
        model=None,
        capacity_factors: Optional[dict[str, float]] = None,
        full_resolve: bool = False,
        vectorized: bool = True,
        horizon: Optional[int] = None,
    ) -> PlannerResult:
        """Simulate (surviving) hypotheses; best = smallest makespan.

        ``model``, ``capacity_factors``, ``full_resolve`` and ``vectorized``
        are threaded into every ``predict_transfers`` call *and* into the
        pruning bounds, so simulation and bounds always agree on the
        platform state they score.  ``horizon=k`` ranks under the projected
        platform state k steps ahead: the forecast service's per-link
        horizon projections become capacity factors (combined with any
        explicit ``capacity_factors`` by multiplication).
        """
        if not hypotheses:
            raise BadRequest("at least one hypothesis is required")
        names = [h.name for h in hypotheses]
        if len(set(names)) != len(names):
            raise BadRequest("hypothesis names must be unique")
        model = model if model is not None else self.forecast.model
        if horizon is not None:
            capacity_factors = self.forecast.horizon_capacity_factors(
                self.platform_name, horizon, combine=capacity_factors,
            )
        survivors = (
            self.prune(hypotheses, model=model,
                       capacity_factors=capacity_factors)
            if use_pruning else list(hypotheses)
        )
        surviving_names = {h.name for h in survivors}
        scores: list[HypothesisScore] = []
        for hyp in hypotheses:
            if hyp.name in surviving_names:
                forecasts = self.forecast.predict_transfers(
                    self.platform_name, hyp.transfers, model=model,
                    capacity_factors=capacity_factors,
                    full_resolve=full_resolve, vectorized=vectorized,
                )
                durations = tuple(f.duration for f in forecasts)
                scores.append(HypothesisScore(hyp.name, max(durations),
                                              durations, simulated=True))
            else:
                platform = self.forecast.platform(self.platform_name)
                lower, _ = self._static_bounds(
                    platform, hyp, model=model,
                    capacity_factors=capacity_factors)
                scores.append(HypothesisScore(hyp.name, lower, (), simulated=False))
        best = min((s for s in scores if s.simulated), key=lambda s: s.makespan)
        return PlannerResult(best=best.name, scores=tuple(scores))
