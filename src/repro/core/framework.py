"""The Pilgrim facade: services, platform registry, REST assembly.

One :class:`Pilgrim` instance owns the platform descriptions, the metric
registry and all services, and can expose them over HTTP exactly as the
paper's deployment does::

    pilgrim = Pilgrim.with_grid5000()
    with pilgrim.serve() as server:
        client = RestClient(server.url)
        client.predict_transfers("g5k_test", [(src, dst, 5e8)])
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.forecast import NetworkForecastService, TransferSpec
from repro.core.metrology import MetrologyService
from repro.core.planner import Hypothesis, TransferPlanner
from repro.core.rest.errors import BadRequest
from repro.core.rest.router import Request, Router
from repro.core.rest.server import DEFAULT_MAX_BODY, PilgrimHTTPServer
from repro.core.workflow import WorkflowForecastService
from repro.horizon.whatif import events_from_json
from repro.metrology.collectors import MetricRegistry
from repro.simgrid.models import NetworkModel, SharingModel, model_by_name
from repro.simgrid.platform import Platform


class Pilgrim:
    """Framework facade wiring the metrology and forecast services."""

    def __init__(
        self,
        platforms: Optional[dict[str, Platform]] = None,
        registry: Optional[MetricRegistry] = None,
        model: Optional[NetworkModel] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.forecast = NetworkForecastService(platforms, model=model)
        self.metrology = MetrologyService(self.registry)
        self.workflows = WorkflowForecastService(self.forecast)
        #: serving frontend (cache + batcher + warm pool); see enable_serving
        self.serving = None

    def enable_serving(
        self,
        service_factory=None,
        workers: int = 0,
        window: float = 0.005,
        cache_size: int = 4096,
        max_batch: int = 256,
        max_requests: Optional[int] = None,
        surrogate=None,
    ):
        """Put the serving subsystem in front of the forecast service.

        Once enabled, the predict routes (GET and POST) answer through the
        epoch-keyed forecast cache and the request coalescer, and — with
        ``workers > 0`` and a picklable ``service_factory`` — fan batches
        out over a warm worker pool.  ``surrogate`` (a
        :class:`~repro.surrogate.tier.SurrogateTier`) is consulted before
        the cache; its counters ride ``GET /pilgrim/stats``.  Returns the
        started :class:`~repro.serving.service.ForecastServingService`;
        call :meth:`disable_serving` (or ``serving.stop()``) to tear it
        down.
        """
        from repro.serving.service import ForecastServingService

        if self.serving is not None:
            raise RuntimeError("serving already enabled")
        self.serving = ForecastServingService(
            self.forecast, service_factory=service_factory, workers=workers,
            window=window, cache_size=cache_size, max_batch=max_batch,
            max_requests=max_requests, surrogate=surrogate,
        ).start()
        return self.serving

    def disable_serving(self) -> None:
        if self.serving is not None:
            self.serving.stop()
            self.serving = None

    @classmethod
    def with_grid5000(
        cls,
        sites: Optional[Sequence[str]] = None,
        include_cabinets: bool = True,
        model: Optional[NetworkModel] = None,
    ) -> "Pilgrim":
        """A Pilgrim instance loaded with the Grid'5000 platforms.

        Builds ``g5k_test`` from the development Reference API and (unless
        disabled) ``g5k_cabinets`` from the stable one, like the paper's
        deployment (§V-A).
        """
        from repro.g5k.converter import to_simgrid_platform
        from repro.g5k.sites import grid5000_dev_reference, grid5000_stable_reference

        platforms = {
            "g5k_test": to_simgrid_platform(
                grid5000_dev_reference(), "g5k_test", sites=sites
            )
        }
        if include_cabinets:
            platforms["g5k_cabinets"] = to_simgrid_platform(
                grid5000_stable_reference(), "g5k_cabinets", sites=sites
            )
        return cls(platforms=platforms, model=model)

    # -- convenience delegates ---------------------------------------------------

    def register_platform(self, name: str, platform: Platform) -> None:
        self.forecast.register_platform(name, platform)

    def predict_transfers(self, platform_name: str, transfers) -> list:
        return self.forecast.predict_transfers(platform_name, transfers)

    def planner(self, platform_name: str) -> TransferPlanner:
        return TransferPlanner(self.forecast, platform_name)

    # -- REST assembly -------------------------------------------------------------

    def build_router(self) -> Router:
        """All Pilgrim endpoints on one router."""
        router = Router()

        @router.get("/pilgrim/platforms")
        def list_platforms(request: Request):
            return {"platforms": self.forecast.platform_names()}

        @router.get("/pilgrim/metrics")
        def list_metrics(request: Request):
            return {"metrics": self.metrology.list_metrics()}

        @router.get("/pilgrim/rrd/{tool}/{site}/{host}/{metric}.rrd")
        def fetch_metric(request: Request, tool: str, site: str, host: str, metric: str):
            begin = request.param("begin")
            end = request.param("end")
            return self.metrology.fetch(tool, site, host, metric, begin, end)

        @router.get("/pilgrim/rrd/{tool}/{site}/{host}/{metric}.rrd/info")
        def metric_info(request: Request, tool: str, site: str, host: str, metric: str):
            return self.metrology.describe(tool, site, host, metric)

        def requested_model(name) -> Optional[SharingModel]:
            if not name:
                return None
            try:
                return model_by_name(str(name))
            except ValueError as exc:
                raise BadRequest(str(exc)) from None

        def answer_predict(platform: str, specs, ongoing, model=None):
            if self.serving is not None:
                forecasts = self.serving.predict(platform, specs,
                                                 ongoing=ongoing, model=model)
            else:
                forecasts = self.forecast.predict_transfers(
                    platform, specs, model=model, ongoing=ongoing
                )
            return [f.to_json() for f in forecasts]

        def requested_horizon(raw) -> Optional[int]:
            if raw in (None, ""):
                return None
            try:
                horizon = int(raw)
            except (TypeError, ValueError):
                raise BadRequest(
                    f"horizon must be a positive integer, got {raw!r}"
                ) from None
            if horizon < 1:
                raise BadRequest(
                    f"horizon must be a positive integer, got {horizon}")
            return horizon

        @router.get("/pilgrim/predict_transfers/{platform}")
        def predict(request: Request, platform: str):
            raw = request.params("transfer")
            if not raw:
                raise BadRequest("at least one transfer=src,dst,size is required")
            specs = [TransferSpec.parse(item) for item in raw]
            # §VI background modeling: in-flight transfers share bandwidth
            # in the simulated world but are not part of the answer
            ongoing = [TransferSpec.parse(item)
                       for item in request.params("ongoing")]
            model = requested_model(request.param("model", default=""))
            horizon = requested_horizon(request.param("horizon", default=""))
            if horizon is not None:
                # horizon queries bypass the serving cache tier: projected
                # capacity factors are not part of the cache key
                forecasts = self.forecast.predict_transfers_at(
                    platform, specs, horizon, model=model, ongoing=ongoing)
                return [f.to_json() for f in forecasts]
            return answer_predict(platform, specs, ongoing, model)

        def body_transfers(request: Request, field: str, required: bool):
            if required:
                items = request.body_field(field)
            else:
                items = request.body_field(field, default=None)
            if items is None:
                return []
            if not isinstance(items, list):
                raise BadRequest(f"{field!r} must be a JSON array")
            if required and not items:
                raise BadRequest(f"{field!r} must be a non-empty JSON array")
            specs = []
            for item in items:
                if not isinstance(item, (list, tuple)) or len(item) != 3:
                    raise BadRequest(
                        f"each {field} entry must be [src, dst, size], "
                        f"got {item!r}"
                    )
                try:
                    specs.append(TransferSpec(item[0], item[1], item[2]))
                except (TypeError, ValueError) as exc:
                    raise BadRequest(str(exc)) from None
            return specs

        @router.post("/pilgrim/predict_transfers/{platform}")
        def predict_post(request: Request, platform: str):
            # POST body carries the transfer list, so batch size is not
            # limited by URI length (the serving-layer ingest route)
            specs = body_transfers(request, "transfers", required=True)
            ongoing = body_transfers(request, "ongoing", required=False)
            model = requested_model(request.body_field("model", default=None))
            return answer_predict(platform, specs, ongoing, model)

        @router.post("/pilgrim/what_if/{platform}")
        def what_if(request: Request, platform: str):
            # the planning route: transfers + a hypothetical LinkEvent
            # schedule ("if link X degrades 50% at t+30s"), optionally under
            # the projected platform state `horizon` steps ahead
            specs = body_transfers(request, "transfers", required=True)
            ongoing = body_transfers(request, "ongoing", required=False)
            model = requested_model(request.body_field("model", default=None))
            horizon = requested_horizon(
                request.body_field("horizon", default=None))
            raw_events = request.body_field("events", default=None) or []
            if not isinstance(raw_events, list):
                raise BadRequest("'events' must be a JSON array")
            try:
                events = events_from_json(raw_events)
            except (KeyError, TypeError, ValueError) as exc:
                raise BadRequest(f"bad what-if event: {exc}") from None
            result = self.forecast.predict_what_if(
                platform, specs, events, model=model, ongoing=ongoing,
                horizon=horizon)
            return result.to_json()

        @router.get("/pilgrim/stats")
        def serving_stats(request: Request):
            payload = {
                "serving": (self.serving.stats() if self.serving is not None
                            else {"enabled": False}),
                "route_caches": {
                    name: self.forecast.platform(name).route_cache_info()
                    for name in self.forecast.platform_names()
                },
                "planning": self.forecast.planning_stats(),
            }
            if self.serving is not None:
                payload["serving"]["enabled"] = True
            return payload

        @router.get("/pilgrim/select_fastest/{platform}")
        def select_fastest(request: Request, platform: str):
            raw = request.params("hypothesis")
            if not raw:
                raise BadRequest("at least one hypothesis=name:transfers is required")
            hypotheses = [Hypothesis.parse(item) for item in raw]
            model = requested_model(request.param("model", default=""))
            horizon = requested_horizon(request.param("horizon", default=""))
            result = self.planner(platform).select_fastest(
                hypotheses, model=model, horizon=horizon)
            return result.to_json()

        return router

    def serve(self, host: str = "127.0.0.1", port: int = 0,
              max_body_bytes: int = DEFAULT_MAX_BODY) -> PilgrimHTTPServer:
        """An HTTP server (not yet started) exposing all services."""
        return PilgrimHTTPServer(self.build_router(), host=host, port=port,
                                 max_body_bytes=max_body_bytes)
