"""Coarse background-traffic modeling from metrology counters (§VI).

"We also plan to model the background traffic of Grid'5000, thanks to the
ongoing work on this platform's network instrumentation.  Of course, we will
have to find a tradeoff between a very accurate dynamic model of the
platform involving too much data … or a coarse model."

This is the *coarse* model: per-host NIC byte counters (Ganglia's
``bytes_out``/``bytes_in``, recorded as COUNTER RRDs by the metrology
collectors) are turned into per-link *capacity factors* — the fraction of
each host link still available to new transfers.  The forecast service
applies the factors to the simulated link capacities
(:meth:`repro.core.forecast.NetworkForecastService.predict_transfers`).

The fine-grained alternative — passing the scheduler's own in-flight
transfers as ``ongoing`` — lives directly in the forecast service.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.metrology.collectors import MetricRegistry, MetricKey, MetrologyError
from repro.simgrid.platform import Platform

#: Never derate a link below this fraction (keeps predictions finite even
#: under mis-measured 100% utilization).
MIN_CAPACITY_FACTOR = 0.05


@dataclass(frozen=True)
class HostLoad:
    """Observed NIC utilization of one host over the estimation window."""

    host: str
    #: mean outgoing rate, bytes/s
    tx_rate: float
    #: mean incoming rate, bytes/s
    rx_rate: float
    #: NIC nominal capacity, bytes/s
    nic_capacity: float

    @property
    def utilization(self) -> float:
        """Worst-direction utilization in [0, 1]."""
        return min(max(self.tx_rate, self.rx_rate) / self.nic_capacity, 1.0)


class BackgroundTrafficModel:
    """Derives per-link capacity factors from recorded NIC counters."""

    #: Metrology layout: per-host counters named like Ganglia's.
    TX_METRIC = "bytes_out"
    RX_METRIC = "bytes_in"

    def __init__(
        self,
        registry: MetricRegistry,
        platform: Platform,
        tool: str = "ganglia",
        nic_capacity: float = 1.25e8,
    ) -> None:
        self.registry = registry
        self.platform = platform
        self.tool = tool
        self.nic_capacity = nic_capacity

    def _mean_rate(self, site: str, host: str, metric: str,
                   begin: float, end: float) -> Optional[float]:
        try:
            rrd = self.registry.lookup(self.tool, site, host, metric)
        except MetrologyError:
            return None
        series = [v for _, v in rrd.fetch(begin, end) if not math.isnan(v)]
        if not series:
            return None
        return sum(series) / len(series)

    def host_load(self, host: str, begin: float, end: float) -> Optional[HostLoad]:
        """NIC utilization of ``host`` over ``(begin, end]``; None when the
        metrology has no data for it."""
        site = host.split(".")[1] if "." in host else "local"
        tx = self._mean_rate(site, host, self.TX_METRIC, begin, end)
        rx = self._mean_rate(site, host, self.RX_METRIC, begin, end)
        if tx is None and rx is None:
            return None
        return HostLoad(host=host, tx_rate=tx or 0.0, rx_rate=rx or 0.0,
                        nic_capacity=self.nic_capacity)

    def capacity_factors(self, begin: float, end: float,
                         minimum_utilization: float = 0.05) -> dict[str, float]:
        """Capacity factors for every instrumented host link.

        Links follow the converter's naming convention (``{host}-link``);
        hosts without metrology data or with negligible load are left at
        full capacity (absent from the dict).
        """
        factors: dict[str, float] = {}
        for host in self.platform.hosts():
            load = self.host_load(host.name, begin, end)
            if load is None or load.utilization < minimum_utilization:
                continue
            link_name = f"{host.name}-link"
            try:
                self.platform.link(link_name)
            except Exception:
                continue  # platform variant without per-host links
            factors[link_name] = max(1.0 - load.utilization, MIN_CAPACITY_FACTOR)
        return factors


def record_nic_counters(
    registry: MetricRegistry,
    host: str,
    tx_bytes_series: list[tuple[float, float]],
    rx_bytes_series: Optional[list[tuple[float, float]]] = None,
    tool: str = "ganglia",
    step: float = 15.0,
) -> None:
    """Feed cumulative NIC byte counters for ``host`` into the registry.

    Test/demo helper playing the role of a gmond agent: ``*_bytes_series``
    are ``(timestamp, cumulative bytes)`` samples.
    """
    site = host.split(".")[1] if "." in host else "local"
    for metric, series in ((BackgroundTrafficModel.TX_METRIC, tx_bytes_series),
                           (BackgroundTrafficModel.RX_METRIC, rx_bytes_series)):
        if series is None:
            continue
        key = MetricKey(tool, site, host, metric)
        if key not in registry:
            registry.create(key, kind="COUNTER", step=step)
        rrd = registry.get(key)
        for timestamp, value in series:
            rrd.update(timestamp, value)
