"""The Pilgrim metrology service (§IV-C1).

A thin service over :class:`~repro.metrology.collectors.MetricRegistry`:
"for a given RRD, and for given lower and upper bound timestamps, the
service will answer with all metric values between these bounds,
automatically gathering the most accurate data from the different
round-robin archives available in the RRD files."

Timestamps accept either raw epoch seconds or the human form of the paper's
example (``2012-05-04 08:00:00``), interpreted as UTC.
"""

from __future__ import annotations

import datetime

from repro.core.rest.errors import BadRequest, NotFound
from repro.metrology.collectors import MetricRegistry, MetrologyError


def parse_timestamp(text: str | float) -> float:
    """Epoch-seconds float from a number or ``YYYY-MM-DD HH:MM:SS`` (UTC)."""
    if isinstance(text, (int, float)):
        return float(text)
    raw = text.strip()
    try:
        return float(raw)
    except ValueError:
        pass
    try:
        parsed = datetime.datetime.fromisoformat(raw)
    except ValueError:
        raise BadRequest(f"cannot parse timestamp {raw!r}") from None
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=datetime.timezone.utc)
    return parsed.timestamp()


class MetrologyService:
    """Remote-API logic for the RRD metrology service."""

    def __init__(self, registry: MetricRegistry) -> None:
        self.registry = registry

    def fetch(
        self,
        tool: str,
        site: str,
        host: str,
        metric: str,
        begin: str | float,
        end: str | float,
    ) -> list[list[float]]:
        """Metric values in the window, as ``[[timestamp, value], …]`` —
        the exact answer shape of the paper's example."""
        t0 = parse_timestamp(begin)
        t1 = parse_timestamp(end)
        if t1 < t0:
            raise BadRequest(f"end ({end!r}) before begin ({begin!r})")
        try:
            rrd = self.registry.lookup(tool, site, host, metric)
        except MetrologyError as exc:
            raise NotFound(str(exc)) from None
        return [[ts, value] for ts, value in rrd.fetch(t0, t1)]

    def describe(self, tool: str, site: str, host: str, metric: str) -> dict:
        """Structural description of one RRD (archives, resolutions…)."""
        try:
            rrd = self.registry.lookup(tool, site, host, metric)
        except MetrologyError as exc:
            raise NotFound(str(exc)) from None
        return rrd.describe()

    def list_metrics(self) -> list[str]:
        return [key.path() for key in self.registry.keys()]
