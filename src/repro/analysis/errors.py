"""Prediction-error metrics and per-size aggregation.

The paper's metric (§V-B): "For each transfer, we define the error as
log2(prediction) − log2(measure)".  Errors are aggregated per transfer size
across repetitions; the figures plot the median line and dispersion boxes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro._util.stats import BoxStats, box_stats, median


def log2_error(prediction: float, measure: float) -> float:
    """``log2(prediction) − log2(measure)``; requires positive inputs."""
    if prediction <= 0 or measure <= 0:
        raise ValueError(
            f"log2 error needs positive values (prediction={prediction}, measure={measure})"
        )
    return math.log2(prediction) - math.log2(measure)


@dataclass
class SizePoint:
    """All per-transfer observations for one transfer size."""

    size: float
    errors: list[float] = field(default_factory=list)
    durations: list[float] = field(default_factory=list)
    predictions: list[float] = field(default_factory=list)

    def add(self, prediction: float, measure: float) -> None:
        self.errors.append(log2_error(prediction, measure))
        self.durations.append(measure)
        self.predictions.append(prediction)

    @property
    def error_stats(self) -> BoxStats:
        return box_stats(self.errors)

    @property
    def median_error(self) -> float:
        return median(self.errors)

    @property
    def median_duration(self) -> float:
        return median(self.durations)

    @property
    def count(self) -> int:
        return len(self.errors)


@dataclass
class ErrorSeries:
    """A full size sweep for one experiment (one figure)."""

    name: str
    points: list[SizePoint] = field(default_factory=list)

    def point(self, size: float) -> SizePoint:
        for point in self.points:
            if math.isclose(point.size, size, rel_tol=1e-9):
                return point
        point = SizePoint(size=size)
        self.points.append(point)
        self.points.sort(key=lambda p: p.size)
        return point

    def sizes(self) -> list[float]:
        return [p.size for p in self.points]

    def median_errors(self) -> list[float]:
        return [p.median_error for p in self.points]

    def errors_above(self, size_threshold: float) -> list[float]:
        """All per-transfer errors for sizes strictly above the threshold —
        the paper's large-transfer regime (> 1.67e7 bytes)."""
        out: list[float] = []
        for point in self.points:
            if point.size > size_threshold:
                out.extend(point.errors)
        return out

    def plateau_error(self, size_threshold: float = 1.67e7) -> float:
        """Median error over the large-transfer regime."""
        errors = self.errors_above(size_threshold)
        if not errors:
            raise ValueError(f"no observations above size {size_threshold}")
        return median(errors)

    def rows(self) -> list[tuple]:
        """Printable rows: size, median error, q1, q3, median duration, n."""
        out = []
        for p in self.points:
            stats = p.error_stats
            out.append(
                (p.size, stats.median, stats.q1, stats.q3, p.median_duration, p.count)
            )
        return out
