"""Full validation report generation.

Builds a self-contained markdown report of a validation campaign: one
section per figure (ASCII plot + per-size table + shape-check outcome) plus
the pooled §V-B statistics — the artifact a re-run of the paper's campaign
produces.  Used by ``python -m repro report``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.asciiplot import render_error_plot
from repro.analysis.errors import ErrorSeries
from repro.analysis.tables import render_table
from repro.experiments.figures import FIGURES
from repro.experiments.summary import summarize, verify_summary


def figure_section(fig_id: str, series: ErrorSeries,
                   failures: Sequence[str]) -> str:
    """One report section for a completed figure experiment."""
    figure = FIGURES[fig_id]
    lines = [f"## {fig_id}: {figure.title}", ""]
    lines.append("```")
    lines.append(render_error_plot(series))
    lines.append("```")
    lines.append("")
    lines.append(render_table(
        ["size (B)", "median err", "q1", "q3", "median duration (s)", "n"],
        series.rows(),
    ))
    lines.append("")
    if failures:
        lines.append("**shape checks FAILED:**")
        lines.extend(f"- {failure}" for failure in failures)
    else:
        lines.append("shape checks: **PASS**")
    lines.append("")
    return "\n".join(lines)


def build_report(
    results: dict[str, tuple[ErrorSeries, Sequence[str]]],
    repetitions: int,
    seed: int,
    title: str = "Pilgrim validation campaign",
) -> str:
    """Assemble the full markdown report.

    ``results`` maps figure id → (series, shape-check failures), as produced
    by :func:`repro.experiments.figures.run_figure`.
    """
    lines = [f"# {title}", "",
             f"Configuration: {repetitions} repetitions per combination, "
             f"seed {seed}.  Error metric: "
             f"`log2(prediction) - log2(measure)` per transfer.", ""]
    paper_figs = [fig_id for fig_id in results if fig_id in FIGURES]
    headline = [fig_id for fig_id in paper_figs
                if not fig_id.startswith("fig9-asym")]
    if headline:
        stats = summarize([results[f][0] for f in headline])
        lines.append("## Summary (sizes > 1.67e7 B, all experiments pooled)")
        lines.append("")
        lines.append(render_table(
            ["metric", "paper", "measured"],
            [(m, p, v) for m, p, v in stats.rows()],
        ))
        lines.append("")
        summary_failures = verify_summary(stats)
        if summary_failures:
            lines.append("**summary checks FAILED:**")
            lines.extend(f"- {failure}" for failure in summary_failures)
        else:
            lines.append("summary checks: **PASS**")
        lines.append("")
    for fig_id, (series, failures) in results.items():
        lines.append(figure_section(fig_id, series, failures))
    return "\n".join(lines)
