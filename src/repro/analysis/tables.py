"""Plain-text table rendering for bench output."""

from __future__ import annotations

from typing import Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Aligned monospace table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
