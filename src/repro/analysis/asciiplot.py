"""ASCII rendering of the paper's error-vs-size figures.

Each row is one transfer size; the horizontal axis is the log2 error.  The
inter-quartile box is drawn with ``=``, the median with ``M``, whiskers with
``-``, and the zero-error axis with ``|``.  The right column shows the
median measured duration — the information the paper plots on the right
axis of Figures 3–11.
"""

from __future__ import annotations

import math

from repro.analysis.errors import ErrorSeries


def render_error_plot(series: ErrorSeries, width: int = 61) -> str:
    """Text rendering of one figure's error boxes."""
    if not series.points:
        return f"{series.name}: (no data)"
    lo = min(p.error_stats.minimum for p in series.points)
    hi = max(p.error_stats.maximum for p in series.points)
    lo = min(lo, 0.0)
    hi = max(hi, 0.0)
    span = hi - lo or 1.0
    lo -= span * 0.05
    hi += span * 0.05
    span = hi - lo

    def column(err: float) -> int:
        col = int(round((err - lo) / span * (width - 1)))
        return max(0, min(width - 1, col))

    zero_col = column(0.0)
    lines = [f"{series.name}  (error = log2(prediction) - log2(measure))"]
    header = f"{'size':>10s}  {'med':>6s}  " + "·" * width + "  duration"
    lines.append(header)
    for point in series.points:
        stats = point.error_stats
        row = [" "] * width
        row[zero_col] = "|"
        c_min, c_q1 = column(stats.minimum), column(stats.q1)
        c_med, c_q3, c_max = column(stats.median), column(stats.q3), column(stats.maximum)
        for c in range(c_min, c_q1):
            row[c] = "-"
        for c in range(c_q1, c_q3 + 1):
            row[c] = "="
        for c in range(c_q3 + 1, c_max + 1):
            row[c] = "-"
        row[c_med] = "M"
        duration = point.median_duration
        lines.append(
            f"{point.size:10.2e}  {stats.median:+6.2f}  {''.join(row)}  {duration:9.3g}s"
        )
    ticks = _tick_line(lo, hi, width)
    lines.append(f"{'':10s}  {'':6s}  {ticks}")
    return "\n".join(lines)


def _tick_line(lo: float, hi: float, width: int) -> str:
    """Numeric ticks under the plot at the left, zero and right positions."""
    line = [" "] * width
    labels = []
    for err in (lo, 0.0, hi):
        col = int(round((err - lo) / (hi - lo) * (width - 1)))
        labels.append((col, f"{err:+.1f}"))
    out = [" "] * width
    for col, label in labels:
        start = min(max(0, col - len(label) // 2), width - len(label))
        for i, ch in enumerate(label):
            out[start + i] = ch
    del line
    return "".join(out)
