"""Analysis: error metrics, aggregation, text rendering of the figures."""

from repro.analysis.errors import ErrorSeries, SizePoint, log2_error
from repro.analysis.asciiplot import render_error_plot
from repro.analysis.tables import render_table

__all__ = ["ErrorSeries", "SizePoint", "log2_error", "render_error_plot", "render_table"]
