"""Executing one scenario: build, generate, schedule, simulate, summarize.

``run_scenario`` is the single entry point the CLI, the preset smoke check
and the tests share.  Repetitions redraw stochastic workloads from sibling
streams spawned via ``SeedSequence.spawn`` (see :mod:`repro._util.rng`), and
each repetition rebuilds the platform because dynamics schedules mutate link
bandwidths in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro._util.rng import spawn_rngs
from repro._util.stats import median
from repro.scenarios.dynamics import schedule_dynamics, schedule_measured
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.topologies import build_topology
from repro.scenarios.workloads import generate_workload
from repro.simgrid.engine import Simulation
from repro.simgrid.models import model_by_name
from repro.simgrid.platform import Platform


@dataclass
class TransferOutcome:
    """One completed transfer of one repetition."""

    rep: int
    src: str
    dst: str
    size: float
    duration: float

    def to_json(self) -> dict:
        return {"rep": self.rep, "src": self.src, "dst": self.dst,
                "size": self.size, "duration": self.duration}


@dataclass
class ScenarioResult:
    """Everything a scenario run produced."""

    name: str
    n_hosts: int
    n_links: int
    repetitions: int
    transfers: list[TransferOutcome] = field(default_factory=list)
    #: final simulated clock per repetition (all transfers and timers done)
    makespans: list[float] = field(default_factory=list)
    #: dynamics mutations applied during the first repetition
    events_applied: list = field(default_factory=list)

    def durations(self) -> list[float]:
        return [t.duration for t in self.transfers]

    @property
    def n_transfers(self) -> int:
        """Transfers per repetition."""
        return len(self.transfers) // max(1, self.repetitions)

    def summary(self) -> dict:
        durations = self.durations()
        return {
            "n_hosts": self.n_hosts,
            "n_links": self.n_links,
            "n_transfers": self.n_transfers,
            "repetitions": self.repetitions,
            "makespan": max(self.makespans),
            "min_duration": min(durations),
            "median_duration": median(durations),
            "max_duration": max(durations),
            "events_applied": len(self.events_applied),
        }

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "summary": self.summary(),
            "makespans": self.makespans,
            "events": [e.to_json() for e in self.events_applied],
            "transfers": [t.to_json() for t in self.transfers],
        }


def build_scenario_platform(spec: ScenarioSpec) -> Platform:
    """A fresh platform for ``spec`` (dynamics mutate links in place, so
    every run and every repetition gets its own)."""
    return build_topology(spec.topology)


def run_scenario(
    spec: ScenarioSpec,
    repetitions: int = 1,
    full_resolve: bool = False,
    vectorized: bool = True,
    model: Optional[object] = None,
) -> ScenarioResult:
    """Run ``spec`` for ``repetitions`` and collect per-transfer outcomes.

    ``full_resolve`` is the kernel's verification mode (rebuild the sharing
    system at every event); ``vectorized=False`` routes incremental
    re-solves through the scalar arena path.  All three modes must agree —
    the scenario test-suite pins that for dynamic schedules too.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    net_model = model if model is not None else model_by_name(spec.model)
    streams = spawn_rngs(spec.seed, repetitions, "workload", spec.name)
    result: Optional[ScenarioResult] = None
    for rep in range(repetitions):
        platform = build_scenario_platform(spec)
        if result is None:
            result = ScenarioResult(
                name=spec.name, n_hosts=len(platform.hosts()),
                n_links=len(platform.links()), repetitions=repetitions,
            )
        hosts = [h.name for h in platform.hosts()]
        transfers = generate_workload(spec.workload, hosts, streams[rep])
        sim = Simulation(platform, net_model, full_resolve=full_resolve,
                         vectorized=vectorized)
        log = schedule_dynamics(sim, spec.dynamics)
        schedule_measured(sim, spec.measured, log=log)
        comms = [sim.add_comm(src, dst, size) for src, dst, size in transfers]
        makespan = sim.run()
        result.makespans.append(makespan)
        if rep == 0:
            result.events_applied = log.applied
        for comm, (src, dst, size) in zip(comms, transfers):
            result.transfers.append(TransferOutcome(
                rep=rep, src=src, dst=dst, size=size, duration=comm.duration,
            ))
    assert result is not None
    return result
