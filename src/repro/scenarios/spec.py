"""Declarative scenario descriptions.

A :class:`ScenarioSpec` composes the three orthogonal axes a network
experiment varies over:

- a **topology** (:class:`TopologySpec`) — which generator family builds the
  platform and with which parameters,
- a **workload** (:class:`WorkloadSpec`) — which traffic pattern runs on it,
- a **dynamics schedule** (:class:`LinkEvent` list) — timed link
  degradations, failures and recoveries applied while transfers are in
  flight.

Specs are plain frozen dataclasses with a lossless JSON round-trip
(``ScenarioSpec.from_json(spec.to_json()) == spec``), so scenario campaigns
can be stored, diffed and shipped to worker processes as data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Dynamics actions a :class:`LinkEvent` may carry.
EVENT_ACTIONS = ("degrade", "fail", "recover")


def _freeze(value: object) -> object:
    """Normalize JSON-ish parameter values so equality survives the
    JSON round-trip (tuples and lists collapse to tuples)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return {str(k): _freeze(v) for k, v in value.items()}
    return value


def _thaw(value: object) -> object:
    """The JSON-friendly mirror of :func:`_freeze` (tuples back to lists)."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    if isinstance(value, dict):
        return {k: _thaw(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class TopologySpec:
    """Which generator builds the platform: a family name from the topology
    registry plus its keyword parameters."""

    family: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.family:
            raise ValueError("topology family must be non-empty")
        object.__setattr__(self, "params", _freeze(dict(self.params)))

    def to_json(self) -> dict:
        return {"family": self.family, "params": _thaw(self.params)}

    @staticmethod
    def from_json(doc: dict) -> "TopologySpec":
        return TopologySpec(family=doc["family"], params=doc.get("params", {}))


@dataclass(frozen=True)
class WorkloadSpec:
    """Which traffic pattern runs: a kind from the workload registry, the
    per-transfer size in bytes, and generator-specific parameters."""

    kind: str
    size: float = 1e8
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("workload kind must be non-empty")
        if self.size <= 0:
            raise ValueError(f"transfer size must be positive, got {self.size}")
        object.__setattr__(self, "size", float(self.size))
        object.__setattr__(self, "params", _freeze(dict(self.params)))

    def to_json(self) -> dict:
        return {"kind": self.kind, "size": self.size, "params": _thaw(self.params)}

    @staticmethod
    def from_json(doc: dict) -> "WorkloadSpec":
        return WorkloadSpec(kind=doc["kind"], size=doc.get("size", 1e8),
                            params=doc.get("params", {}))


@dataclass(frozen=True)
class LinkEvent:
    """One timed link mutation.

    ``link`` is an :mod:`fnmatch` pattern over platform link names (an exact
    name matches itself).  ``action`` is one of:

    - ``"degrade"`` — set matched links to ``factor`` × nominal bandwidth,
    - ``"fail"`` — collapse matched links to the failure bandwidth floor,
    - ``"recover"`` — restore matched links to nominal bandwidth.
    """

    time: float
    link: str
    action: str
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if not self.link:
            raise ValueError("event link pattern must be non-empty")
        if self.action not in EVENT_ACTIONS:
            raise ValueError(
                f"unknown action {self.action!r} (have {EVENT_ACTIONS})"
            )
        if self.action == "degrade" and not 0.0 < self.factor <= 1.0:
            raise ValueError(
                f"degrade factor must be in (0, 1], got {self.factor}"
            )
        object.__setattr__(self, "time", float(self.time))
        # factor only means something for degrade; normalizing it keeps the
        # JSON round-trip (which omits it otherwise) lossless
        object.__setattr__(
            self, "factor",
            float(self.factor) if self.action == "degrade" else 1.0,
        )

    def to_json(self) -> dict:
        doc = {"time": self.time, "link": self.link, "action": self.action}
        if self.action == "degrade":
            doc["factor"] = self.factor
        return doc

    @staticmethod
    def from_json(doc: dict) -> "LinkEvent":
        return LinkEvent(time=doc["time"], link=doc["link"],
                         action=doc["action"], factor=doc.get("factor", 1.0))


#: Metrics a :class:`MeasuredTrace` may carry.
TRACE_METRICS = ("bandwidth", "latency")


@dataclass(frozen=True)
class MeasuredTrace:
    """A recorded measurement series replayed as timed link mutations.

    This is the *measured* dynamics source: where :class:`LinkEvent`
    describes synthetic what-if dynamics (degrade/fail/recover), a trace
    carries absolute values recorded by the metrology pipeline — typically
    an RRD series rescaled to platform units (see
    :meth:`repro.metrology.demo.StarMetrologyDemo.measured_traces`).  Each
    ``(time, value)`` sample sets the matched links' ``metric`` to
    ``value`` at ``time`` (bandwidth in bytes/s, latency in seconds).

    ``link`` is an :mod:`fnmatch` pattern like :attr:`LinkEvent.link`.
    Sample times must be non-negative and strictly increasing; values must
    be positive (the platform model rejects zero capacities).
    """

    link: str
    samples: tuple[tuple[float, float], ...]
    metric: str = "bandwidth"

    def __post_init__(self) -> None:
        if not self.link:
            raise ValueError("trace link pattern must be non-empty")
        if self.metric not in TRACE_METRICS:
            raise ValueError(
                f"unknown trace metric {self.metric!r} (have {TRACE_METRICS})"
            )
        samples = tuple(
            (float(t), float(v)) for t, v in self.samples
        )
        if not samples:
            raise ValueError("trace needs at least one sample")
        import math

        previous = -1.0
        for t, v in samples:
            if not math.isfinite(t) or t < 0:
                raise ValueError(f"trace sample time must be >= 0, got {t}")
            if t <= previous:
                raise ValueError(
                    f"trace sample times must strictly increase ({t} after "
                    f"{previous})"
                )
            if (not math.isfinite(v) or v < 0
                    or (self.metric == "bandwidth" and v == 0)):
                raise ValueError(f"trace value must be positive, got {v}")
            previous = t
        object.__setattr__(self, "samples", samples)

    def rescaled(self, time_scale: float) -> "MeasuredTrace":
        """A copy with sample times multiplied by ``time_scale`` — replays
        compress recorded metrology seconds onto the transfer timescale."""
        if time_scale <= 0:
            raise ValueError(f"time scale must be positive, got {time_scale}")
        return MeasuredTrace(
            link=self.link,
            metric=self.metric,
            samples=tuple((t * time_scale, v) for t, v in self.samples),
        )

    def to_json(self) -> dict:
        return {
            "link": self.link,
            "metric": self.metric,
            "samples": [[t, v] for t, v in self.samples],
        }

    @staticmethod
    def from_json(doc: dict) -> "MeasuredTrace":
        return MeasuredTrace(
            link=doc["link"],
            metric=doc.get("metric", "bandwidth"),
            samples=tuple((s[0], s[1]) for s in doc["samples"]),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative scenario: topology × workload × dynamics.

    Dynamics come from two sources applied together: synthetic
    :class:`LinkEvent` schedules and recorded :class:`MeasuredTrace`
    replays (``measured``).
    """

    name: str
    topology: TopologySpec
    workload: WorkloadSpec
    dynamics: tuple[LinkEvent, ...] = ()
    measured: tuple[MeasuredTrace, ...] = ()
    seed: int = 0
    model: str = "LV08"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        object.__setattr__(self, "dynamics", tuple(self.dynamics))
        object.__setattr__(self, "measured", tuple(self.measured))
        object.__setattr__(self, "seed", int(self.seed))

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "topology": self.topology.to_json(),
            "workload": self.workload.to_json(),
            "dynamics": [event.to_json() for event in self.dynamics],
            "measured": [trace.to_json() for trace in self.measured],
            "seed": self.seed,
            "model": self.model,
        }

    @staticmethod
    def from_json(doc: dict) -> "ScenarioSpec":
        return ScenarioSpec(
            name=doc["name"],
            description=doc.get("description", ""),
            topology=TopologySpec.from_json(doc["topology"]),
            workload=WorkloadSpec.from_json(doc["workload"]),
            dynamics=tuple(
                LinkEvent.from_json(e) for e in doc.get("dynamics", ())
            ),
            measured=tuple(
                MeasuredTrace.from_json(t) for t in doc.get("measured", ())
            ),
            seed=doc.get("seed", 0),
            model=doc.get("model", "LV08"),
        )

    def replace(self, **changes) -> "ScenarioSpec":
        """A copy with ``changes`` applied (dataclasses.replace sugar)."""
        import dataclasses

        return dataclasses.replace(self, **changes)
