"""Applying a dynamics schedule to a running simulation.

Each :class:`~repro.scenarios.spec.LinkEvent` becomes a simulation timer
that mutates the matched links' bandwidth in place.  The mutation bumps the
global link-mutation epoch (see :class:`~repro.simgrid.platform.Link`), and
the scheduled callback calls :meth:`Simulation.touch_sharing
<repro.simgrid.engine.Simulation.touch_sharing>`, so the kernel re-derives
every in-flight activity's sharing usages at the very next event-loop
iteration — in-flight transfers recalibrate to the degraded/failed/recovered
capacities exactly like they do for the latency feed's link edits.

Failures set bandwidth to :data:`FAILED_BANDWIDTH` (1 byte/s) rather than
zero: the platform model requires positive capacities, and a vanishing-but-
positive floor keeps completion times finite so a scenario without a
recovery event still terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.scenarios.spec import LinkEvent, MeasuredTrace
from repro.simgrid.engine import Simulation

#: Bandwidth floor (bytes/s) modelling a failed link.
FAILED_BANDWIDTH = 1.0


@dataclass
class AppliedEvent:
    """One link mutation that actually fired during a run."""

    time: float
    link: str
    action: str
    bandwidth: float  # the bandwidth set, bytes/s
    #: set only by measured latency replays: the latency applied, seconds
    latency: Optional[float] = None

    def to_json(self) -> dict:
        doc = {"time": self.time, "link": self.link,
               "action": self.action, "bandwidth": self.bandwidth}
        if self.latency is not None:
            doc["latency"] = self.latency
        return doc


@dataclass
class DynamicsLog:
    """Applied link mutations, appended as their timers fire."""

    applied: list[AppliedEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.applied)


def validate_dynamics(platform, events: Sequence[LinkEvent]) -> None:
    """Fail fast if any event's pattern matches no link of ``platform``."""
    for event in events:
        if not platform.links_matching(event.link):
            raise ValueError(
                f"dynamics event at t={event.time} matches no link: "
                f"pattern {event.link!r}"
            )


def schedule_dynamics(
    sim: Simulation, events: Sequence[LinkEvent]
) -> DynamicsLog:
    """Schedule all ``events`` on ``sim`` (call before ``run()``, at clock 0).

    Event times are absolute simulated seconds.  ``degrade`` factors apply to
    each link's *nominal* bandwidth (its value when the schedule first touches
    it), so ``degrade 0.5 → degrade 0.25 → recover`` composes predictably
    instead of compounding.  Returns the log the fired events append to.
    """
    if sim.clock != 0.0:
        raise ValueError(
            f"dynamics schedules use absolute times; schedule at clock 0, "
            f"not {sim.clock}"
        )
    validate_dynamics(sim.platform, events)
    nominal: dict[str, float] = {}
    log = DynamicsLog()

    def fire(event: LinkEvent) -> None:
        for link in sim.platform.links_matching(event.link):
            base = nominal.setdefault(link.name, link.bandwidth)
            if event.action == "degrade":
                link.bandwidth = base * event.factor
            elif event.action == "fail":
                link.bandwidth = FAILED_BANDWIDTH
            else:  # recover
                link.bandwidth = base
            log.applied.append(AppliedEvent(
                time=event.time, link=link.name, action=event.action,
                bandwidth=link.bandwidth,
            ))
        sim.touch_sharing()

    for event in sorted(events, key=lambda e: e.time):
        sim.schedule(event.time, lambda event=event: fire(event))
    return log


def schedule_measured(
    sim: Simulation,
    traces: Sequence[MeasuredTrace],
    log: Optional[DynamicsLog] = None,
) -> DynamicsLog:
    """Schedule measured-trace replays on ``sim`` (call at clock 0).

    Each trace sample becomes a timer setting the matched links' bandwidth
    (or latency) to the recorded absolute value, through the same
    epoch-bumping setters and :meth:`Simulation.touch_sharing` path as the
    synthetic dynamics — in-flight transfers recalibrate identically
    whether the mutation came from a what-if schedule or a recorded RRD
    series.  Appends to ``log`` when given, so one
    :class:`DynamicsLog` can carry both sources of a scenario.
    """
    if sim.clock != 0.0:
        raise ValueError(
            f"measured replays use absolute times; schedule at clock 0, "
            f"not {sim.clock}"
        )
    for trace in traces:
        if not sim.platform.links_matching(trace.link):
            raise ValueError(
                f"measured trace matches no link: pattern {trace.link!r}"
            )
    log = log if log is not None else DynamicsLog()

    def fire(time: float, updates: list[tuple[MeasuredTrace, float]]) -> None:
        for trace, value in updates:
            for link in sim.platform.links_matching(trace.link):
                if trace.metric == "bandwidth":
                    link.bandwidth = value
                    latency = None
                else:
                    link.latency = value
                    latency = value
                log.applied.append(AppliedEvent(
                    time=time, link=link.name, action="measured",
                    bandwidth=link.bandwidth, latency=latency,
                ))
        sim.touch_sharing()

    # combined traces (bandwidth + latency per link, recorded on one probe
    # grid) put many samples on the same instant — group them into one
    # timer so each instant re-derives the sharing system once, not once
    # per trace
    by_time: dict[float, list[tuple[MeasuredTrace, float]]] = {}
    for trace in traces:
        for time, value in trace.samples:
            by_time.setdefault(time, []).append((trace, value))
    for time in sorted(by_time):
        sim.schedule(
            time,
            lambda time=time, updates=by_time[time]: fire(time, updates),
        )
    return log
