"""Applying a dynamics schedule to a running simulation.

Each :class:`~repro.scenarios.spec.LinkEvent` becomes a simulation timer
that mutates the matched links' bandwidth in place.  The mutation bumps the
global link-mutation epoch (see :class:`~repro.simgrid.platform.Link`), and
the scheduled callback calls :meth:`Simulation.touch_sharing
<repro.simgrid.engine.Simulation.touch_sharing>`, so the kernel re-derives
every in-flight activity's sharing usages at the very next event-loop
iteration — in-flight transfers recalibrate to the degraded/failed/recovered
capacities exactly like they do for the latency feed's link edits.

Failures set bandwidth to :data:`FAILED_BANDWIDTH` (1 byte/s) rather than
zero: the platform model requires positive capacities, and a vanishing-but-
positive floor keeps completion times finite so a scenario without a
recovery event still terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.scenarios.spec import LinkEvent
from repro.simgrid.engine import Simulation

#: Bandwidth floor (bytes/s) modelling a failed link.
FAILED_BANDWIDTH = 1.0


@dataclass
class AppliedEvent:
    """One link mutation that actually fired during a run."""

    time: float
    link: str
    action: str
    bandwidth: float  # the bandwidth set, bytes/s

    def to_json(self) -> dict:
        return {"time": self.time, "link": self.link,
                "action": self.action, "bandwidth": self.bandwidth}


@dataclass
class DynamicsLog:
    """Applied link mutations, appended as their timers fire."""

    applied: list[AppliedEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.applied)


def validate_dynamics(platform, events: Sequence[LinkEvent]) -> None:
    """Fail fast if any event's pattern matches no link of ``platform``."""
    for event in events:
        if not platform.links_matching(event.link):
            raise ValueError(
                f"dynamics event at t={event.time} matches no link: "
                f"pattern {event.link!r}"
            )


def schedule_dynamics(
    sim: Simulation, events: Sequence[LinkEvent]
) -> DynamicsLog:
    """Schedule all ``events`` on ``sim`` (call before ``run()``, at clock 0).

    Event times are absolute simulated seconds.  ``degrade`` factors apply to
    each link's *nominal* bandwidth (its value when the schedule first touches
    it), so ``degrade 0.5 → degrade 0.25 → recover`` composes predictably
    instead of compounding.  Returns the log the fired events append to.
    """
    if sim.clock != 0.0:
        raise ValueError(
            f"dynamics schedules use absolute times; schedule at clock 0, "
            f"not {sim.clock}"
        )
    validate_dynamics(sim.platform, events)
    nominal: dict[str, float] = {}
    log = DynamicsLog()

    def fire(event: LinkEvent) -> None:
        for link in sim.platform.links_matching(event.link):
            base = nominal.setdefault(link.name, link.bandwidth)
            if event.action == "degrade":
                link.bandwidth = base * event.factor
            elif event.action == "fail":
                link.bandwidth = FAILED_BANDWIDTH
            else:  # recover
                link.bandwidth = base
            log.applied.append(AppliedEvent(
                time=event.time, link=link.name, action=event.action,
                bandwidth=link.bandwidth,
            ))
        sim.touch_sharing()

    for event in sorted(events, key=lambda e: e.time):
        sim.schedule(event.time, lambda event=event: fire(event))
    return log
