"""The topology generator registry.

Every platform builder the repo knows — the original star/dumbbell/grid
helpers of :mod:`repro.simgrid.builder` and the fat-tree/torus/dragonfly
generators added with this subsystem — is reachable behind one family name,
so a :class:`~repro.scenarios.spec.TopologySpec` fully determines a
platform.  Adding a family is one :func:`register_topology` call; see
``docs/SCENARIOS.md``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.scenarios.spec import TopologySpec
from repro.simgrid.builder import (
    build_dragonfly,
    build_dumbbell,
    build_fat_tree,
    build_star_cluster,
    build_torus,
    build_two_level_grid,
)
from repro.simgrid.platform import Platform

#: family name -> builder(**params) -> Platform
_GENERATORS: dict[str, Callable[..., Platform]] = {}


def register_topology(
    family: str, builder: Optional[Callable[..., Platform]] = None
):
    """Register ``builder`` under ``family`` (usable as a decorator)."""

    def _register(fn: Callable[..., Platform]) -> Callable[..., Platform]:
        if family in _GENERATORS:
            raise ValueError(f"topology family {family!r} already registered")
        _GENERATORS[family] = fn
        return fn

    return _register(builder) if builder is not None else _register


def topology_families() -> list[str]:
    """All registered family names, sorted."""
    return sorted(_GENERATORS)


def build_topology(spec: TopologySpec) -> Platform:
    """Build the platform a :class:`TopologySpec` describes."""
    try:
        builder = _GENERATORS[spec.family]
    except KeyError:
        raise ValueError(
            f"unknown topology family {spec.family!r} "
            f"(have {topology_families()})"
        ) from None
    params = {key: _param(value) for key, value in spec.params.items()}
    return builder(**params)


def _param(value: object) -> object:
    """Spec params are frozen (tuples); builders take them as-is — tuples
    satisfy every ``Sequence`` parameter — so this is just a hook point."""
    return value


@register_topology("star")
def _star(n_hosts: int = 16, **kwargs) -> Platform:
    kwargs.setdefault("full_mesh", True)
    return build_star_cluster("star", n_hosts, **kwargs)


@register_topology("dumbbell")
def _dumbbell(**kwargs) -> Platform:
    return build_dumbbell(**kwargs)


@register_topology("grid")
def _grid(site_specs: Optional[dict] = None, **kwargs) -> Platform:
    sites = dict(site_specs) if site_specs else {"lille": 4, "lyon": 4, "nancy": 4}
    return build_two_level_grid(sites, **kwargs)


@register_topology("fat_tree")
def _fat_tree(**kwargs) -> Platform:
    return build_fat_tree(**kwargs)


@register_topology("torus")
def _torus(**kwargs) -> Platform:
    return build_torus(**kwargs)


@register_topology("dragonfly")
def _dragonfly(**kwargs) -> Platform:
    return build_dragonfly(**kwargs)
