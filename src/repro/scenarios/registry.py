"""Named scenario presets.

The :data:`DEFAULT_REGISTRY` holds the scenarios the CLI exposes
(``repro scenarios list|run``) and the tier-1 preset smoke check runs.  The
presets deliberately span every topology family and every workload kind, at
sizes small enough that each completes in well under a second — they are the
scaffolding future workload PRs extend, not benchmarks.
"""

from __future__ import annotations

from typing import Iterator

from repro.scenarios.spec import (
    LinkEvent,
    MeasuredTrace,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)


class ScenarioRegistry:
    """Named :class:`ScenarioSpec` collection with registration-order
    listing."""

    def __init__(self) -> None:
        self._specs: dict[str, ScenarioSpec] = {}

    def register(self, spec: ScenarioSpec) -> ScenarioSpec:
        if spec.name in self._specs:
            raise ValueError(f"scenario {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ScenarioSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise ValueError(
                f"unknown scenario {name!r} (have {self.names()})"
            ) from None

    def names(self) -> list[str]:
        return list(self._specs)

    def specs(self) -> list[ScenarioSpec]:
        return list(self._specs.values())

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs


#: The built-in presets (≥ 6 scenarios spanning all 6 topology families).
DEFAULT_REGISTRY = ScenarioRegistry()

DEFAULT_REGISTRY.register(ScenarioSpec(
    name="star-incast",
    description="15-to-1 incast on a flat star; the sink's access link "
                "degrades to half rate mid-transfer, then recovers",
    topology=TopologySpec("star", {"n_hosts": 16}),
    workload=WorkloadSpec("incast", size=5e7, params={"fan_in": 15}),
    dynamics=(
        LinkEvent(time=0.2, link="star-16-link", action="degrade", factor=0.5),
        LinkEvent(time=0.8, link="star-16-link", action="recover"),
    ),
))

DEFAULT_REGISTRY.register(ScenarioSpec(
    name="dumbbell-congestion",
    description="all-to-all across a shared dumbbell bottleneck that "
                "collapses to quarter rate and recovers",
    topology=TopologySpec("dumbbell", {"n_left": 4, "n_right": 4}),
    workload=WorkloadSpec("all_to_all", size=2e7),
    dynamics=(
        LinkEvent(time=0.3, link="bottleneck", action="degrade", factor=0.25),
        LinkEvent(time=1.2, link="bottleneck", action="recover"),
    ),
))

DEFAULT_REGISTRY.register(ScenarioSpec(
    name="grid-shuffle",
    description="3-site two-level grid running a 3-stride shuffle while "
                "every backbone link halves its capacity",
    topology=TopologySpec("grid", {"site_specs": {"lille": 4, "lyon": 4,
                                                  "nancy": 4}}),
    workload=WorkloadSpec("shuffle", size=1e8, params={"strides": 3}),
    dynamics=(
        LinkEvent(time=0.5, link="bb-*", action="degrade", factor=0.5),
    ),
))

DEFAULT_REGISTRY.register(ScenarioSpec(
    name="fat-tree-shuffle",
    description="k=4 fat tree under a 4-stride shuffle with one core "
                "uplink failing and recovering",
    topology=TopologySpec("fat_tree", {"k": 4}),
    workload=WorkloadSpec("shuffle", size=1e8, params={"strides": 4}),
    dynamics=(
        LinkEvent(time=0.3, link="ft-p0-a0-c0", action="fail"),
        LinkEvent(time=0.9, link="ft-p0-a0-c0", action="recover"),
    ),
))

DEFAULT_REGISTRY.register(ScenarioSpec(
    name="fat-tree-incast",
    description="k=4 fat tree, 15-to-1 incast into the last host (static "
                "control case: no dynamics)",
    topology=TopologySpec("fat_tree", {"k": 4}),
    workload=WorkloadSpec("incast", size=2e7, params={"fan_in": 15}),
))

DEFAULT_REGISTRY.register(ScenarioSpec(
    name="torus-neighbors",
    description="4x4 torus exchanging with ring neighbors while one mesh "
                "link fails and recovers",
    topology=TopologySpec("torus", {"dims": (4, 4)}),
    workload=WorkloadSpec("shuffle", size=5e7, params={"strides": 2}),
    dynamics=(
        LinkEvent(time=0.02, link="torus-0-0-d0", action="fail"),
        LinkEvent(time=0.08, link="torus-0-0-d0", action="recover"),
    ),
))

DEFAULT_REGISTRY.register(ScenarioSpec(
    name="dragonfly-random",
    description="4-group dragonfly under seeded random pair traffic with "
                "one global link failing mid-run",
    topology=TopologySpec("dragonfly", {"n_groups": 4, "routers_per_group": 3,
                                        "hosts_per_router": 2}),
    workload=WorkloadSpec("random_pairs", size=5e7, params={"n_pairs": 24}),
    dynamics=(
        LinkEvent(time=0.25, link="dfly-global-0-1", action="fail"),
        LinkEvent(time=0.75, link="dfly-global-0-1", action="recover"),
    ),
    seed=7,
))

DEFAULT_REGISTRY.register(ScenarioSpec(
    name="star-measured-replay",
    description="8-host star replaying a recorded bandwidth trace on one "
                "access link (measured dynamics source): dip to half, then "
                "30%, then recovery",
    topology=TopologySpec("star", {"n_hosts": 8}),
    workload=WorkloadSpec("all_to_all", size=4e7),
    measured=(
        MeasuredTrace(link="star-1-link", metric="bandwidth", samples=(
            (0.15, 6.25e7), (0.45, 3.75e7), (0.9, 1.25e8),
        )),
    ),
))

DEFAULT_REGISTRY.register(ScenarioSpec(
    name="star-flash-crowd",
    description="24-host star hit by seeded random pair traffic (static "
                "baseline for the incast preset)",
    topology=TopologySpec("star", {"n_hosts": 24}),
    workload=WorkloadSpec("random_pairs", size=2e7, params={"n_pairs": 32}),
    seed=11,
))
