"""The workload generator registry.

A workload generator maps ``(hosts, spec, rng)`` to a list of
``(src, dst, size)`` transfers.  ``hosts`` is the platform's host list in
construction order (deterministic), ``spec`` the
:class:`~repro.scenarios.spec.WorkloadSpec`, and ``rng`` a
:class:`numpy.random.Generator` whose stream is spawned from the scenario
seed — only :func:`random_pairs` consumes it, but every generator receives
it so stochastic variants slot in without signature changes.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.scenarios.spec import WorkloadSpec

Transfer = tuple[str, str, float]

#: kind -> generator(hosts, spec, rng) -> [(src, dst, size), ...]
_GENERATORS: dict[str, Callable] = {}


def register_workload(kind: str, generator: Optional[Callable] = None):
    """Register ``generator`` under ``kind`` (usable as a decorator)."""

    def _register(fn: Callable) -> Callable:
        if kind in _GENERATORS:
            raise ValueError(f"workload kind {kind!r} already registered")
        _GENERATORS[kind] = fn
        return fn

    return _register(generator) if generator is not None else _register


def workload_kinds() -> list[str]:
    """All registered workload kinds, sorted."""
    return sorted(_GENERATORS)


def generate_workload(
    spec: WorkloadSpec, hosts: Sequence[str], rng: np.random.Generator
) -> list[Transfer]:
    """The transfer list of ``spec`` over ``hosts``."""
    try:
        generator = _GENERATORS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown workload kind {spec.kind!r} (have {workload_kinds()})"
        ) from None
    if len(hosts) < 2:
        raise ValueError(f"workloads need >= 2 hosts, got {len(hosts)}")
    transfers = generator(list(hosts), spec, rng)
    if not transfers:
        raise ValueError(f"workload {spec.kind!r} produced no transfers")
    return transfers


@register_workload("all_to_all")
def _all_to_all(hosts, spec, rng) -> list[Transfer]:
    """Every ordered host pair; ``limit`` caps the participating hosts."""
    limit = spec.params.get("limit")
    active = hosts[: int(limit)] if limit else hosts
    return [(a, b, spec.size) for a in active for b in active if a != b]


@register_workload("incast")
def _incast(hosts, spec, rng) -> list[Transfer]:
    """``fan_in`` sources all sending to one sink (the last host, or
    ``destination``) — the classic partition/aggregate hot spot."""
    destination = spec.params.get("destination") or hosts[-1]
    if destination not in hosts:
        raise ValueError(f"incast destination {destination!r} not in platform")
    others = [h for h in hosts if h != destination]
    fan_in = int(spec.params.get("fan_in") or len(others))
    if not 1 <= fan_in <= len(others):
        raise ValueError(
            f"incast fan_in must be in [1, {len(others)}], got {fan_in}"
        )
    return [(src, destination, spec.size) for src in others[:fan_in]]


@register_workload("shuffle")
def _shuffle(hosts, spec, rng) -> list[Transfer]:
    """Map-reduce style shuffle: host ``i`` sends to hosts ``i+1 … i+strides``
    (mod n), so every host is simultaneously source and destination."""
    n = len(hosts)
    strides = int(spec.params.get("strides", 1))
    if not 1 <= strides < n:
        raise ValueError(f"shuffle strides must be in [1, {n - 1}], got {strides}")
    return [
        (hosts[i], hosts[(i + s) % n], spec.size)
        for i in range(n)
        for s in range(1, strides + 1)
    ]


@register_workload("random_pairs")
def _random_pairs(hosts, spec, rng) -> list[Transfer]:
    """``n_pairs`` random (src, dst) draws, src ≠ dst, seeded from the
    scenario's spawned stream."""
    n_pairs = int(spec.params.get("n_pairs", len(hosts)))
    if n_pairs < 1:
        raise ValueError(f"random_pairs needs n_pairs >= 1, got {n_pairs}")
    n = len(hosts)
    transfers: list[Transfer] = []
    for _ in range(n_pairs):
        src = int(rng.integers(n))
        dst = int(rng.integers(n - 1))
        if dst >= src:
            dst += 1
        transfers.append((hosts[src], hosts[dst], spec.size))
    return transfers
