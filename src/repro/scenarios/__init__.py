"""Declarative scenario subsystem: topology × workload × dynamics.

- :mod:`repro.scenarios.spec` — :class:`ScenarioSpec` and friends (JSON
  round-trip),
- :mod:`repro.scenarios.topologies` — the topology generator registry,
- :mod:`repro.scenarios.workloads` — the workload generator registry,
- :mod:`repro.scenarios.dynamics` — timed link degradation/failure/recovery
  plus measured-trace replays (:class:`MeasuredTrace`),
- :mod:`repro.scenarios.registry` — named presets (`repro scenarios list`),
- :mod:`repro.scenarios.runner` — :func:`run_scenario`.

See ``docs/SCENARIOS.md``.
"""

from repro.scenarios.registry import DEFAULT_REGISTRY, ScenarioRegistry
from repro.scenarios.runner import ScenarioResult, run_scenario
from repro.scenarios.spec import (
    LinkEvent,
    MeasuredTrace,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.scenarios.topologies import (
    build_topology,
    register_topology,
    topology_families,
)
from repro.scenarios.workloads import (
    generate_workload,
    register_workload,
    workload_kinds,
)

__all__ = [
    "DEFAULT_REGISTRY",
    "LinkEvent",
    "MeasuredTrace",
    "ScenarioRegistry",
    "ScenarioResult",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "build_topology",
    "generate_workload",
    "register_topology",
    "register_workload",
    "run_scenario",
    "topology_families",
    "workload_kinds",
]
