"""Metrology collectors: Ganglia/Munin-like pollers writing into RRDs.

The paper's metrology service fronts RRD files written by existing tools
(Ganglia, Munin, Cacti, Smokeping — §III-A/§IV-C1).  This subpackage plays
those tools' role: a registry of metric sources polled on a fixed period
into per-(tool, site, host, metric) RRDs, plus a Smokeping-like latency
prober measuring testbed RTTs — the data the paper plans to use for
"automatic link latency measurements instead of arbitrary values" (§VI).
"""

from repro.metrology.collectors import MetricRegistry, MetricKey, GangliaCollector
from repro.metrology.ping import LatencyProber

__all__ = ["MetricRegistry", "MetricKey", "GangliaCollector", "LatencyProber"]
