"""Metrology: collectors, the live probe feed and platform recalibration.

The paper's metrology service fronts RRD files written by existing tools
(Ganglia, Munin, Cacti, Smokeping — §III-A/§IV-C1).  This subpackage plays
those tools' role and closes the loop back into the simulator:

- :mod:`repro.metrology.collectors` — registry of metric sources polled on
  a fixed period into per-(tool, site, host, metric) RRDs,
- :mod:`repro.metrology.ping` — Smokeping-like latency prober,
- :mod:`repro.metrology.feed` — :class:`MetrologyFeed`: NWS
  bandwidth/latency probes on a schedule into per-link RRDs,
- :mod:`repro.metrology.calibrator` — :class:`LinkCalibrator`: RRD windows
  → adaptive per-link forecasts,
- :mod:`repro.metrology.loop` — :class:`RecalibrationLoop`: estimates
  applied to a live platform through the link-mutation epoch, so solver,
  route cache, forecast cache and warm pool invalidate implicitly,
- :mod:`repro.metrology.demo` — the degrading-link deployment behind
  ``repro metrology record|replay|run`` and the metrology bench.

See ``docs/METROLOGY.md``.
"""

from repro.metrology.collectors import (
    GangliaCollector,
    MetricKey,
    MetricRegistry,
    MetrologyError,
)
from repro.metrology.ping import LatencyProber

#: Lazily imported re-exports (PEP 562): the feed/calibrator/loop/demo
#: modules pull in the simulator stack (simgrid, core.forecast, testbed),
#: which collectors-only users — notably repro.core's REST framework —
#: must not pay for (and which would make repro.core and repro.metrology
#: mutually importing at module load).
_LAZY_EXPORTS = {
    "CapacityEvent": "repro.metrology.demo",
    "CapacitySchedule": "repro.metrology.demo",
    "StarMetrologyDemo": "repro.metrology.demo",
    "StepEvaluation": "repro.metrology.demo",
    "build_star_testbed": "repro.metrology.demo",
    "LinkCalibrator": "repro.metrology.calibrator",
    "LinkEstimate": "repro.metrology.calibrator",
    "LinkUpdate": "repro.metrology.loop",
    "RecalibrationLoop": "repro.metrology.loop",
    "MetrologyFeed": "repro.metrology.feed",
    "MonitoredLink": "repro.metrology.feed",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


__all__ = [
    "CapacityEvent",
    "CapacitySchedule",
    "GangliaCollector",
    "LatencyProber",
    "LinkCalibrator",
    "LinkEstimate",
    "LinkUpdate",
    "MetricKey",
    "MetricRegistry",
    "MetrologyError",
    "MetrologyFeed",
    "MonitoredLink",
    "RecalibrationLoop",
    "StarMetrologyDemo",
    "StepEvaluation",
    "build_star_testbed",
]
