"""The recalibration loop: measured link state applied to a live platform.

:class:`RecalibrationLoop` closes the paper's dynamic-forecasting cycle:
each :meth:`step` polls the :class:`~repro.metrology.feed.MetrologyFeed`
(probe → RRD), asks the :class:`~repro.metrology.calibrator.LinkCalibrator`
for fresh per-link estimates, and applies significant changes to the live
:class:`~repro.simgrid.platform.Platform` **through the links' property
setters** — each write bumps the global link-mutation epoch, which is the
single invalidation signal the whole stack already honours:

- per-route model memos and the incremental solver's cached usages
  re-derive at the next event (``Simulation._reshare``),
- the serving :class:`~repro.serving.cache.ForecastCache` keys on the
  epoch, so every cached answer silently becomes unreachable,
- the :class:`~repro.serving.pool.WarmWorkerPool` recycles its workers on
  the next batch (``ensure_epoch``).

Nothing subscribes to the loop; recalibration happens while the serving
stack answers traffic, and consistency is epoch-carried.

Because probe measurements are end-to-end (startup overhead, TCP ramp),
absolute levels under-estimate raw capacity.  The loop therefore captures a
**reference estimate** per link — the first warm estimate, taken while the
link is presumed healthy — plus the platform's nominal parameters, and
applies *relative* updates::

    link.bandwidth = nominal_bandwidth * estimate / reference
    link.latency   = nominal_latency + (rtt_estimate - rtt_reference) / 2

(bandwidth relatively — probe overhead scales with the rate; latency
additively — an RTT is twice the path latency plus constant stack
overhead, which a ratio would dilute every change against).

``min_rel_change`` hysteresis keeps probe noise from bumping the epoch
(and emptying caches / recycling workers) every poll.

References need not stay frozen at their first warm estimate: with
``anchor_alpha > 0`` each reference is a :class:`ReferenceAnchor` that
slowly tracks *healthy-phase* estimates through an EWMA.  The health gate
(``anchor_health_band``) decides which estimates count as healthy — those
within the band of the current reference.  Slow sensor drift (a bias
creeping into the probes while the network itself is fine) then moves the
reference along with the estimates and never becomes a permanent platform
bias; a genuine degradation lands far outside the band, leaves the
reference untouched, and is applied to the platform as before.  The
tradeoff is explicit: drift slower than ``alpha × band`` per poll is
absorbed as sensor error, so a *real* capacity loss that gradual would be
tracked away too — pick the band below the smallest real change worth
reacting to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.metrology.calibrator import LinkCalibrator, LinkEstimate
from repro.metrology.collectors import MetrologyError
from repro.metrology.feed import MetrologyFeed
from repro.simgrid.platform import Platform, link_epoch


@dataclass(frozen=True)
class LinkUpdate:
    """One applied recalibration: the link's parameters before/after."""

    time: float
    link: str
    bandwidth_before: float
    bandwidth_after: float
    latency_before: float
    latency_after: float

    def to_json(self) -> dict:
        return {
            "time": self.time,
            "link": self.link,
            "bandwidth_before": self.bandwidth_before,
            "bandwidth_after": self.bandwidth_after,
            "latency_before": self.latency_before,
            "latency_after": self.latency_after,
        }


#: Re-anchoring weightings: ``hard`` is the historical all-or-nothing
#: health band; ``gaussian`` weights the EWMA step by distance instead.
ANCHOR_WEIGHTINGS = ("hard", "gaussian")


class ReferenceAnchor:
    """A reference estimate that slowly re-anchors on healthy observations.

    ``observe`` feeds one estimate.  With the default ``hard`` weighting,
    an estimate within ``band`` (relative) of the current value — the
    health gate — moves the anchor toward it by the EWMA step ``alpha``;
    anything outside (an unhealthy phase: degradation, outage recovery)
    leaves the anchor bitwise untouched.  ``alpha = 0`` freezes the anchor
    at its initial value, the historical behavior.

    The hard band has a cliff: an estimate at 0.99·band re-anchors at full
    strength, one at 1.01·band not at all, so drift that straddles the
    edge re-anchors erratically.  ``weighting="gaussian"`` softens the
    cliff into **distance-weighted re-anchoring**: the step becomes ::

        alpha · exp(-0.5 · (distance / band)²),   distance = |e − v| / v

    — full-strength near the anchor, ≈61% at the band edge, vanishing
    (< 1.2% beyond 3 bands) for genuine degradations, which therefore
    still cannot drag the reference.  ``healthy`` keeps its hard-band
    meaning under both weightings; it remains the loop's telemetry gate.
    """

    __slots__ = ("value", "alpha", "band", "weighting")

    def __init__(self, value: float, alpha: float = 0.0,
                 band: float = 0.1, weighting: str = "hard") -> None:
        if value <= 0:
            raise MetrologyError(
                f"reference anchor needs a positive value, got {value}"
            )
        if not 0.0 <= alpha < 1.0:
            raise MetrologyError(f"anchor alpha must be in [0, 1): {alpha}")
        if band <= 0:
            raise MetrologyError(f"anchor band must be positive: {band}")
        if weighting not in ANCHOR_WEIGHTINGS:
            raise MetrologyError(
                f"anchor weighting must be one of {ANCHOR_WEIGHTINGS}, "
                f"got {weighting!r}"
            )
        self.value = float(value)
        self.alpha = float(alpha)
        self.band = float(band)
        self.weighting = weighting

    def healthy(self, estimate: float) -> bool:
        """Whether ``estimate`` passes the (hard) health gate."""
        return abs(estimate - self.value) <= self.band * self.value

    def step_weight(self, estimate: float) -> float:
        """The fraction of ``alpha`` this estimate re-anchors with."""
        if self.weighting == "hard":
            return 1.0 if self.healthy(estimate) else 0.0
        distance = abs(estimate - self.value) / (self.band * self.value)
        return math.exp(-0.5 * distance * distance)

    def observe(self, estimate: float) -> bool:
        """Feed one estimate; returns True when the anchor moved."""
        if self.alpha == 0.0:
            return False
        weight = self.step_weight(estimate)
        if weight == 0.0:
            return False
        before = self.value
        self.value += self.alpha * weight * (estimate - self.value)
        return self.value != before


@dataclass
class _LinkState:
    """Per-link calibration anchors captured at first warm estimate."""

    nominal_bandwidth: float
    nominal_latency: float
    bandwidth_anchor: ReferenceAnchor
    rtt_anchor: Optional[ReferenceAnchor]

    @property
    def reference_bandwidth(self) -> float:
        return self.bandwidth_anchor.value

    @property
    def reference_rtt(self) -> Optional[float]:
        return self.rtt_anchor.value if self.rtt_anchor is not None else None


@dataclass
class LoopStats:
    """Counters of the recalibration loop (JSON-able)."""

    polls: int = 0
    estimates: int = 0
    cold_estimates: int = 0
    updates_applied: int = 0
    updates_skipped: int = 0
    #: healthy-phase estimates that moved a reference anchor (EWMA)
    reanchors: int = 0
    #: subscriber callbacks that raised (isolated, never kill the loop)
    listener_errors: int = 0

    def to_json(self) -> dict:
        return {
            "polls": self.polls,
            "estimates": self.estimates,
            "cold_estimates": self.cold_estimates,
            "updates_applied": self.updates_applied,
            "updates_skipped": self.updates_skipped,
            "reanchors": self.reanchors,
            "listener_errors": self.listener_errors,
        }


class RecalibrationLoop:
    """Probe → RRD → forecast → platform mutation, one step at a time."""

    def __init__(
        self,
        platform: Platform,
        feed: MetrologyFeed,
        calibrator: Optional[LinkCalibrator] = None,
        min_rel_change: float = 0.05,
        calibrate_latency: bool = True,
        min_observations: int = 3,
        anchor_alpha: float = 0.0,
        anchor_health_band: float = 0.1,
        anchor_weighting: str = "hard",
    ) -> None:
        if not 0.0 <= min_rel_change < 1.0:
            raise MetrologyError(
                f"min_rel_change must be in [0, 1), got {min_rel_change}"
            )
        if min_observations < 1:
            raise MetrologyError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        if not 0.0 <= anchor_alpha < 1.0:
            raise MetrologyError(
                f"anchor_alpha must be in [0, 1), got {anchor_alpha}"
            )
        if anchor_health_band <= 0:
            raise MetrologyError(
                f"anchor_health_band must be positive, got {anchor_health_band}"
            )
        if anchor_weighting not in ANCHOR_WEIGHTINGS:
            raise MetrologyError(
                f"anchor_weighting must be one of {ANCHOR_WEIGHTINGS}, "
                f"got {anchor_weighting!r}"
            )
        self.platform = platform
        self.feed = feed
        self.calibrator = (calibrator if calibrator is not None
                           else LinkCalibrator.for_feed(feed))
        self.min_rel_change = float(min_rel_change)
        self.calibrate_latency = bool(calibrate_latency)
        self.min_observations = int(min_observations)
        self.anchor_alpha = float(anchor_alpha)
        self.anchor_health_band = float(anchor_health_band)
        self.anchor_weighting = anchor_weighting
        self.stats = LoopStats()
        self._states: dict[str, _LinkState] = {}
        self._listeners: list[Callable[[list[LinkUpdate]], None]] = []
        for monitor in feed.monitors:
            platform.link(monitor.link)  # fail fast on unknown links

    # -- subscriptions -----------------------------------------------------

    def subscribe(
        self, listener: Callable[[list[LinkUpdate]], None]
    ) -> Callable[[], None]:
        """Call ``listener(applied)`` after every apply that mutated links.

        The surrogate retrainer uses this to enqueue stale-region
        re-sweeps; listeners fire *after* the epoch bumps, so they observe
        the post-recalibration world.  Listener exceptions are isolated
        (counted in ``stats.listener_errors``) — metrology never fails
        because a subscriber did.  Returns an unsubscribe callable.
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    # -- one loop iteration ------------------------------------------------

    def step(self) -> list[LinkUpdate]:
        """Poll once, refresh estimates, apply significant changes."""
        now = self.feed.poll_once()
        self.stats.polls += 1
        return self.apply(self.calibrator.estimates(now))

    def run(self, steps: int) -> list[LinkUpdate]:
        """``steps`` loop iterations; returns every update applied."""
        applied: list[LinkUpdate] = []
        for _ in range(steps):
            applied.extend(self.step())
        return applied

    # -- applying estimates ------------------------------------------------

    def apply(self, estimates: list[LinkEstimate]) -> list[LinkUpdate]:
        """Mutate platform links whose estimate moved beyond the hysteresis.

        Cold estimates are skipped (the cold-start contract).  A link's
        first usable estimate only anchors its reference and applies no
        mutation — by construction the link is then exactly at nominal —
        and anchoring waits for ``min_observations`` probe samples, so a
        single noisy first probe cannot skew every later relative update.
        With ``anchor_alpha > 0`` every later healthy estimate re-anchors
        the reference slightly (EWMA) before the relative update is
        computed, so slow sensor drift never freezes in as bias.
        """
        applied: list[LinkUpdate] = []
        for estimate in estimates:
            self.stats.estimates += 1
            if not estimate.ready:
                self.stats.cold_estimates += 1
                continue
            state = self._states.get(estimate.link)
            link = self.platform.link(estimate.link)
            if state is None:
                if (self.calibrator.observations(estimate.link)
                        < self.min_observations):
                    self.stats.cold_estimates += 1
                    continue
                self._states[estimate.link] = _LinkState(
                    nominal_bandwidth=link.bandwidth,
                    nominal_latency=link.latency,
                    bandwidth_anchor=ReferenceAnchor(
                        estimate.bandwidth, self.anchor_alpha,
                        self.anchor_health_band, self.anchor_weighting),
                    rtt_anchor=(ReferenceAnchor(
                        estimate.rtt, self.anchor_alpha,
                        self.anchor_health_band, self.anchor_weighting)
                        if estimate.rtt else None),
                )
                continue
            if state.bandwidth_anchor.observe(estimate.bandwidth):
                self.stats.reanchors += 1
            if (state.rtt_anchor is not None and estimate.rtt is not None
                    and state.rtt_anchor.observe(estimate.rtt)):
                self.stats.reanchors += 1
            target_bw = (state.nominal_bandwidth
                         * estimate.bandwidth / state.reference_bandwidth)
            target_lat = link.latency
            if (self.calibrate_latency and estimate.rtt is not None
                    and state.reference_rtt):
                # additive, not a ratio: an RTT is twice the path latency
                # plus constant stack overhead, so the overhead would
                # dilute every relative latency change
                target_lat = max(0.0, state.nominal_latency
                                 + 0.5 * (estimate.rtt - state.reference_rtt))
            # latency hysteresis gates on the measurement's noise scale:
            # the additive estimate inherits the RTT's jitter, which dwarfs
            # the nominal link latency when path overhead dominates the RTT
            latency_scale = max(state.nominal_latency,
                                (state.reference_rtt or 0.0) / 2.0)
            if not self._significant(link.bandwidth, target_bw,
                                     state.nominal_bandwidth) and \
                    not self._significant(link.latency, target_lat,
                                          latency_scale):
                self.stats.updates_skipped += 1
                continue
            update = LinkUpdate(
                time=estimate.time,
                link=estimate.link,
                bandwidth_before=link.bandwidth,
                bandwidth_after=target_bw,
                latency_before=link.latency,
                latency_after=target_lat,
            )
            link.bandwidth = target_bw  # bumps the link-mutation epoch
            if target_lat != update.latency_before:
                link.latency = target_lat
            self.stats.updates_applied += 1
            applied.append(update)
        if applied:
            for listener in list(self._listeners):
                try:
                    listener(applied)
                except Exception:  # noqa: BLE001 - isolate subscribers
                    self.stats.listener_errors += 1
        return applied

    def _significant(self, current: float, target: float, nominal: float) -> bool:
        return abs(target - current) > self.min_rel_change * nominal

    # -- introspection -----------------------------------------------------

    @property
    def epoch(self) -> int:
        """The global link-mutation epoch (what caches key on)."""
        return link_epoch()

    def nominal(self, link: str) -> Optional[_LinkState]:
        """The calibration anchors of ``link`` (None while cold)."""
        return self._states.get(link)
