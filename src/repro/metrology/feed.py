"""The metrology feed: scheduled NWS probes recorded into per-link RRDs.

A :class:`MetrologyFeed` owns one :class:`~repro.nws.sensors.BandwidthSensor`
and one :class:`~repro.nws.sensors.LatencySensor` per *monitored link* and
polls them on a fixed period, recording each measurement into that link's
round-robin databases (one GAUGE data source per metric, the default RRA
ladder).  This is the paper's §IV-C1 ingestion half made live: where the
:class:`~repro.metrology.collectors.GangliaCollector` replays generic metric
callables, the feed drives *active network probes* whose series the
:mod:`~repro.metrology.calibrator` turns back into link parameters.

A :class:`MonitoredLink` names the platform link being calibrated and the
testbed node pair whose probe path isolates it (the pair's bottleneck must
be that link — e.g. a host's access link probed host ↔ collector).  Probe
measurements are end-to-end goodput/RTT, *not* raw link parameters; the
calibrator works in relative terms for exactly that reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.metrology.collectors import MetricKey, MetricRegistry, MetrologyError
from repro.nws.sensors import BandwidthSensor, LatencySensor
from repro.rrd.database import RoundRobinDatabase
from repro.testbed.fluid import TestbedNetwork

#: Tool name the feed registers its RRDs under (URI layout: see MetricKey).
FEED_TOOL = "nws"
#: Site component of the feed's metric keys.
FEED_SITE = "probe"


@dataclass(frozen=True)
class MonitoredLink:
    """One link under metrology: the platform link name to calibrate and
    the testbed probe pair whose path bottleneck is that link."""

    link: str
    src: str
    dst: str

    def __post_init__(self) -> None:
        if not self.link or not self.src or not self.dst:
            raise MetrologyError("monitored link needs link, src and dst names")


class MetrologyFeed:
    """Drives per-link probe sensors on a schedule into RRDs.

    The clock is simulated (like :class:`GangliaCollector`): every
    :meth:`poll_once` advances it by ``period`` and records one bandwidth
    and one RTT sample per monitored link.  Degenerate bandwidth probes
    (see :meth:`BandwidthSensor.probe_once`) record NaN, which the RRD
    treats as an unknown sample — the calibrator simply sees a gap.
    """

    def __init__(
        self,
        network: TestbedNetwork,
        monitors: Sequence[MonitoredLink],
        registry: MetricRegistry | None = None,
        period: float = 15.0,
        seed: int = 0,
        probe_bytes: float = BandwidthSensor.PROBE_BYTES,
    ) -> None:
        if period <= 0:
            raise MetrologyError("period must be positive")
        if not monitors:
            raise MetrologyError("at least one monitored link is required")
        names = [m.link for m in monitors]
        if len(set(names)) != len(names):
            raise MetrologyError(f"duplicate monitored links in {names}")
        self.network = network
        self.registry = registry if registry is not None else MetricRegistry()
        self.monitors = tuple(monitors)
        self.period = float(period)
        self.clock = 0.0
        self._sensors: dict[str, tuple[BandwidthSensor, LatencySensor]] = {}
        for monitor in self.monitors:
            self._sensors[monitor.link] = (
                BandwidthSensor(network, monitor.src, monitor.dst, seed=seed,
                                probe_bytes=probe_bytes),
                LatencySensor(network, monitor.src, monitor.dst, seed=seed),
            )
            for metric in ("bandwidth", "latency"):
                key = self.metric_key(monitor.link, metric)
                if key not in self.registry:
                    self.registry.create(key, kind="GAUGE", step=self.period)
                elif self.registry.get(key).step != self.period:
                    # a reused RRD on a different PDP grid would silently
                    # average this feed's probes away (or gap them)
                    raise MetrologyError(
                        f"metric {key.path()!r} exists with step "
                        f"{self.registry.get(key).step:g}, but the feed "
                        f"polls every {self.period:g}s"
                    )

    @staticmethod
    def metric_key(link: str, metric: str) -> MetricKey:
        """The RRD identity of one link metric series."""
        return MetricKey(FEED_TOOL, FEED_SITE, link, metric)

    def rrd(self, link: str, metric: str) -> RoundRobinDatabase:
        """The RRD holding ``link``'s ``metric`` series."""
        return self.registry.get(self.metric_key(link, metric))

    # -- polling -----------------------------------------------------------

    def poll_once(self) -> float:
        """One probe cycle over every monitored link; returns the new clock."""
        self.clock += self.period
        for monitor in self.monitors:
            bw_sensor, lat_sensor = self._sensors[monitor.link]
            goodput = bw_sensor.probe_once()
            rtt = lat_sensor.probe_once()
            self.rrd(monitor.link, "bandwidth").update(self.clock, goodput)
            self.rrd(monitor.link, "latency").update(self.clock, rtt)
        return self.clock

    def poll_for(self, duration: float) -> int:
        """Probe cycles covering ``duration`` seconds; returns the count."""
        cycles = 0
        end = self.clock + duration
        while self.clock + self.period <= end + 1e-12:
            self.poll_once()
            cycles += 1
        return cycles
