"""The metrology feed: scheduled NWS probes recorded into per-link RRDs.

A :class:`MetrologyFeed` owns one :class:`~repro.nws.sensors.BandwidthSensor`
and one :class:`~repro.nws.sensors.LatencySensor` per *monitored link* and
polls them on a fixed period, recording each measurement into that link's
round-robin databases (one GAUGE data source per metric, the default RRA
ladder).  This is the paper's §IV-C1 ingestion half made live: where the
:class:`~repro.metrology.collectors.GangliaCollector` replays generic metric
callables, the feed drives *active network probes* whose series the
:mod:`~repro.metrology.calibrator` turns back into link parameters.

A :class:`MonitoredLink` names the platform link being calibrated and the
testbed node pair whose probe path isolates it (the pair's bottleneck must
be that link — e.g. a host's access link probed host ↔ collector).  Probe
measurements are end-to-end goodput/RTT, *not* raw link parameters; the
calibrator works in relative terms for exactly that reason.

Two scalability properties matter on platforms with hundreds of monitored
links:

- **parallel fan-out** — ``workers=N`` runs each cycle's bandwidth probes
  (the expensive part: one fluid simulation each) on a bounded pool of
  long-lived worker processes.  Probe-flow seeds derive from the probe
  index, not execution order, and all sensor bookkeeping and RRD writes
  stay in the parent, sequential in monitor order (the RRDs additionally
  carry their own lock for genuinely racing writers), so parallel results
  are **bit-identical** to serial ones for deterministic sensors.  Workers
  keep a resident copy of the testbed forked at pool start; each task chunk
  carries the current link-state overrides so mid-run capacity mutations
  (a degrading testbed) are visible.  Like the serving
  :class:`~repro.serving.pool.WarmWorkerPool` this relies on the ``fork``
  start method; under ``spawn`` a one-time warning flags that the shipped
  network must be picklable and override shipping still applies.
- **epoch-grid deadlines** — probe cycles are scheduled on the grid
  ``start + k × period`` anchored at the feed's original epoch.  A cycle
  whose probes overrun the period resumes on the next grid point *after*
  its completion (skipped points are counted in :attr:`missed_cycles`),
  instead of drifting by scheduling ``completion + period``.  This also
  keeps ``clock`` free of accumulated float error: it is always an exact
  grid multiple, never a sum of hundreds of additions.
"""

from __future__ import annotations

import math
import multiprocessing
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence

from repro._util.parallel import pool_chunk_size
from repro.metrology.collectors import MetricKey, MetricRegistry, MetrologyError
from repro.nws.sensors import BandwidthSensor, LatencySensor, run_bandwidth_probe
from repro.rrd.database import RoundRobinDatabase
from repro.testbed.fluid import TestbedNetwork

#: Tool name the feed registers its RRDs under (URI layout: see MetricKey).
FEED_TOOL = "nws"
#: Site component of the feed's metric keys.
FEED_SITE = "probe"

#: Tolerance for deadline-grid comparisons (simulated seconds).
_GRID_EPS = 1e-9

#: Probe-worker state: the resident testbed forked at pool start.
_WORKER_NETWORK: dict = {}


def _probe_worker_init(network: TestbedNetwork) -> None:
    """Pool initializer: keep one resident testbed copy per worker."""
    _WORKER_NETWORK["network"] = network


def _probe_chunk(payload: tuple) -> list[float]:
    """Run one chunk of bandwidth probes against the resident testbed.

    ``payload`` is ``(overrides, probes)``: the parent's current link state
    (capacity, latency, efficiency per link — the worker's copy was forked
    at pool start and must track mid-run mutations) and the probe specs
    ``(src, dst, probe_bytes, flow_seed)``.  Returns raw elapsed seconds,
    one per probe, in order.
    """
    overrides, probes = payload
    network: TestbedNetwork = _WORKER_NETWORK["network"]
    for name, (capacity, latency, efficiency) in overrides.items():
        link = network.links[name]
        link.capacity = capacity
        link.latency = latency
        link.efficiency = efficiency
    return [
        run_bandwidth_probe(network, src, dst, probe_bytes, seed)
        for src, dst, probe_bytes, seed in probes
    ]


@dataclass(frozen=True)
class MonitoredLink:
    """One link under metrology: the platform link name to calibrate and
    the testbed probe pair whose path bottleneck is that link."""

    link: str
    src: str
    dst: str

    def __post_init__(self) -> None:
        if not self.link or not self.src or not self.dst:
            raise MetrologyError("monitored link needs link, src and dst names")


class MetrologyFeed:
    """Drives per-link probe sensors on a schedule into RRDs.

    The clock is simulated (like :class:`GangliaCollector`): every
    :meth:`poll_once` records one bandwidth and one RTT sample per
    monitored link at the next deadline of the epoch grid.  Degenerate
    bandwidth probes (see :meth:`BandwidthSensor.absorb`) record NaN, which
    the RRD treats as an unknown sample — the calibrator simply sees a gap.

    ``workers > 0`` fans each cycle's bandwidth probes out over a process
    pool (see the module docstring); call :meth:`close` (or use the feed as
    a context manager) to release the pool.
    """

    def __init__(
        self,
        network: TestbedNetwork,
        monitors: Sequence[MonitoredLink],
        registry: MetricRegistry | None = None,
        period: float = 15.0,
        seed: int = 0,
        probe_bytes: float = BandwidthSensor.PROBE_BYTES,
        workers: int = 0,
    ) -> None:
        if period <= 0:
            raise MetrologyError("period must be positive")
        if workers < 0:
            raise MetrologyError(f"workers must be >= 0, got {workers}")
        if not monitors:
            raise MetrologyError("at least one monitored link is required")
        names = [m.link for m in monitors]
        if len(set(names)) != len(names):
            raise MetrologyError(f"duplicate monitored links in {names}")
        self.network = network
        self.registry = registry if registry is not None else MetricRegistry()
        self.monitors = tuple(monitors)
        self.period = float(period)
        self.workers = int(workers)
        self.clock = 0.0
        #: probe cycles whose grid deadline was overrun and skipped
        self.missed_cycles = 0
        #: simulated duration of the last probe cycle (max probe time —
        #: the cycle's probes run concurrently)
        self.last_cycle_duration = 0.0
        self._epoch0 = 0.0
        self._cycle_index = 0
        self._completed_at = 0.0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._spawn_warned = False
        self._sensors: dict[str, tuple[BandwidthSensor, LatencySensor]] = {}
        for monitor in self.monitors:
            self._sensors[monitor.link] = (
                BandwidthSensor(network, monitor.src, monitor.dst, seed=seed,
                                probe_bytes=probe_bytes),
                LatencySensor(network, monitor.src, monitor.dst, seed=seed),
            )
            for metric in ("bandwidth", "latency"):
                key = self.metric_key(monitor.link, metric)
                if key not in self.registry:
                    self.registry.create(key, kind="GAUGE", step=self.period)
                elif self.registry.get(key).step != self.period:
                    # a reused RRD on a different PDP grid would silently
                    # average this feed's probes away (or gap them)
                    raise MetrologyError(
                        f"metric {key.path()!r} exists with step "
                        f"{self.registry.get(key).step:g}, but the feed "
                        f"polls every {self.period:g}s"
                    )

    @staticmethod
    def metric_key(link: str, metric: str) -> MetricKey:
        """The RRD identity of one link metric series."""
        return MetricKey(FEED_TOOL, FEED_SITE, link, metric)

    def rrd(self, link: str, metric: str) -> RoundRobinDatabase:
        """The RRD holding ``link``'s ``metric`` series."""
        return self.registry.get(self.metric_key(link, metric))

    def scale_bandwidth_sensors(self, factor: float) -> None:
        """Multiply every bandwidth sensor's measurement bias by ``factor``
        (drift injection: the sensors' readings diverge from the truth)."""
        if factor <= 0:
            raise MetrologyError(f"sensor scale factor must be > 0: {factor}")
        for bw_sensor, _ in self._sensors.values():
            bw_sensor.scale *= factor

    # -- worker pool -------------------------------------------------------

    def close(self) -> None:
        """Shut the probe worker pool down (no-op for serial feeds)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "MetrologyFeed":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            if (multiprocessing.get_start_method(allow_none=True)
                    not in (None, "fork") and not self._spawn_warned):
                self._spawn_warned = True
                warnings.warn(
                    "MetrologyFeed probe fan-out under a non-fork start "
                    "method: the testbed network is pickled to each worker "
                    "instead of inherited at fork time",
                    RuntimeWarning, stacklevel=3,
                )
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_probe_worker_init,
                initargs=(self.network,),
            )
        return self._executor

    def _link_overrides(self) -> dict[str, tuple[float, float, float]]:
        """Current testbed link state, shipped with every probe chunk."""
        return {
            name: (link.capacity, link.latency, link.efficiency)
            for name, link in self.network.links.items()
        }

    # -- polling -----------------------------------------------------------

    def _next_index(self) -> int:
        """The grid index of the next deadline: past the previous cycle
        *and* past the previous cycle's completion (overrun skip)."""
        resumed = math.ceil(
            (self._completed_at - self._epoch0) / self.period - _GRID_EPS)
        return max(self._cycle_index + 1, resumed)

    def next_deadline(self) -> float:
        """When the next probe cycle will record (epoch-grid time)."""
        return self._epoch0 + self._next_index() * self.period

    def _probe_bandwidths(self) -> dict[str, float]:
        """Raw elapsed seconds of this cycle's bandwidth probes, per link."""
        if self.workers > 0 and len(self.monitors) > 1:
            probes = [
                (m.src, m.dst, self._sensors[m.link][0].probe_bytes,
                 self._sensors[m.link][0].flow_seed())
                for m in self.monitors
            ]
            overrides = self._link_overrides()
            chunk = pool_chunk_size(len(probes), self.workers)
            chunks = [probes[i:i + chunk] for i in range(0, len(probes), chunk)]
            results = self._pool().map(
                _probe_chunk, [(overrides, c) for c in chunks])
            elapsed = [e for chunk_result in results for e in chunk_result]
        else:
            elapsed = [
                run_bandwidth_probe(
                    self.network, m.src, m.dst,
                    self._sensors[m.link][0].probe_bytes,
                    self._sensors[m.link][0].flow_seed(),
                )
                for m in self.monitors
            ]
        return {m.link: e for m, e in zip(self.monitors, elapsed)}

    def poll_once(self) -> float:
        """One probe cycle over every monitored link; returns the new clock.

        The cycle records at the next epoch-grid deadline.  Its simulated
        duration is the slowest probe's transfer time (probes run
        concurrently — which the parallel fan-out makes literal); a cycle
        that overruns the period pushes the next deadline to the first
        grid point after its completion, never off the grid.
        """
        index = self._next_index()
        deadline = self._epoch0 + index * self.period
        elapsed_by_link = self._probe_bandwidths()
        duration = 0.0
        for monitor in self.monitors:
            bw_sensor, lat_sensor = self._sensors[monitor.link]
            elapsed = elapsed_by_link[monitor.link]
            goodput = bw_sensor.absorb(elapsed)
            rtt = lat_sensor.probe_once()
            if math.isfinite(elapsed) and elapsed > 0.0:
                duration = max(duration, elapsed)
            for metric, value in (("bandwidth", goodput), ("latency", rtt)):
                rrd = self.rrd(monitor.link, metric)
                # skipped grid points were not probed: record them as
                # explicitly unknown so a single missed cycle cannot be
                # back-filled with the next sample (a one-period overrun
                # leaves the gap under the RRD heartbeat)
                for skipped in range(self._cycle_index + 1, index):
                    rrd.update(self._epoch0 + skipped * self.period,
                               math.nan)
                rrd.update(deadline, value)
        self.missed_cycles += index - self._cycle_index - 1
        self._cycle_index = index
        self.clock = deadline
        self.last_cycle_duration = duration
        self._completed_at = deadline + duration
        return self.clock

    def poll_for(self, duration: float) -> int:
        """Probe cycles covering ``duration`` seconds; returns the count.

        Deadlines stay on the original epoch grid even when cycles overrun
        their period (the count then excludes the skipped grid points).
        """
        end = self.clock + duration
        cycles = 0
        while self.next_deadline() <= end + 1e-12:
            self.poll_once()
            cycles += 1
        return cycles
