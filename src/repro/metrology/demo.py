"""A self-contained degrading-link deployment for the metrology pipeline.

The demo wires the whole loop on a star cluster that exists twice, in the
two worlds the paper distinguishes:

- a **testbed** (:class:`~repro.testbed.fluid.TestbedNetwork`) playing the
  real network: per-host duplex access links into a hub plus a fat-linked
  *collector* node, so a probe ``host-i ↔ collector`` is bottlenecked by
  exactly ``star-i-link``.  A :class:`CapacitySchedule` degrades testbed
  link capacities over (metrology) time — the ground truth the probes see;
- a **platform** (:func:`~repro.simgrid.builder.build_star_cluster`, same
  link names as the ``star`` scenario family) that the simulator predicts
  with — initially calibrated to nominal values and recalibrated live by
  the :class:`~repro.metrology.loop.RecalibrationLoop`.

The CLI verbs (``repro metrology record|replay|run``), the smoke check and
``benchmarks/bench_metrology_loop.py`` all drive this harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.forecast import NetworkForecastService
from repro.metrology.calibrator import LinkCalibrator
from repro.metrology.collectors import MetrologyError
from repro.metrology.feed import MetrologyFeed, MonitoredLink
from repro.metrology.loop import RecalibrationLoop
from repro.scenarios.spec import MeasuredTrace
from repro.serving.factories import live_platform_factory, register_live_platform
from repro.simgrid.builder import build_star_cluster
from repro.simgrid.platform import Platform
from repro.testbed.fluid import Hop, TestbedNetwork
from repro.testbed.measurement import run_transfers

#: Name the demo's platforms register under in forecast services.
DEMO_PLATFORM = "metrology-star"
#: Cluster/prefix name — matches the ``star`` scenario topology family, so
#: recorded traces replay onto ``TopologySpec("star", ...)`` link names.
STAR_NAME = "star"
#: Collector node appended to the testbed (never a platform host).
COLLECTOR = f"{STAR_NAME}-collector"


@dataclass(frozen=True)
class CapacityEvent:
    """One scheduled testbed mutation: at ``time``, set ``link`` to
    ``factor`` × nominal capacity (1.0 = recover) and, when
    ``latency_factor != 1``, its latency to ``latency_factor`` × nominal
    (a congested link buffers: bufferbloat raises RTTs as capacity drops)."""

    time: float
    link: str
    factor: float
    latency_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise MetrologyError(f"capacity factor must be positive: {self.factor}")
        if self.latency_factor <= 0:
            raise MetrologyError(
                f"latency factor must be positive: {self.latency_factor}"
            )


class CapacitySchedule:
    """Applies :class:`CapacityEvent`s to a testbed as its clock advances."""

    def __init__(self, network: TestbedNetwork,
                 events: Sequence[CapacityEvent]) -> None:
        self.network = network
        self._pending = sorted(events, key=lambda e: e.time)
        self._nominal = {name: link.capacity
                         for name, link in network.links.items()}
        self._nominal_latency = {name: link.latency
                                 for name, link in network.links.items()}
        for event in self._pending:
            if event.link not in network.links:
                raise MetrologyError(f"schedule targets unknown link {event.link!r}")
        self.applied: list[CapacityEvent] = []

    def advance(self, now: float) -> list[CapacityEvent]:
        """Apply every event with ``time <= now``; returns those applied."""
        fired = []
        while self._pending and self._pending[0].time <= now:
            event = self._pending.pop(0)
            link = self.network.links[event.link]
            link.capacity = self._nominal[event.link] * event.factor
            link.latency = (self._nominal_latency[event.link]
                            * event.latency_factor)
            self.applied.append(event)
            fired.append(event)
        return fired

    def true_factor(self, link: str) -> float:
        """Current capacity / nominal for ``link``."""
        return self.network.links[link].capacity / self._nominal[link]

    def true_latency_factor(self, link: str) -> float:
        """Current latency / nominal for ``link``."""
        return (self.network.links[link].latency
                / self._nominal_latency[link])


def build_star_testbed(
    n_hosts: int,
    capacity: float = 1.25e8,
    latency: float = 1e-4,
    collector_latency: Optional[float] = None,
) -> TestbedNetwork:
    """The testbed twin of :func:`build_star_cluster`: same link names,
    plus a collector behind a 16× link that is never the probe bottleneck.

    ``collector_latency`` overrides the collector link's latency (default:
    same as the host links).  Latency-calibration scenarios set it small so
    a probe RTT is dominated by the monitored host link and relative RTT
    scaling recovers the link's true latency factor.
    """
    net = TestbedNetwork(f"{STAR_NAME}-testbed")
    collector_link = net.add_link(
        f"{COLLECTOR}-link", capacity * 16.0,
        latency if collector_latency is None else collector_latency)
    net.add_node(COLLECTOR)
    host_links = []
    for i in range(1, n_hosts + 1):
        net.add_node(f"{STAR_NAME}-{i}")
        host_links.append(net.add_link(f"{STAR_NAME}-{i}-link", capacity, latency))
    for i, link in enumerate(host_links, start=1):
        net.add_route(f"{STAR_NAME}-{i}", COLLECTOR,
                      [Hop(link, 0), Hop(collector_link, 1)])
        for j in range(i + 1, n_hosts + 1):
            net.add_route(f"{STAR_NAME}-{i}", f"{STAR_NAME}-{j}",
                          [Hop(link, 0), Hop(host_links[j - 1], 1)])
    return net


@dataclass(frozen=True)
class StepEvaluation:
    """One loop step's forecast quality, recalibrated vs static baseline."""

    time: float
    true_factor: float
    epoch: int
    #: median |log2(prediction) − log2(measure)| over the workload
    err_recalibrated: float
    err_static: float

    @property
    def degraded(self) -> bool:
        return self.true_factor < 1.0


class StarMetrologyDemo:
    """Testbed + live platform + static baseline + feed + loop, assembled.

    ``degrade_link`` (1-based host index) loses capacity at ``degrade_at``
    down to ``degrade_factor`` (and gains latency by
    ``degrade_latency_factor``); ``warmup_cycles`` polls run before the
    loop anchors references (the links are healthy during warm-up).

    ``sensor_drift`` injects per-cycle multiplicative bandwidth-sensor
    drift (each :meth:`step` scales every bandwidth sensor's bias by
    ``1 - sensor_drift``) — the slow measurement-bias failure mode the
    loop's EWMA re-anchoring (``anchor_alpha`` / ``anchor_health_band``)
    exists to absorb.  ``feed_workers`` fans probe cycles out over the
    feed's process pool (bit-identical to serial; see
    :class:`~repro.metrology.feed.MetrologyFeed`).
    """

    def __init__(
        self,
        n_hosts: int = 4,
        period: float = 15.0,
        seed: int = 0,
        probe_bytes: float = 8e6,
        capacity: float = 1.25e8,
        latency: float = 1e-4,
        degrade_link: int = 1,
        degrade_factor: float = 0.3,
        degrade_at: Optional[float] = None,
        min_rel_change: float = 0.05,
        degrade_latency_factor: float = 1.0,
        collector_latency: Optional[float] = None,
        sensor_drift: float = 0.0,
        anchor_alpha: float = 0.0,
        anchor_health_band: float = 0.1,
        anchor_weighting: str = "hard",
        feed_workers: int = 0,
    ) -> None:
        if n_hosts < 2:
            raise MetrologyError(
                f"the demo workload needs >= 2 hosts, got {n_hosts}"
            )
        if not 1 <= degrade_link <= n_hosts:
            raise MetrologyError(
                f"degrade_link must be in 1..{n_hosts}, got {degrade_link}"
            )
        if not 0.0 <= sensor_drift < 1.0:
            raise MetrologyError(
                f"sensor_drift must be in [0, 1), got {sensor_drift}"
            )
        self.n_hosts = n_hosts
        self.seed = seed
        self.degraded_link = f"{STAR_NAME}-{degrade_link}-link"
        self.degrade_factor = float(degrade_factor)
        self.degrade_at = (float(degrade_at) if degrade_at is not None
                           else 6.0 * period)
        self.sensor_drift = float(sensor_drift)
        self.testbed = build_star_testbed(n_hosts, capacity, latency,
                                          collector_latency=collector_latency)
        self.platform = build_star_cluster(STAR_NAME, n_hosts,
                                           host_bandwidth=capacity,
                                           host_latency=latency)
        #: never recalibrated: the paper's static-description baseline
        self.static_platform = build_star_cluster(STAR_NAME, n_hosts,
                                                  host_bandwidth=capacity,
                                                  host_latency=latency)
        self.schedule = CapacitySchedule(self.testbed, [
            CapacityEvent(self.degrade_at, self.degraded_link,
                          self.degrade_factor,
                          latency_factor=degrade_latency_factor),
        ])
        monitors = [
            MonitoredLink(f"{STAR_NAME}-{i}-link", f"{STAR_NAME}-{i}", COLLECTOR)
            for i in range(1, n_hosts + 1)
        ]
        self.feed = MetrologyFeed(self.testbed, monitors, period=period,
                                  seed=seed, probe_bytes=probe_bytes,
                                  workers=feed_workers)
        self.loop = RecalibrationLoop(self.platform, self.feed,
                                      min_rel_change=min_rel_change,
                                      anchor_alpha=anchor_alpha,
                                      anchor_health_band=anchor_health_band,
                                      anchor_weighting=anchor_weighting)
        self.service = NetworkForecastService({DEMO_PLATFORM: self.platform})
        self.static_service = NetworkForecastService(
            {DEMO_PLATFORM: self.static_platform})
        # pool workers forked by a warm serving pool rebuild their service
        # over this exact (recalibrated) platform — see serving.factories
        register_live_platform(DEMO_PLATFORM, self.platform)

    def service_factory(self):
        """A picklable factory for warm-pool workers serving this demo.

        Workers fork from the demo's process, so the factory's service
        wraps the *live* platform as recalibrated at fork time; every
        ``ensure_epoch`` recycle after a loop update re-forks and picks up
        the mutation.
        """
        return live_platform_factory(DEMO_PLATFORM)

    def close(self) -> None:
        """Release the feed's probe worker pool (if any)."""
        self.feed.close()

    def __enter__(self) -> "StarMetrologyDemo":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @classmethod
    def for_run(cls, n_hosts: int, period: float, seed: int,
                warmup: int, steps: int, degrade_link: int = 1,
                degrade_factor: float = 0.3, **kwargs) -> "StarMetrologyDemo":
        """A demo whose degradation fires about a third into the measured
        run — after ``warmup`` healthy polls (keep ``warmup`` at or above
        the loop's ``min_observations`` so references anchor healthy)."""
        degrade_at = (warmup + max(1, steps // 3)) * period
        return cls(n_hosts=n_hosts, period=period, seed=seed,
                   degrade_link=degrade_link, degrade_factor=degrade_factor,
                   degrade_at=degrade_at, **kwargs)

    # -- driving -----------------------------------------------------------

    def step(self) -> list:
        """One loop iteration: advance the real world, probe, recalibrate."""
        self.schedule.advance(self.feed.next_deadline())
        if self.sensor_drift:
            self.feed.scale_bandwidth_sensors(1.0 - self.sensor_drift)
        return self.loop.step()

    def run(self, steps: int) -> list:
        applied = []
        for _ in range(steps):
            applied.extend(self.step())
        return applied

    def warmup(self, cycles: int = 3) -> None:
        """Anchor every link's reference estimate while links are healthy."""
        for _ in range(cycles):
            if self.schedule.advance(self.feed.next_deadline()):
                raise MetrologyError(
                    "degradation fired during warm-up; raise degrade_at"
                )
            self.loop.step()

    # -- evaluation --------------------------------------------------------

    def workload(self, size: float = 2e8) -> list[tuple[str, str, float]]:
        """Transfers bottlenecked by the degraded link (plus one control)."""
        hosts = [f"{STAR_NAME}-{i}" for i in range(1, self.n_hosts + 1)]
        degraded = hosts[int(self.degraded_link.split("-")[1]) - 1]
        others = [h for h in hosts if h != degraded]
        transfers = [(degraded, others[0], size)]
        if len(others) >= 2:
            transfers.append((others[-2], others[-1], size))
        return transfers

    def measure(self, transfers: list[tuple[str, str, float]],
                seed_salt: int = 0) -> list[float]:
        """Ground-truth durations on the testbed in its *current* state."""
        measured = run_transfers(self.testbed, transfers,
                                 seed=self.seed + 7919 * (seed_salt + 1))
        return [m.duration for m in measured]

    def evaluate_step(self, serving, transfers, seed_salt: int = 0,
                      ) -> StepEvaluation:
        """Score recalibrated-vs-static forecasts against ground truth, at
        the demo's current state.

        ``serving`` is anything answering ``predict(platform, transfers)``
        with the *live* (recalibrated) platform — typically a
        :class:`~repro.serving.service.ForecastServingService` over
        :attr:`service`.  The static baseline answers from
        :attr:`static_service` directly.  This is the single scoring path
        the CLI, the metrology bench and the tier-1 smoke check share.
        """
        from repro._util.stats import median
        from repro.analysis.errors import log2_error

        recalibrated = serving.predict(DEMO_PLATFORM, transfers)
        static = self.static_service.predict_transfers(DEMO_PLATFORM,
                                                       transfers)
        truth = self.measure(transfers, seed_salt=seed_salt)
        return StepEvaluation(
            time=self.feed.clock,
            true_factor=self.schedule.true_factor(self.degraded_link),
            epoch=self.loop.epoch,
            err_recalibrated=median([abs(log2_error(f.duration, m))
                                     for f, m in zip(recalibrated, truth)]),
            err_static=median([abs(log2_error(f.duration, m))
                               for f, m in zip(static, truth)]),
        )

    # -- recording ---------------------------------------------------------

    def _metric_traces(self, metric: str) -> list[MeasuredTrace]:
        """One metric's RRD series as platform-unit traces for replay.

        Each link's series is fetched through the §IV-C1 contract and
        rescaled from probe units to platform units against a healthy
        reference — the median of the first (up to) three samples, probes
        taken while links were healthy, mirroring the live loop's
        ``min_observations`` anchoring so one noisy first probe cannot
        skew the whole trace.  Goodput rescales *multiplicatively* (probe
        overhead is proportional); RTT rescales *additively*
        (``L = nominal + (rtt − rtt_ref) / 2`` — an RTT is twice the path
        latency plus constant stack overhead, so a ratio would dilute
        every latency change against that overhead).
        """
        from repro._util.stats import median

        traces = []
        for monitor in self.feed.monitors:
            series = self.feed.rrd(monitor.link, metric).fetch(
                0.0, self.feed.clock)
            if not series:
                continue
            link = self.static_platform.link(monitor.link)
            reference = median([value for _, value in series[:3]])
            if metric == "bandwidth":
                samples = tuple(
                    (ts, link.bandwidth * value / reference)
                    for ts, value in series
                )
            else:
                samples = tuple(
                    (ts, max(0.0, link.latency + 0.5 * (value - reference)))
                    for ts, value in series
                )
            traces.append(MeasuredTrace(link=monitor.link, metric=metric,
                                        samples=samples))
        return traces

    def measured_traces(self) -> list[MeasuredTrace]:
        """Recorded bandwidth series as platform traces for replay."""
        return self._metric_traces("bandwidth")

    def combined_traces(self) -> list[MeasuredTrace]:
        """Bandwidth *and* latency traces, one pair per monitored link.

        The latency series comes from the feed's smokeping-style RTT
        probes, rescaled to platform link latency relative to the healthy
        reference — replaying the combined document calibrates both link
        parameters from real series (the paper's §VI future work).
        """
        return self._metric_traces("bandwidth") + self._metric_traces("latency")
