"""Smokeping-like latency prober over the testbed.

Measures RTTs between node pairs (with sub-percent jitter, as ICMP probes
would see) and records them into the metric registry under the ``smokeping``
tool name.  This is the measurement source the paper's future-work plans to
use for "automatic link latency measurements instead of arbitrary values"
(§VI); :mod:`repro.core.latency_feed` consumes it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro._util.rng import rng_for
from repro.metrology.collectors import GangliaCollector, MetricKey, MetricRegistry
from repro.testbed.fluid import TestbedNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.spec import MeasuredTrace


class LatencyProber:
    """Periodically measures RTTs of configured node pairs."""

    def __init__(
        self,
        network: TestbedNetwork,
        registry: MetricRegistry,
        period: float = 30.0,
        jitter: float = 0.03,
        seed: int = 0,
    ) -> None:
        self.network = network
        self.collector = GangliaCollector(registry, period=period)
        self.jitter = jitter
        self.seed = seed
        self._pairs: list[tuple[str, str]] = []

    @staticmethod
    def metric_key(src: str, dst: str) -> MetricKey:
        site = src.split(".")[1] if "." in src else "local"
        return MetricKey("smokeping", site, src, f"rtt_to_{dst}")

    def add_pair(self, src: str, dst: str) -> MetricKey:
        """Probe ``src → dst`` each period; returns the metric key."""
        base_rtt = self.network.rtt(src, dst)  # validates the pair
        del base_rtt
        key = self.metric_key(src, dst)
        index = len(self._pairs)
        rng = rng_for(self.seed, "ping", index)

        def probe(t: float) -> float:
            rtt = self.network.rtt(src, dst)
            return rtt * float(1.0 + rng.normal(0.0, self.jitter))

        self.collector.register(key, probe, kind="GAUGE")
        self._pairs.append((src, dst))
        return key

    def probe_for(self, duration: float) -> int:
        """Run probe cycles covering ``duration`` seconds; returns cycles."""
        return self.collector.collect_until(self.collector._clock + duration)

    def measured_rtt(self, src: str, dst: str) -> float:
        """Median of the recorded RTT series for the pair."""
        from repro._util.stats import median

        key = self.metric_key(src, dst)
        rrd = self.collector.registry.get(key)
        series = rrd.fetch(0.0, rrd.last_update)
        if not series:
            raise ValueError(f"no probe data yet for {src!r} -> {dst!r}")
        return median([v for _, v in series])

    def measured_trace(
        self,
        src: str,
        dst: str,
        link: str,
        nominal_latency: Optional[float] = None,
    ) -> "MeasuredTrace":
        """The pair's recorded RTT series as a replayable latency trace.

        This is the future-work half of §VI made concrete: smokeping series
        become :class:`~repro.scenarios.spec.MeasuredTrace` latency
        dynamics, so a replay calibrates link latency from *real* probe
        series instead of arbitrary values.  ``link`` is the platform link
        pattern the trace targets.  With ``nominal_latency`` each RTT is
        converted to a link latency against the series' first sample
        (``L = nominal + (rtt − rtt_ref) / 2`` — an RTT is twice the path
        latency plus constant stack overhead, which a ratio would dilute
        every change against); without it the raw RTT values replay as-is.
        """
        from repro.scenarios.spec import MeasuredTrace

        key = self.metric_key(src, dst)
        rrd = self.collector.registry.get(key)
        series = rrd.fetch(0.0, rrd.last_update)
        if not series:
            raise ValueError(f"no probe data yet for {src!r} -> {dst!r}")
        if nominal_latency is not None:
            reference = series[0][1]
            samples = tuple(
                (ts, max(0.0, nominal_latency + 0.5 * (value - reference)))
                for ts, value in series
            )
        else:
            samples = tuple(series)
        return MeasuredTrace(link=link, metric="latency", samples=samples)
