"""Metric registry and collectors.

A :class:`MetricRegistry` is the on-disk layout of a metrology deployment:
``(tool, site, host, metric)`` → RRD, mirroring the URI scheme of the
paper's example request (``/pilgrim/rrd/ganglia/Lyon/sagittaire-1…/pdu.rrd``).
A :class:`GangliaCollector` polls registered metric sources on its period
and updates the RRDs, like gmetad writing Ganglia's round-robin files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.rrd.database import DataSourceSpec, RoundRobinDatabase


class MetrologyError(Exception):
    """Unknown metric or inconsistent collector configuration."""


@dataclass(frozen=True, order=True)
class MetricKey:
    """Identity of one time-series, matching the service URI layout."""

    tool: str
    site: str
    host: str
    metric: str  # e.g. "pdu" for the paper's power-consumption example

    @property
    def rrd_name(self) -> str:
        return f"{self.metric}.rrd"

    def path(self) -> str:
        return f"{self.tool}/{self.site}/{self.host}/{self.rrd_name}"


class MetricRegistry:
    """All RRDs of a metrology deployment, addressable by :class:`MetricKey`."""

    def __init__(self) -> None:
        self._rrds: dict[MetricKey, RoundRobinDatabase] = {}

    def create(
        self,
        key: MetricKey,
        kind: str = "GAUGE",
        step: float = 15.0,
        heartbeat: Optional[float] = None,
        start_time: float = 0.0,
        rras: Optional[tuple] = None,
    ) -> RoundRobinDatabase:
        """Register a new RRD; ``rras`` overrides the default archive
        ladder (e.g. a short fine archive for downtime-recovery tests)."""
        if key in self._rrds:
            raise MetrologyError(f"metric {key.path()!r} already exists")
        ds = DataSourceSpec(
            name=key.metric,
            kind=kind,
            heartbeat=heartbeat if heartbeat is not None else step * 2.5,
        )
        extra = {"rras": tuple(rras)} if rras is not None else {}
        rrd = RoundRobinDatabase(ds, step=step, start_time=start_time, **extra)
        self._rrds[key] = rrd
        return rrd

    def get(self, key: MetricKey) -> RoundRobinDatabase:
        try:
            return self._rrds[key]
        except KeyError:
            raise MetrologyError(f"unknown metric {key.path()!r}") from None

    def lookup(self, tool: str, site: str, host: str, metric: str) -> RoundRobinDatabase:
        return self.get(MetricKey(tool, site, host, metric))

    def keys(self) -> list[MetricKey]:
        return sorted(self._rrds)

    def __contains__(self, key: MetricKey) -> bool:
        return key in self._rrds

    def __len__(self) -> int:
        return len(self._rrds)


class GangliaCollector:
    """Polls metric sources on a fixed period into the registry's RRDs.

    ``sources`` map a :class:`MetricKey` to a callable ``time -> value``.
    Collection is driven explicitly (:meth:`collect_until`) with a simulated
    clock, keeping the whole reproduction deterministic.
    """

    def __init__(self, registry: MetricRegistry, period: float = 15.0) -> None:
        if period <= 0:
            raise MetrologyError("period must be positive")
        self.registry = registry
        self.period = period
        self._sources: dict[MetricKey, Callable[[float], float]] = {}
        self._clock = 0.0

    def register(
        self,
        key: MetricKey,
        source: Callable[[float], float],
        kind: str = "GAUGE",
    ) -> None:
        """Attach a source; creates the metric's RRD if missing."""
        if key not in self.registry:
            self.registry.create(key, kind=kind, step=self.period)
        self._sources[key] = source

    def collect_once(self) -> float:
        """One poll cycle; returns the poll timestamp."""
        self._clock += self.period
        for key, source in self._sources.items():
            value = float(source(self._clock))
            self.registry.get(key).update(self._clock, value)
        return self._clock

    def collect_until(self, end_time: float) -> int:
        """Poll repeatedly until the clock passes ``end_time``; returns the
        number of cycles performed."""
        cycles = 0
        while self._clock + self.period <= end_time:
            self.collect_once()
            cycles += 1
        return cycles
