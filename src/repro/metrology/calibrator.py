"""Turning per-link measurement series into link parameter estimates.

A :class:`LinkCalibrator` consumes the RRD series a
:class:`~repro.metrology.feed.MetrologyFeed` records and runs one
:class:`~repro.nws.forecaster.AdaptiveForecaster` per link metric over
them.  Every :meth:`estimates` call fetches the measurement window that
arrived since the previous call (the §IV-C1 fetch contract: the finest
retained data for the span), feeds the new points to the forecasters and
returns one :class:`LinkEstimate` per monitored link.

Estimates are *measured end-to-end* quantities (probe goodput, probe RTT),
not raw link parameters: probes pay startup overhead and TCP ramp, so their
absolute level sits below the link's nominal capacity.  The consumer
(:class:`~repro.metrology.loop.RecalibrationLoop`) therefore recalibrates
in relative terms against each link's first warm estimate.  A cold series
(no usable probe yet) yields ``None`` fields — the explicit cold-start
contract, no exceptions on the polling path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.metrology.collectors import MetricRegistry, MetrologyError
from repro.metrology.feed import MetrologyFeed
from repro.nws.forecaster import AdaptiveForecaster


@dataclass(frozen=True)
class LinkEstimate:
    """Current measured state of one link (``None`` = series still cold)."""

    link: str
    #: Forecast probe goodput, bytes/s.
    bandwidth: Optional[float]
    #: Forecast probe round-trip time, seconds.
    rtt: Optional[float]
    #: Clock at which the estimate was produced.
    time: float

    @property
    def ready(self) -> bool:
        return self.bandwidth is not None


class LinkCalibrator:
    """Per-link adaptive forecasters over the feed's RRD series."""

    #: The two metric series the feed records per link.
    METRICS = ("bandwidth", "latency")

    def __init__(self, registry: MetricRegistry, links: Sequence[str]) -> None:
        if not links:
            raise MetrologyError("at least one link is required")
        self.registry = registry
        self.links = tuple(links)
        self._forecasters: dict[tuple[str, str], AdaptiveForecaster] = {
            (link, metric): AdaptiveForecaster()
            for link in self.links
            for metric in self.METRICS
        }
        #: newest RRD timestamp already consumed, per (link, metric)
        self._consumed: dict[tuple[str, str], float] = {
            key: 0.0 for key in self._forecasters
        }

    @classmethod
    def for_feed(cls, feed: MetrologyFeed) -> "LinkCalibrator":
        return cls(feed.registry, [m.link for m in feed.monitors])

    def _refresh(self, link: str, metric: str, now: float) -> None:
        """Consume the RRD window since the last refresh, span-aware.

        The §IV-C1 fetch serves each time segment from the finest archive
        retaining it, so after a long downtime the window mixes coarse
        CDPs (old history the fine archive aged out of) with fine recent
        points.  Replaying that mix one-update-per-point would weight a
        144-step average like a single probe; instead each point is
        replayed with the step count its span covers, in time order —
        the coarse average stands in for the samples it consolidated.
        """
        key = (link, metric)
        rrd = self.registry.get(MetrologyFeed.metric_key(link, metric))
        spans = rrd.fetch_spans(self._consumed[key], now)
        forecaster = self._forecasters[key]
        for start, end, value in spans:  # sorted by (end, start)
            if math.isnan(value):
                self._consumed[key] = max(self._consumed[key], end)
                continue
            weight = max(1, int(round((end - start) / rrd.step)))
            forecaster.update(value, weight=weight)
            self._consumed[key] = max(self._consumed[key], end)

    def estimate(self, link: str, now: float) -> LinkEstimate:
        """The link's current estimate after consuming samples up to ``now``."""
        if link not in self.links:
            raise MetrologyError(f"link {link!r} is not calibrated")
        for metric in self.METRICS:
            self._refresh(link, metric, now)
        return LinkEstimate(
            link=link,
            bandwidth=self._forecasters[(link, "bandwidth")].forecast(default=None),
            rtt=self._forecasters[(link, "latency")].forecast(default=None),
            time=now,
        )

    def estimates(self, now: float) -> list[LinkEstimate]:
        """One estimate per calibrated link, in registration order."""
        return [self.estimate(link, now) for link in self.links]

    def observations(self, link: str, metric: str = "bandwidth") -> int:
        """Samples consumed so far for one series (introspection)."""
        return self._forecasters[(link, metric)].observations
