"""Programmatic platform builders for common topologies.

These mirror the helper tags of SimGrid platform files (``<cluster>``, …) and
are used throughout the tests, the examples and the Grid'5000 converter:

- :func:`build_star_cluster` — N hosts, one private link each, one central
  router (sagittaire-like flat cluster),
- :func:`build_grouped_cluster` — hosts split into groups behind aggregation
  routers with uplinks to a core router (graphene-like),
- :func:`build_dumbbell` — two host sets around one bottleneck link,
- :func:`build_two_level_grid` — several cluster ASes joined by backbone
  links through gateways,
- :func:`build_fat_tree` — a k-ary fat tree (edge/aggregation/core layers),
- :func:`build_torus` — an n-dimensional torus with wraparound neighbor links,
- :func:`build_dragonfly` — router groups with all-to-all local and global
  links.

The fat-tree, torus and dragonfly builders declare only their adjacency and
rely on Dijkstra routing (shortest path by latency, ties broken by hop count),
so their route tables stay linear in the link count.  All builders are
registered behind one name in :mod:`repro.scenarios.topologies`.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.simgrid.platform import (
    AutonomousSystem,
    Direction,
    Link,
    LinkUse,
    Platform,
    SharingPolicy,
)


def add_star_cluster(
    parent: AutonomousSystem | Platform,
    name: str,
    n_hosts: int,
    host_bandwidth: float | str = "1Gbps",
    host_latency: float | str = "100us",
    host_speed: float = 1e9,
    host_policy: SharingPolicy = SharingPolicy.FULLDUPLEX,
    prefix: Optional[str] = None,
    router_name: Optional[str] = None,
    routing: str = "Full",
) -> AutonomousSystem:
    """Add a flat star cluster as a child AS of ``parent``.

    Creates hosts ``{prefix}-1 … {prefix}-n`` each connected by a private
    link to the cluster router (which is the AS's default gateway).  With
    ``routing="Dijkstra"`` only the star adjacency is declared and host↔host
    routes derive automatically (linear table instead of quadratic).
    """
    root = parent.root if isinstance(parent, Platform) else parent
    prefix = prefix or name
    cluster = AutonomousSystem(f"AS_{name}", routing=routing)
    router = f"{router_name or f'{name}-router'}"
    root.add_child(cluster, gateway=router)
    cluster.add_router(router)
    for i in range(1, n_hosts + 1):
        host = cluster.add_host(f"{prefix}-{i}", speed=host_speed)
        link = cluster.add_link(
            f"{prefix}-{i}-link", host_bandwidth, host_latency, policy=host_policy
        )
        if routing == "Dijkstra":
            cluster.add_connection(host.name, router, link)
        else:
            cluster.add_route(host.name, router, [link])
    return cluster


def add_grouped_cluster(
    parent: AutonomousSystem | Platform,
    name: str,
    group_sizes: Sequence[int],
    host_bandwidth: float | str = "1Gbps",
    host_latency: float | str = "100us",
    uplink_bandwidth: float | str = "10Gbps",
    uplink_latency: float | str = "100us",
    uplink_policy: SharingPolicy = SharingPolicy.SHARED,
    host_policy: SharingPolicy = SharingPolicy.FULLDUPLEX,
    host_speed: float = 1e9,
    prefix: Optional[str] = None,
) -> AutonomousSystem:
    """Add a hierarchical cluster: hosts in groups behind aggregation routers.

    Host numbering is contiguous across groups (graphene-style: group 1 holds
    ``prefix-1..39``, group 2 ``prefix-40..74``, …).  Each group's aggregation
    router connects to the cluster core router through one uplink whose
    sharing policy is configurable — the paper's ``g5k_test`` platform models
    these as single ``SHARED`` links (see DESIGN.md §3).
    """
    root = parent.root if isinstance(parent, Platform) else parent
    prefix = prefix or name
    cluster = AutonomousSystem(f"AS_{name}", routing="Full")
    core = f"{name}-router"
    root.add_child(cluster, gateway=core)
    cluster.add_router(core)
    host_index = 1
    for g, size in enumerate(group_sizes, start=1):
        agg = cluster.add_router(f"{name}-agg{g}")
        uplink = cluster.add_link(
            f"{name}-uplink{g}", uplink_bandwidth, uplink_latency, policy=uplink_policy
        )
        cluster.add_route(agg.name, core, [uplink])
        for _ in range(size):
            host = cluster.add_host(f"{prefix}-{host_index}", speed=host_speed)
            link = cluster.add_link(
                f"{prefix}-{host_index}-link",
                host_bandwidth,
                host_latency,
                policy=host_policy,
            )
            cluster.add_route(host.name, agg.name, [link])
            cluster.add_route(host.name, core, [LinkUse(link, Direction.UP),
                                                LinkUse(uplink, Direction.UP)])
            host_index += 1
    # host <-> host routes across groups go through the core; within a group
    # through the aggregation router only.
    hosts_by_group: list[list[str]] = []
    host_index = 1
    for size in group_sizes:
        hosts_by_group.append([f"{prefix}-{i}" for i in range(host_index, host_index + size)])
        host_index += size
    for gi, group in enumerate(hosts_by_group):
        for hi, a in enumerate(group):
            # intra-group pairs (declare once; symmetrical fills the reverse)
            for b in group[hi + 1:]:
                cluster.add_route(a, b, [
                    LinkUse(cluster.links[f"{a}-link"], Direction.UP),
                    LinkUse(cluster.links[f"{b}-link"], Direction.DOWN),
                ])
            # inter-group pairs
            for gj in range(gi + 1, len(hosts_by_group)):
                for b in hosts_by_group[gj]:
                    cluster.add_route(a, b, [
                        LinkUse(cluster.links[f"{a}-link"], Direction.UP),
                        LinkUse(cluster.links[f"{name}-uplink{gi + 1}"], Direction.UP),
                        LinkUse(cluster.links[f"{name}-uplink{gj + 1}"], Direction.DOWN),
                        LinkUse(cluster.links[f"{b}-link"], Direction.DOWN),
                    ])
    return cluster


def intra_cluster_routes(cluster: AutonomousSystem, router: str, hosts: Sequence[str]) -> None:
    """Declare host↔host routes inside a star cluster through its router.

    For star clusters built by :func:`add_star_cluster` the hierarchical
    resolver already stitches host→router→host implicitly when the two hosts
    are in *different* ASes; for two hosts of the *same* AS a direct route is
    needed — this declares them all (quadratic, only for small clusters or
    tests)."""
    for i, a in enumerate(hosts):
        for b in hosts[i + 1:]:
            cluster.add_route(a, b, [
                LinkUse(cluster.links[f"{a}-link"], Direction.UP),
                LinkUse(cluster.links[f"{b}-link"], Direction.DOWN),
            ])


def build_star_cluster(
    name: str,
    n_hosts: int,
    host_bandwidth: float | str = "1Gbps",
    host_latency: float | str = "100us",
    full_mesh: bool = True,
    **kwargs,
) -> Platform:
    """A standalone platform holding a single star cluster.

    With ``full_mesh`` (default) all host↔host routes are declared so the
    platform is immediately usable for any-to-any transfers.
    """
    platform = Platform(f"{name}-platform", routing="Full")
    cluster = add_star_cluster(
        platform, name, n_hosts, host_bandwidth, host_latency, **kwargs
    )
    if full_mesh:
        hosts = sorted(cluster.netpoints)
        prefix = kwargs.get("prefix") or name
        host_names = [f"{prefix}-{i}" for i in range(1, n_hosts + 1)]
        intra_cluster_routes(cluster, f"{name}-router", host_names)
    return platform


def build_dumbbell(
    n_left: int = 2,
    n_right: int = 2,
    bottleneck_bandwidth: float | str = "1Gbps",
    bottleneck_latency: float | str = "1ms",
    edge_bandwidth: float | str = "10Gbps",
    edge_latency: float | str = "50us",
    bottleneck_policy: SharingPolicy = SharingPolicy.SHARED,
) -> Platform:
    """Classic dumbbell: ``left-i`` hosts and ``right-j`` hosts around one
    bottleneck link between two routers."""
    platform = Platform("dumbbell", routing="Full")
    root = platform.root
    rl = root.add_router("router-left")
    rr = root.add_router("router-right")
    bottleneck = root.add_link(
        "bottleneck", bottleneck_bandwidth, bottleneck_latency, policy=bottleneck_policy
    )
    root.add_route(rl.name, rr.name, [bottleneck])
    lefts, rights = [], []
    for i in range(1, n_left + 1):
        host = root.add_host(f"left-{i}")
        link = root.add_link(f"left-{i}-link", edge_bandwidth, edge_latency,
                             policy=SharingPolicy.FULLDUPLEX)
        root.add_route(host.name, rl.name, [link])
        lefts.append((host, link))
    for j in range(1, n_right + 1):
        host = root.add_host(f"right-{j}")
        link = root.add_link(f"right-{j}-link", edge_bandwidth, edge_latency,
                             policy=SharingPolicy.FULLDUPLEX)
        root.add_route(host.name, rr.name, [link])
        rights.append((host, link))
    for lh, ll in lefts:
        for rh, rl_link in rights:
            root.add_route(lh.name, rh.name, [
                LinkUse(ll, Direction.UP),
                LinkUse(bottleneck, Direction.UP),
                LinkUse(rl_link, Direction.DOWN),
            ])
    # left-left and right-right pairs through their local router
    for idx, (lh, ll) in enumerate(lefts):
        for lh2, ll2 in lefts[idx + 1:]:
            root.add_route(lh.name, lh2.name, [
                LinkUse(ll, Direction.UP), LinkUse(ll2, Direction.DOWN)])
    for idx, (rh, rlk) in enumerate(rights):
        for rh2, rlk2 in rights[idx + 1:]:
            root.add_route(rh.name, rh2.name, [
                LinkUse(rlk, Direction.UP), LinkUse(rlk2, Direction.DOWN)])
    return platform


def build_two_level_grid(
    site_specs: dict[str, int],
    backbone_bandwidth: float | str = "10Gbps",
    backbone_latency: float | str = "2.25ms",
    host_bandwidth: float | str = "1Gbps",
    host_latency: float | str = "100us",
    backbone_policy: SharingPolicy = SharingPolicy.FULLDUPLEX,
    site_routing: str = "Full",
) -> Platform:
    """A grid of star-cluster sites joined pairwise by backbone links.

    ``site_specs`` maps site name → host count.  Produces a hierarchical
    platform (one AS per site) with full-mesh inter-site ASroutes, the shape
    the paper's Grid'5000 model uses (one AS per site, §IV-C2).  With
    ``site_routing="Dijkstra"`` sites declare only their star adjacency —
    the compact representation AS routing enables.
    """
    platform = Platform("grid", routing="Full")
    root = platform.root
    sites = list(site_specs)
    for site, count in site_specs.items():
        cluster = add_star_cluster(
            platform, site, count, host_bandwidth, host_latency,
            routing=site_routing,
        )
        if site_routing == "Full":
            intra_cluster_routes(
                cluster, f"{site}-router",
                [f"{site}-{i}" for i in range(1, count + 1)],
            )
    for i, a in enumerate(sites):
        for b in sites[i + 1:]:
            bb = root.add_link(f"bb-{a}-{b}", backbone_bandwidth, backbone_latency,
                               policy=backbone_policy)
            root.add_route(f"AS_{a}", f"AS_{b}", [bb])
    return platform


def build_fat_tree(
    k: int = 4,
    host_bandwidth: float | str = "1Gbps",
    host_latency: float | str = "100us",
    switch_bandwidth: float | str = "10Gbps",
    switch_latency: float | str = "100us",
    host_speed: float = 1e9,
    prefix: str = "ft",
    switch_policy: SharingPolicy = SharingPolicy.FULLDUPLEX,
) -> Platform:
    """A k-ary fat tree (Al-Fares et al. shape): ``k`` pods of ``k/2`` edge
    and ``k/2`` aggregation switches, ``(k/2)²`` core switches, ``k³/4``
    hosts.

    Edge switch ``e`` of each pod serves ``k/2`` hosts; aggregation switch
    ``a`` of each pod uplinks to core group ``a`` (cores
    ``a·k/2 … a·k/2+k/2−1``).  Routes derive from the adjacency via Dijkstra
    (equal switch latencies ⇒ minimal-hop paths), so the route table is
    linear in the link count instead of quadratic in hosts.
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat tree arity must be even and >= 2, got {k}")
    half = k // 2
    platform = Platform(f"{prefix}-platform", routing="Dijkstra")
    root = platform.root
    cores = [root.add_router(f"{prefix}-core-{c}") for c in range(half * half)]
    host_index = 1
    for pod in range(k):
        aggs = [root.add_router(f"{prefix}-p{pod}-agg-{a}") for a in range(half)]
        edges = [root.add_router(f"{prefix}-p{pod}-edge-{e}") for e in range(half)]
        for a, agg in enumerate(aggs):
            for c in range(half):
                core = cores[a * half + c]
                link = root.add_link(
                    f"{prefix}-p{pod}-a{a}-c{a * half + c}",
                    switch_bandwidth, switch_latency, policy=switch_policy,
                )
                root.add_connection(agg.name, core.name, link)
        for e, edge in enumerate(edges):
            for a, agg in enumerate(aggs):
                link = root.add_link(
                    f"{prefix}-p{pod}-e{e}-a{a}",
                    switch_bandwidth, switch_latency, policy=switch_policy,
                )
                root.add_connection(edge.name, agg.name, link)
            for _ in range(half):
                host = root.add_host(f"{prefix}-{host_index}", speed=host_speed)
                link = root.add_link(
                    f"{prefix}-{host_index}-link", host_bandwidth, host_latency,
                    policy=SharingPolicy.FULLDUPLEX,
                )
                root.add_connection(host.name, edge.name, link)
                host_index += 1
    return platform


def build_torus(
    dims: Sequence[int] = (4, 4),
    link_bandwidth: float | str = "10Gbps",
    link_latency: float | str = "50us",
    host_speed: float = 1e9,
    prefix: str = "torus",
    link_policy: SharingPolicy = SharingPolicy.FULLDUPLEX,
) -> Platform:
    """An n-dimensional torus of hosts: every grid point is a host connected
    to its ``+1`` neighbor (with wraparound) in each dimension.

    Hosts are named ``{prefix}-i-j[-k…]`` from their coordinates.  For a
    dimension of size 2 the wraparound link would duplicate the forward one,
    so only a single link is created.  Dijkstra routing finds minimal-latency
    (= minimal-hop for uniform links) paths.
    """
    dims = tuple(int(d) for d in dims)
    if not dims or any(d < 2 for d in dims):
        raise ValueError(f"torus dimensions must all be >= 2, got {dims}")
    platform = Platform(f"{prefix}-platform", routing="Dijkstra")
    root = platform.root

    def host_name(coord: tuple[int, ...]) -> str:
        return f"{prefix}-" + "-".join(str(c) for c in coord)

    coords = list(itertools.product(*(range(d) for d in dims)))
    for coord in coords:
        root.add_host(host_name(coord), speed=host_speed)
    for coord in coords:
        for axis, size in enumerate(dims):
            if size == 2 and coord[axis] == 1:
                continue  # wraparound would duplicate the 0->1 link
            neighbor = list(coord)
            neighbor[axis] = (coord[axis] + 1) % size
            neighbor = tuple(neighbor)
            link = root.add_link(
                f"{prefix}-{'-'.join(map(str, coord))}-d{axis}",
                link_bandwidth, link_latency, policy=link_policy,
            )
            root.add_connection(host_name(coord), host_name(neighbor), link)
    return platform


def build_dragonfly(
    n_groups: int = 4,
    routers_per_group: int = 3,
    hosts_per_router: int = 2,
    host_bandwidth: float | str = "1Gbps",
    host_latency: float | str = "100us",
    local_bandwidth: float | str = "10Gbps",
    local_latency: float | str = "50us",
    global_bandwidth: float | str = "10Gbps",
    global_latency: float | str = "500us",
    host_speed: float = 1e9,
    prefix: str = "dfly",
) -> Platform:
    """A dragonfly: groups of all-to-all connected routers, each router
    serving ``hosts_per_router`` hosts, every group pair joined by one global
    link whose endpoints rotate over the group's routers.

    The canonical Cray-style topology (Kim et al. 2008): minimal routes are
    host → local router [→ local link] → global link [→ local link] → host,
    which Dijkstra recovers because global links carry the long latency.
    """
    if n_groups < 2 or routers_per_group < 1 or hosts_per_router < 1:
        raise ValueError(
            f"dragonfly needs >= 2 groups and >= 1 router/host per level, got "
            f"({n_groups}, {routers_per_group}, {hosts_per_router})"
        )
    platform = Platform(f"{prefix}-platform", routing="Dijkstra")
    root = platform.root
    routers: list[list] = []
    host_index = 1
    for g in range(n_groups):
        group = [root.add_router(f"{prefix}-g{g}-r{r}")
                 for r in range(routers_per_group)]
        routers.append(group)
        for router in group:
            for _ in range(hosts_per_router):
                host = root.add_host(f"{prefix}-{host_index}", speed=host_speed)
                link = root.add_link(
                    f"{prefix}-{host_index}-link", host_bandwidth, host_latency,
                    policy=SharingPolicy.FULLDUPLEX,
                )
                root.add_connection(host.name, router.name, link)
                host_index += 1
        for a, b in itertools.combinations(range(routers_per_group), 2):
            link = root.add_link(
                f"{prefix}-g{g}-local-{a}-{b}", local_bandwidth, local_latency,
                policy=SharingPolicy.FULLDUPLEX,
            )
            root.add_connection(group[a].name, group[b].name, link)
    # one global link per group pair; endpoint routers rotate round-robin so
    # the global links spread over each group's routers
    out_port = [0] * n_groups
    for a, b in itertools.combinations(range(n_groups), 2):
        ra = routers[a][out_port[a] % routers_per_group]
        rb = routers[b][out_port[b] % routers_per_group]
        out_port[a] += 1
        out_port[b] += 1
        link = root.add_link(
            f"{prefix}-global-{a}-{b}", global_bandwidth, global_latency,
            policy=SharingPolicy.FULLDUPLEX,
        )
        root.add_connection(ra.name, rb.name, link)
    return platform
