"""Simulation event traces.

A :class:`Trace` collects timestamped kernel events (activity starts/ends)
for debugging, tests and the examples.  Records are plain dicts so they can
be dumped to JSON without conversion.
"""

from __future__ import annotations

from typing import Iterator


class Trace:
    """An append-only list of timestamped simulation events."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def record(self, time: float, kind: str, **fields: object) -> None:
        event = {"time": time, "kind": kind}
        event.update(fields)
        self.events.append(event)

    def of_kind(self, kind: str) -> list[dict]:
        return [e for e in self.events if e["kind"] == kind]

    def __iter__(self) -> Iterator[dict]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
