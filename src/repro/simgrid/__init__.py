"""Flow-level network simulator (SimGrid rebuilt from scratch).

This subpackage re-implements, in pure Python, the parts of SimGrid the paper
relies on:

- a platform description model with hierarchical Autonomous Systems
  (:mod:`repro.simgrid.platform`, :mod:`repro.simgrid.routing`),
- the RTT-aware bounded max-min bandwidth-sharing solver
  (:mod:`repro.simgrid.maxmin`),
- a pluggable sharing-model layer — the CM02 / LV08 flow-level TCP network
  models with their published correction factors and the ``TCP_gamma``
  window cap, behind a named registry (:mod:`repro.simgrid.models`) —
  plus the congestion-aware time-varying ``tcp_fluid`` variant
  (:mod:`repro.simgrid.tcpfluid`),
- a discrete-event simulation kernel driving communication and computation
  activities (:mod:`repro.simgrid.engine`, :mod:`repro.simgrid.activities`),
- an MSG-like process API built on generator coroutines
  (:mod:`repro.simgrid.msg`),
- SimGrid-flavoured XML platform input/output (:mod:`repro.simgrid.xml_io`).

The terminology (hosts, links, AS, gateways, ``SHARED``/``FATPIPE`` sharing
policies, latency/bandwidth factors, ``weight_S``) intentionally follows
SimGrid's so that the reproduction can be read side by side with the paper and
with Velho & Legrand (2009) / Bobelin et al. (2011).
"""

from repro.simgrid.platform import (
    AutonomousSystem,
    Direction,
    Host,
    Link,
    LinkUse,
    Platform,
    RouteCache,
    Router,
    SharingPolicy,
)
from repro.simgrid.models import (
    CM02,
    LV08,
    NetworkModel,
    SharingModel,
    model_by_name,
    model_key_of,
    model_names,
    register_model,
    registered_models,
)
from repro.simgrid.tcpfluid import TcpFluidModel
from repro.simgrid.engine import Simulation
from repro.simgrid.maxmin import MaxMinSystem, SharingSystem

__all__ = [
    "AutonomousSystem",
    "Direction",
    "Host",
    "Link",
    "LinkUse",
    "Platform",
    "RouteCache",
    "Router",
    "SharingPolicy",
    "NetworkModel",
    "SharingModel",
    "TcpFluidModel",
    "CM02",
    "LV08",
    "model_by_name",
    "model_key_of",
    "model_names",
    "register_model",
    "registered_models",
    "Simulation",
    "MaxMinSystem",
    "SharingSystem",
]
