"""The congestion-aware TCP-fluid sharing model (time-varying weights).

Where CM02/LV08 are *static* — a flow's fairness weight and rate bound are
fixed for its whole lifetime — this model drives each flow through the same
congestion-window state machine the synthetic testbed runs
(:mod:`repro.testbed.tcp`: classic slow start with delayed-ACK growth, then
CUBIC; HyStart disabled, 4 MiB maximum windows):

1. **handshake** — one RTT of startup latency before data flows,
2. **ramp** — the flow's rate bound is ``cwnd / RTT``, re-evaluated every
   RTT on an engine round timer; a round whose allocated rate fell short of
   the window rate means the window overshot the achievable share — the
   queue dropped: one multiplicative decrease (CUBIC β), and the flow is
3. **steady** — capacity-limited, bounded by ``max_window / RTT``.

RTT-unfairness comes from the fairness weight: it *is* the route RTT, so a
saturated constraint splits its capacity proportionally to ``1/RTT`` —
exactly the testbed allocator's weighting.  The model is pinned against
``testbed/fluid.py`` on star/dumbbell/cross-traffic profiles
(``tests/simgrid/test_tcpfluid.py``) the way the incremental kernel is
pinned against ``full_resolve``.

The dynamics ride the engine's existing machinery: round boundaries are
plain :meth:`Simulation.schedule` timers, the weight/bound updates go
through ``SharingSystem.update_variable`` (incremental mode) or the next
full rebuild (``full_resolve``), and both solver paths agree within 1e-9
(``tools/check_model_smoke.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.simgrid.models import SharingModel, register_model
from repro.simgrid.platform import LinkUse, SharingPolicy
from repro.testbed.tcp import TcpFlowState, TcpParams


@dataclass(frozen=True)
class TcpFluidModel(SharingModel):
    """Congestion-aware sharing model: cwnd ramp, RTT bias, loss backoff."""

    name: str = "tcp_fluid"
    bandwidth_factor: float = 1.0
    #: TCP segment payload bytes (window granularity).
    mss: float = 1448.0
    #: Initial congestion window, segments.
    initial_window_segments: int = 3
    #: Maximum congestion window (bytes) — the paper's 4 MiB sender tuning.
    max_window_bytes: float = 4194304.0
    #: CUBIC aggressiveness constant.
    cubic_c: float = 0.4
    #: CUBIC multiplicative-decrease factor.
    cubic_beta: float = 0.7
    #: Window growth per slow-start round (1.5 under delayed ACKs).
    slow_start_growth: float = 1.5
    #: RTT floor so zero-latency routes keep finite window rates and round
    #: intervals (seconds).
    min_rtt: float = 1e-6

    time_varying = True

    def model_key(self) -> tuple:
        return (
            "TcpFluidModel",
            self.name,
            self.bandwidth_factor,
            self.mss,
            self.initial_window_segments,
            self.max_window_bytes,
            self.cubic_c,
            self.cubic_beta,
            self.slow_start_growth,
            self.min_rtt,
        )

    def tcp_params(self) -> TcpParams:
        return TcpParams(
            mss=self.mss,
            initial_window_segments=self.initial_window_segments,
            max_window_bytes=self.max_window_bytes,
            cubic_c=self.cubic_c,
            cubic_beta=self.cubic_beta,
            slow_start_growth=self.slow_start_growth,
        )

    # -- per-route quantities ------------------------------------------------

    def route_rtt(self, route: Sequence[LinkUse]) -> float:
        """Round-trip time of the route: twice the one-way path latency,
        floored at ``min_rtt``."""
        return max(2.0 * self.route_raw_latency(route), self.min_rtt)

    def startup_latency(self, route: Sequence[LinkUse]) -> float:
        """One RTT of TCP handshake before the first data round."""
        return self.route_rtt(route)

    def flow_weight(self, route: Sequence[LinkUse]) -> float:
        """The route RTT: saturated constraints split ∝ 1/RTT (TCP's bias)."""
        return self.route_rtt(route)

    def rate_bound(self, route: Sequence[LinkUse]) -> float:
        """Steady-state window cap ``max_window / RTT``, further limited by
        every FATPIPE link's effective bandwidth."""
        bound = self.max_window_bytes / self.route_rtt(route)
        for use in route:
            if use.link.policy is SharingPolicy.FATPIPE:
                bound = min(bound, self.effective_bandwidth(use.link.bandwidth))
        return bound

    def effective_bandwidth(self, nominal: float) -> float:
        return self.bandwidth_factor * nominal

    def flow_dynamics(self, route: Sequence[LinkUse]) -> "TcpFlowDynamics":
        return TcpFlowDynamics(self, route)


class TcpFlowDynamics:
    """Per-flow congestion-window schedule the engine drives on round timers.

    Mirrors the testbed's ramp loop (``fluid.py::_end_ramp_round``): every
    RTT the achieved rate is compared against the window rate — a shortfall
    triggers one loss backoff and ends the ramp; otherwise the window grows
    and the bound rises, until the window reaches its cap.
    """

    __slots__ = ("rtt", "weight", "steady_bound", "tcp", "steady")

    def __init__(self, model: TcpFluidModel, route: Sequence[LinkUse]) -> None:
        self.rtt = model.route_rtt(route)
        self.weight = model.flow_weight(route)
        self.steady_bound = model.rate_bound(route)
        self.tcp = TcpFlowState(params=model.tcp_params())
        self.steady = False

    @property
    def interval(self) -> float:
        """Seconds between round re-evaluations (one RTT)."""
        return self.rtt

    def spec(self) -> tuple[float, float]:
        """Current ``(weight, bound)`` of the flow's sharing variable."""
        if self.steady:
            return self.weight, self.steady_bound
        return self.weight, min(self.tcp.cwnd / self.rtt, self.steady_bound)

    def advance(self, achieved_rate: float) -> Optional[float]:
        """End one RTT round given the rate allocated during it.

        Returns the delay to the next round, or ``None`` once the flow is
        steady (loss backoff, or window at its cap) and needs no more
        re-evaluation.
        """
        window_rate = self.tcp.window_rate(self.rtt)
        if achieved_rate < window_rate * (1.0 - 1e-6):
            # the network share caps this flow: the window overshot the
            # bandwidth-delay product, the queue dropped — one multiplicative
            # decrease, then the flow is capacity-limited
            self.tcp.on_loss()
            self.steady = True
            return None
        self.tcp.on_round(self.rtt)
        if self.tcp.cwnd >= self.tcp.params.max_window_bytes * (1.0 - 1e-9):
            self.steady = True
            return None
        return self.rtt


def tcp_fluid(
    bandwidth_factor: float = 1.0,
    mss: float = 1448.0,
    initial_window_segments: int = 3,
    max_window_bytes: float = 4194304.0,
    cubic_c: float = 0.4,
    cubic_beta: float = 0.7,
    slow_start_growth: float = 1.5,
    min_rtt: float = 1e-6,
) -> TcpFluidModel:
    """Congestion-aware TCP-fluid model: slow-start/CUBIC window ramp,
    RTT-proportional fairness, loss-triggered backoff on saturated links."""
    return TcpFluidModel(
        bandwidth_factor=bandwidth_factor,
        mss=mss,
        initial_window_segments=initial_window_segments,
        max_window_bytes=max_window_bytes,
        cubic_c=cubic_c,
        cubic_beta=cubic_beta,
        slow_start_growth=slow_start_growth,
        min_rtt=min_rtt,
    )


register_model("tcp_fluid", tcp_fluid)
