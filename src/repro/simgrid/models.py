"""Flow-level TCP network models: CM02 and LV08.

These are the models the paper's predictions rely on (§IV-A):

- **CM02** (Casanova & Marchal 2002): RTT-aware max-min sharing, no empirical
  corrections.
- **LV08** (Velho & Legrand 2009, SimGrid's default at the time of the
  paper): CM02 plus three calibrated corrections —

  * achievable bandwidth is 97 % of nominal (``bandwidth_factor`` 0.97),
  * effective startup latency is 13.01× the physical latency
    (``latency_factor``; accounts for slow-start on short transfers),
  * the fairness weight per link is ``latency + weight_S / bandwidth`` with
    ``weight_S`` = 20537 (protocol overhead term),
  * every flow's rate is capped by the maximum TCP window:
    ``TCP_gamma / (2 · RTT)`` — the paper configures ``TCP_gamma`` = 4194304
    to match the senders' 4 MiB maximum congestion windows.

All three constants are the published SimGrid values; they can be overridden,
e.g. ``LV08(tcp_gamma=8388608)`` for hosts tuned with larger windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.simgrid.platform import LinkUse, SharingPolicy, link_epoch

#: Minimum fairness weight, used when a route has zero latency and the model
#: has no weight_S term (all-equal weights => plain max-min fairness).
MIN_WEIGHT = 1e-12


@dataclass(frozen=True)
class NetworkModel:
    """A parameterised flow-level network model."""

    name: str = "CM02"
    bandwidth_factor: float = 1.0
    latency_factor: float = 1.0
    weight_S: float = 0.0
    #: TCP maximum-window rate cap parameter (bytes); 0 disables the cap.
    tcp_gamma: float = 0.0

    def with_gamma(self, tcp_gamma: float) -> "NetworkModel":
        """Copy of this model with a different ``TCP_gamma``."""
        return replace(self, tcp_gamma=tcp_gamma)

    # -- per-route quantities ------------------------------------------------

    def route_raw_latency(self, route: Sequence[LinkUse]) -> float:
        """Physical one-way latency: sum of link latencies."""
        return sum(use.link.latency for use in route)

    def startup_latency(self, route: Sequence[LinkUse]) -> float:
        """Serial delay before bytes flow: ``latency_factor × Σ latency``."""
        return self.latency_factor * self.route_raw_latency(route)

    def flow_weight(self, route: Sequence[LinkUse]) -> float:
        """Max-min fairness weight: ``Σ (latency + weight_S / bandwidth)``.

        Larger weight ⇒ smaller share on a saturated constraint, which is how
        the RTT-proportional unfairness of TCP is reproduced.
        """
        weight = 0.0
        for use in route:
            weight += use.link.latency + (self.weight_S / use.link.bandwidth if self.weight_S else 0.0)
        return max(weight, MIN_WEIGHT)

    def rate_bound(self, route: Sequence[LinkUse]) -> float:
        """Per-flow rate cap from the TCP window: ``gamma / (2·Σ latency)``,
        further limited by every FATPIPE link's effective bandwidth."""
        bound = math.inf
        if self.tcp_gamma > 0:
            lat = self.route_raw_latency(route)
            if lat > 0:
                bound = self.tcp_gamma / (2.0 * lat)
        for use in route:
            if use.link.policy is SharingPolicy.FATPIPE:
                bound = min(bound, self.effective_bandwidth(use.link.bandwidth))
        return bound

    def effective_bandwidth(self, nominal: float) -> float:
        """Usable capacity of a link: ``bandwidth_factor × nominal``."""
        return self.bandwidth_factor * nominal

    def sharing_usages(
        self, route: Sequence[LinkUse]
    ) -> tuple[tuple[object, float, float], ...]:
        """Per-constraint consumption of a flow on ``route``.

        Returns ``(constraint key, effective capacity, coefficient)`` triples,
        one per distinct capacity constraint the route crosses: FATPIPE links
        contribute nothing (they are folded into :meth:`rate_bound`), SHARED
        links crossed in both directions appear once with coefficient 2, and
        FULLDUPLEX links appear once per traversed direction.  This is the
        cacheable part of the sharing problem — it only depends on the route
        and the model, so the engine computes it once per communication
        instead of re-walking the route at every event.
        """
        aggregated: dict[object, list[float]] = {}
        for use in route:
            link = use.link
            if link.policy is SharingPolicy.FATPIPE:
                continue
            key = link.constraint_key(use.direction)
            entry = aggregated.get(key)
            if entry is None:
                aggregated[key] = [self.effective_bandwidth(link.bandwidth), 1.0]
            else:
                entry[1] += 1.0
        return tuple(
            (key, capacity, coefficient)
            for key, (capacity, coefficient) in aggregated.items()
        )

    def comm_spec(
        self, route: Sequence[LinkUse]
    ) -> tuple[float, float, float, tuple[tuple[object, float, float], ...]]:
        """``(startup latency, weight, bound, sharing usages)`` for a flow on
        ``route``, memoized on the route object when it is a platform-cached
        :class:`~repro.simgrid.platform.Route`.

        All four quantities depend only on the route's links and this
        (frozen) model, so they are computed once per (route, model) pair
        instead of once per communication — the per-comm half of the
        route-caching work.  Entries are stamped with the global link
        mutation epoch: in-place link recalibration (latency feed, bandwidth
        edits) invalidates them automatically.
        """
        memo = getattr(route, "model_specs", None)
        epoch = link_epoch()
        if memo is not None:
            entry = memo.get(self)
            if entry is not None and entry[0] == epoch:
                return entry[1]
        spec = (
            self.startup_latency(route),
            self.flow_weight(route),
            self.rate_bound(route),
            self.sharing_usages(route),
        )
        if memo is not None:
            memo[self] = (epoch, spec)
        return spec


def CM02(tcp_gamma: float = 0.0) -> NetworkModel:
    """The uncorrected Casanova-Marchal 2002 model."""
    return NetworkModel(name="CM02", bandwidth_factor=1.0, latency_factor=1.0,
                        weight_S=0.0, tcp_gamma=tcp_gamma)


def LV08(tcp_gamma: float = 4194304.0) -> NetworkModel:
    """The Velho-Legrand 2009 calibrated model (SimGrid default, used by the
    paper with ``network/TCP_gamma = 4194304``)."""
    return NetworkModel(name="LV08", bandwidth_factor=0.97, latency_factor=13.01,
                        weight_S=20537.0, tcp_gamma=tcp_gamma)


_REGISTRY = {"CM02": CM02, "LV08": LV08}


def model_by_name(name: str, **kwargs) -> NetworkModel:
    """Look up a model factory by name (``"CM02"`` / ``"LV08"``)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown network model {name!r} (have {sorted(_REGISTRY)})") from None
    return factory(**kwargs)
