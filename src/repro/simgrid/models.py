"""Flow-level network sharing models: the pluggable ``SharingModel`` layer.

A *sharing model* turns a route (a sequence of directed link traversals)
into the quantities the kernel shares bandwidth with: a startup latency, a
max-min fairness weight, a per-flow rate bound and the capacity constraints
the flow consumes.  Models register themselves by name
(:func:`register_model`) and are looked up with :func:`model_by_name`; the
``repro models list`` CLI verb enumerates the registry.

Every model also carries an explicit identity contract — :meth:`model_key`
— used by every cache and shard layer (forecast cache, request coalescer,
surrogate tier) instead of ad-hoc ``repr`` keying: two model instances with
equal keys must produce identical forecasts, and any parameter that changes
predictions must appear in the key.  :func:`model_key_of` is the helper the
serving layers call (it falls back to ``repr`` for foreign objects).

The built-in static models are the ones the paper's predictions rely on
(§IV-A):

- **CM02** (Casanova & Marchal 2002): RTT-aware max-min sharing, no
  empirical corrections.
- **LV08** (Velho & Legrand 2009, SimGrid's default at the time of the
  paper): CM02 plus three calibrated corrections —

  * achievable bandwidth is 97 % of nominal (``bandwidth_factor`` 0.97),
  * effective startup latency is 13.01× the physical latency
    (``latency_factor``; accounts for slow-start on short transfers),
  * the fairness weight per link is ``latency + weight_S / bandwidth`` with
    ``weight_S`` = 20537 (protocol overhead term),
  * every flow's rate is capped by the maximum TCP window:
    ``TCP_gamma / (2 · RTT)`` — the paper configures ``TCP_gamma`` = 4194304
    to match the senders' 4 MiB maximum congestion windows.

All three constants are the published SimGrid values; they can be
overridden, e.g. ``LV08(tcp_gamma=8388608)`` for hosts tuned with larger
windows.

Models may also be **time-varying** (``time_varying = True``): their
per-flow weight/bound evolve over a flow's lifetime through a
:meth:`flow_dynamics` schedule the engine re-evaluates on round timers —
see :mod:`repro.simgrid.tcpfluid` for the congestion-aware TCP-fluid model
built on this hook.
"""

from __future__ import annotations

import difflib
import inspect
import math
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from repro.simgrid.platform import LinkUse, SharingPolicy, link_epoch

#: Minimum fairness weight, used when a route has zero latency and the model
#: has no weight_S term (all-equal weights => plain max-min fairness).
MIN_WEIGHT = 1e-12


class SharingModel:
    """Abstract interface of a flow-level network sharing model.

    Implementations provide the per-route quantities (startup latency,
    fairness weight, rate bound, effective bandwidth) and an explicit
    :meth:`model_key` identity; :meth:`sharing_usages` and
    :meth:`comm_spec` are shared concrete machinery built on them.
    Instances must be immutable and hashable (``comm_spec`` memoizes on the
    route keyed by the model instance).
    """

    #: True when per-flow sharing weights/bounds evolve over a flow's
    #: lifetime; the engine then drives the :meth:`flow_dynamics` schedule
    #: through round timers and ``SharingSystem.update_variable``.
    time_varying: bool = False

    # -- identity ------------------------------------------------------------

    def model_key(self) -> tuple:
        """Hashable identity of this model for cache/batch/shard keying.

        Contract: two instances with equal keys must produce identical
        forecasts; every parameter that changes predictions must appear in
        the key.  This replaces the historical ``repr(model)`` keying —
        see :func:`model_key_of`.
        """
        raise NotImplementedError

    # -- per-route quantities ------------------------------------------------

    def route_raw_latency(self, route: Sequence[LinkUse]) -> float:
        """Physical one-way latency: sum of link latencies."""
        return sum(use.link.latency for use in route)

    def startup_latency(self, route: Sequence[LinkUse]) -> float:
        """Serial delay before bytes flow."""
        raise NotImplementedError

    def flow_weight(self, route: Sequence[LinkUse]) -> float:
        """Max-min fairness weight (larger ⇒ smaller share)."""
        raise NotImplementedError

    def rate_bound(self, route: Sequence[LinkUse]) -> float:
        """Per-flow rate cap (``inf`` when unbounded)."""
        raise NotImplementedError

    def effective_bandwidth(self, nominal: float) -> float:
        """Usable capacity of a link."""
        raise NotImplementedError

    def flow_dynamics(self, route: Sequence[LinkUse]):
        """Fresh per-flow dynamic state for time-varying models.

        Static models return ``None``.  Time-varying models return an
        object with ``spec() -> (weight, bound)``, an ``interval`` (seconds
        to the first re-evaluation after data starts) and
        ``advance(achieved_rate) -> next_interval | None`` — the engine
        applies ``spec()`` after every ``advance`` and stops the schedule
        when it returns ``None``.
        """
        return None

    # -- shared concrete machinery -------------------------------------------

    def sharing_usages(
        self, route: Sequence[LinkUse]
    ) -> tuple[tuple[object, float, float], ...]:
        """Per-constraint consumption of a flow on ``route``.

        Returns ``(constraint key, effective capacity, coefficient)`` triples,
        one per distinct capacity constraint the route crosses: FATPIPE links
        contribute nothing (they are folded into :meth:`rate_bound`), SHARED
        links crossed in both directions appear once with coefficient 2, and
        FULLDUPLEX links appear once per traversed direction.  This is the
        cacheable part of the sharing problem — it only depends on the route
        and the model, so the engine computes it once per communication
        instead of re-walking the route at every event.
        """
        aggregated: dict[object, list[float]] = {}
        for use in route:
            link = use.link
            if link.policy is SharingPolicy.FATPIPE:
                continue
            key = link.constraint_key(use.direction)
            entry = aggregated.get(key)
            if entry is None:
                aggregated[key] = [self.effective_bandwidth(link.bandwidth), 1.0]
            else:
                entry[1] += 1.0
        return tuple(
            (key, capacity, coefficient)
            for key, (capacity, coefficient) in aggregated.items()
        )

    def comm_spec(
        self, route: Sequence[LinkUse]
    ) -> tuple[float, float, float, tuple[tuple[object, float, float], ...]]:
        """``(startup latency, weight, bound, sharing usages)`` for a flow on
        ``route``, memoized on the route object when it is a platform-cached
        :class:`~repro.simgrid.platform.Route`.

        All four quantities depend only on the route's links and this
        (immutable) model, so they are computed once per (route, model) pair
        instead of once per communication — the per-comm half of the
        route-caching work.  Entries are stamped with the global link
        mutation epoch: in-place link recalibration (latency feed, bandwidth
        edits) invalidates them automatically.
        """
        memo = getattr(route, "model_specs", None)
        epoch = link_epoch()
        if memo is not None:
            entry = memo.get(self)
            if entry is not None and entry[0] == epoch:
                return entry[1]
        spec = (
            self.startup_latency(route),
            self.flow_weight(route),
            self.rate_bound(route),
            self.sharing_usages(route),
        )
        if memo is not None:
            memo[self] = (epoch, spec)
        return spec


def model_key_of(model: object) -> object:
    """The canonical cache/batch/shard identity of ``model``.

    Uses the :meth:`SharingModel.model_key` contract when the object
    provides it, ``repr`` otherwise (foreign or ad-hoc model objects keep
    working, just without cross-instance key equality guarantees).
    """
    key = getattr(model, "model_key", None)
    if callable(key):
        return key()
    return repr(model)


@dataclass(frozen=True)
class NetworkModel(SharingModel):
    """A parameterised *static* flow-level network model (CM02/LV08 family)."""

    name: str = "CM02"
    bandwidth_factor: float = 1.0
    latency_factor: float = 1.0
    weight_S: float = 0.0
    #: TCP maximum-window rate cap parameter (bytes); 0 disables the cap.
    tcp_gamma: float = 0.0

    def with_gamma(self, tcp_gamma: float) -> "NetworkModel":
        """Copy of this model with a different ``TCP_gamma``."""
        return replace(self, tcp_gamma=tcp_gamma)

    def model_key(self) -> tuple:
        return (
            "NetworkModel",
            self.name,
            self.bandwidth_factor,
            self.latency_factor,
            self.weight_S,
            self.tcp_gamma,
        )

    # -- per-route quantities ------------------------------------------------

    def startup_latency(self, route: Sequence[LinkUse]) -> float:
        """Serial delay before bytes flow: ``latency_factor × Σ latency``."""
        return self.latency_factor * self.route_raw_latency(route)

    def flow_weight(self, route: Sequence[LinkUse]) -> float:
        """Max-min fairness weight: ``Σ (latency + weight_S / bandwidth)``.

        Larger weight ⇒ smaller share on a saturated constraint, which is how
        the RTT-proportional unfairness of TCP is reproduced.
        """
        weight = 0.0
        for use in route:
            weight += use.link.latency + (self.weight_S / use.link.bandwidth if self.weight_S else 0.0)
        return max(weight, MIN_WEIGHT)

    def rate_bound(self, route: Sequence[LinkUse]) -> float:
        """Per-flow rate cap from the TCP window: ``gamma / (2·Σ latency)``,
        further limited by every FATPIPE link's effective bandwidth."""
        bound = math.inf
        if self.tcp_gamma > 0:
            lat = self.route_raw_latency(route)
            if lat > 0:
                bound = self.tcp_gamma / (2.0 * lat)
        for use in route:
            if use.link.policy is SharingPolicy.FATPIPE:
                bound = min(bound, self.effective_bandwidth(use.link.bandwidth))
        return bound

    def effective_bandwidth(self, nominal: float) -> float:
        """Usable capacity of a link: ``bandwidth_factor × nominal``."""
        return self.bandwidth_factor * nominal


def CM02(tcp_gamma: float = 0.0) -> NetworkModel:
    """The uncorrected Casanova-Marchal 2002 model."""
    return NetworkModel(name="CM02", bandwidth_factor=1.0, latency_factor=1.0,
                        weight_S=0.0, tcp_gamma=tcp_gamma)


def LV08(tcp_gamma: float = 4194304.0) -> NetworkModel:
    """The Velho-Legrand 2009 calibrated model (SimGrid default, used by the
    paper with ``network/TCP_gamma = 4194304``)."""
    return NetworkModel(name="LV08", bandwidth_factor=0.97, latency_factor=13.01,
                        weight_S=20537.0, tcp_gamma=tcp_gamma)


# -- the model registry ------------------------------------------------------


@dataclass(frozen=True)
class RegisteredModel:
    """One registry entry: a named sharing-model factory plus metadata."""

    name: str
    factory: Callable[..., SharingModel]
    description: str = ""

    def parameters(self) -> dict[str, object]:
        """Keyword parameters the factory accepts, mapped to their defaults
        (``None`` for parameters without one) — what ``model_by_name(name,
        **kwargs)`` forwards and ``repro models list`` prints."""
        params: dict[str, object] = {}
        for p in inspect.signature(self.factory).parameters.values():
            if p.kind in (inspect.Parameter.VAR_POSITIONAL,
                          inspect.Parameter.VAR_KEYWORD):
                continue
            params[p.name] = (None if p.default is inspect.Parameter.empty
                              else p.default)
        return params

    def build(self, **kwargs) -> SharingModel:
        return self.factory(**kwargs)


_REGISTRY: dict[str, RegisteredModel] = {}


def register_model(
    name: str,
    factory: Callable[..., SharingModel],
    description: str = "",
) -> Callable[..., SharingModel]:
    """Register a sharing-model factory under ``name``.

    ``factory(**kwargs)`` must build an immutable :class:`SharingModel`;
    its keyword defaults are introspected for ``repro models list``.  The
    description defaults to the factory docstring's first line.  Returns
    the factory so the call can wrap a ``def``.
    """
    if name in _REGISTRY:
        raise ValueError(f"model name {name!r} is already registered")
    if not description:
        description = (factory.__doc__ or "").strip().split("\n")[0]
    _REGISTRY[name] = RegisteredModel(name=name, factory=factory,
                                      description=description)
    return factory


def registered_models() -> tuple[RegisteredModel, ...]:
    """Every registered sharing model entry, in registration order."""
    return tuple(_REGISTRY.values())


def model_names() -> tuple[str, ...]:
    """Registered model names, sorted."""
    return tuple(sorted(_REGISTRY))


def model_by_name(name: str, **kwargs) -> SharingModel:
    """Build a model by registry name (``"CM02"``/``"LV08"``/``"tcp_fluid"``).

    Lookup is exact first, then case-insensitive (CLI convenience).  An
    unknown name raises :class:`ValueError` listing every registered name,
    with a close-match suggestion when one exists; bad factory keyword
    arguments raise :class:`ValueError` listing the accepted parameters.
    """
    entry = _REGISTRY.get(name)
    if entry is None and isinstance(name, str):
        folded = {known.lower(): reg for known, reg in _REGISTRY.items()}
        entry = folded.get(name.lower())
    if entry is None:
        known = ", ".join(sorted(_REGISTRY))
        close = difflib.get_close_matches(str(name), list(_REGISTRY), n=1)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise ValueError(
            f"unknown network model {name!r}: registered models are "
            f"[{known}]{hint}"
        )
    try:
        return entry.factory(**kwargs)
    except TypeError as exc:
        accepted = ", ".join(sorted(entry.parameters()))
        raise ValueError(
            f"bad parameters for model {entry.name!r}: {exc} "
            f"(accepted: {accepted})"
        ) from None


register_model("CM02", CM02)
register_model("LV08", LV08)

# Imported last (the registry above must exist first): registers the
# congestion-aware "tcp_fluid" model so every model_by_name caller sees it.
from repro.simgrid import tcpfluid as _tcpfluid  # noqa: E402,F401
