"""SimGrid-flavoured XML platform reading and writing.

Supports the subset of the SimGrid 3.x platform DTD the paper's tooling
needs: nested ``<AS>`` with ``Full``/``Dijkstra`` routing, ``<host>``,
``<router>``, ``<link>`` (with ``sharing_policy``), ``<route>`` /
``<ASroute>`` with ``<link_ctn>`` entries, and top-level ``<config>``
properties (e.g. ``network/TCP_gamma``).

One documented extension: ``<link_ctn>`` accepts a ``direction`` attribute
(``UP``/``DOWN``) because this reproduction models link direction explicitly
instead of SimGrid's ``_UP``/``_DOWN`` link-name convention.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from repro.simgrid.platform import (
    AutonomousSystem,
    Direction,
    Link,
    LinkUse,
    Platform,
    PlatformError,
    SharingPolicy,
)
from repro.simgrid.units import (
    format_bandwidth,
    format_time,
    parse_bandwidth,
    parse_speed,
    parse_time,
)


class PlatformXMLError(PlatformError):
    """Malformed platform XML."""


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------

def platform_to_xml(platform: Platform) -> str:
    """Serialise ``platform`` to a SimGrid-style XML string."""
    root_el = ET.Element("platform", version="4.1")
    for key, value in platform.properties.items():
        prop = ET.SubElement(root_el, "config")
        item = ET.SubElement(prop, "prop", id=key, value=str(value))
        del item
    root_el.append(_as_to_xml(platform.root))
    _indent(root_el)
    body = ET.tostring(root_el, encoding="unicode")
    return "<?xml version='1.0'?>\n" + body + "\n"


def _as_to_xml(as_: AutonomousSystem) -> ET.Element:
    el = ET.Element("AS", id=as_.name, routing=as_.routing)
    for point_name, point in as_.netpoints.items():
        from repro.simgrid.platform import Host

        if isinstance(point, Host):
            ET.SubElement(el, "host", id=point_name,
                          speed=f"{point.speed:.12g}f", core=str(point.cores))
        else:
            ET.SubElement(el, "router", id=point_name)
    for link in as_.links.values():
        ET.SubElement(
            el, "link", id=link.name,
            bandwidth=f"{link.bandwidth:.12g}Bps",
            latency=f"{link.latency:.12g}s",
            sharing_policy=link.policy.value,
        )
    for child in as_.children.values():
        child_el = _as_to_xml(child)
        if child.default_gateway is not None:
            child_el.set("gateway", child.default_gateway)
        el.append(child_el)
    for a, b, uses in as_._connections:
        conn = ET.SubElement(el, "connection", a=a, b=b,
                             link=",".join(u.link.name for u in uses))
        dirs = ",".join(u.direction.value for u in uses)
        if any(u.direction is not Direction.UP for u in uses):
            conn.set("directions", dirs)
    emitted: set[tuple[str, str]] = set()
    for (src, dst), entry in as_._routes.items():
        if (dst, src) in emitted:
            continue  # reverse of an already-emitted symmetrical route
        reverse = as_._routes.get((dst, src))
        from repro.simgrid.platform import _reverse_route

        symmetrical = (
            reverse is not None
            and [u for u in reverse.links] == [u for u in _reverse_route(entry).links]
            and reverse.gw_src == entry.gw_dst
            and reverse.gw_dst == entry.gw_src
        )
        is_asroute = src in as_.children or dst in as_.children
        tag = "ASroute" if is_asroute else "route"
        route_el = ET.SubElement(el, tag, src=src, dst=dst)
        if entry.gw_src:
            route_el.set("gw_src", entry.gw_src)
        if entry.gw_dst:
            route_el.set("gw_dst", entry.gw_dst)
        route_el.set("symmetrical", "YES" if symmetrical else "NO")
        for use in entry.links:
            ctn = ET.SubElement(route_el, "link_ctn", id=use.link.name)
            if use.direction is not Direction.UP:
                ctn.set("direction", use.direction.value)
        emitted.add((src, dst))
    return el


def _indent(el: ET.Element, level: int = 0) -> None:
    pad = "\n" + "  " * level
    if len(el):
        if not el.text or not el.text.strip():
            el.text = pad + "  "
        for child in el:
            _indent(child, level + 1)
            if not child.tail or not child.tail.strip():
                child.tail = pad + "  "
        if not el[-1].tail or not el[-1].tail.strip():
            el[-1].tail = pad
    elif level and (not el.tail or not el.tail.strip()):
        el.tail = pad


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------

def platform_from_xml(text: str) -> Platform:
    """Parse a platform from a SimGrid-style XML string."""
    try:
        root_el = ET.fromstring(text)
    except ET.ParseError as exc:
        raise PlatformXMLError(f"XML parse error: {exc}") from exc
    if root_el.tag != "platform":
        raise PlatformXMLError(f"expected <platform> root, got <{root_el.tag}>")
    as_els = [child for child in root_el if child.tag == "AS"]
    if len(as_els) != 1:
        raise PlatformXMLError(f"expected exactly one top-level <AS>, got {len(as_els)}")
    top = as_els[0]
    platform = Platform(top.get("id", "platform"), routing=top.get("routing", "Full"))
    for config_el in root_el.iter("config"):
        for prop in config_el.iter("prop"):
            platform.properties[prop.get("id", "")] = prop.get("value", "")
    _fill_as(platform.root, top, platform)
    return platform


def _fill_as(as_: AutonomousSystem, el: ET.Element, platform: Platform) -> None:
    # two passes: declare elements/links first, then routes (which reference them)
    for child in el:
        if child.tag == "host":
            as_.add_host(
                _req(child, "id"),
                speed=parse_speed(child.get("speed", "1Gf")),
                cores=int(child.get("core", "1")),
            )
        elif child.tag == "router":
            as_.add_router(_req(child, "id"))
        elif child.tag == "link":
            as_.add_link(
                _req(child, "id"),
                bandwidth=parse_bandwidth(_req(child, "bandwidth")),
                latency=parse_time(child.get("latency", "0s")),
                policy=SharingPolicy(child.get("sharing_policy", "SHARED")),
            )
        elif child.tag == "AS":
            sub = AutonomousSystem(_req(child, "id"), routing=child.get("routing", "Full"))
            as_.add_child(sub, gateway=child.get("gateway"))
            _fill_as(sub, child, platform)
    for child in el:
        if child.tag in ("route", "ASroute"):
            links = []
            for ctn in child:
                if ctn.tag != "link_ctn":
                    raise PlatformXMLError(f"unexpected <{ctn.tag}> inside route")
                link = _find_link(as_, _req(ctn, "id"))
                direction = Direction(ctn.get("direction", "UP"))
                links.append(LinkUse(link, direction))
            as_.add_route(
                _req(child, "src"),
                _req(child, "dst"),
                links,
                symmetrical=child.get("symmetrical", "YES").upper() == "YES",
                gw_src=child.get("gw_src"),
                gw_dst=child.get("gw_dst"),
            )
        elif child.tag == "connection":  # Dijkstra adjacency (extension tag)
            names = _req(child, "link").split(",")
            dirs = child.get("directions")
            dir_list = dirs.split(",") if dirs else ["UP"] * len(names)
            if len(dir_list) != len(names):
                raise PlatformXMLError("connection: directions/link length mismatch")
            uses = [
                LinkUse(_find_link(as_, name), Direction(d))
                for name, d in zip(names, dir_list)
            ]
            as_.add_connection(_req(child, "a"), _req(child, "b"), uses)


def _req(el: ET.Element, attr: str) -> str:
    value = el.get(attr)
    if value is None:
        raise PlatformXMLError(f"<{el.tag}> missing required attribute {attr!r}")
    return value


def _find_link(as_: AutonomousSystem, name: str) -> Link:
    node: Optional[AutonomousSystem] = as_
    while node is not None:
        if name in node.links:
            return node.links[name]
        node = node.parent
    # search descendants too (ASroutes may reference child-owned links)
    stack = list(as_.children.values())
    while stack:
        sub = stack.pop()
        if name in sub.links:
            return sub.links[name]
        stack.extend(sub.children.values())
    raise PlatformXMLError(f"route references unknown link {name!r}")


def save_platform(platform: Platform, path: str) -> None:
    """Write ``platform`` to ``path`` as XML."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(platform_to_xml(platform))


def load_platform(path: str) -> Platform:
    """Read a platform from the XML file at ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        return platform_from_xml(fh.read())
