"""Bounded, weighted max-min fairness solver (SimGrid's ``lmm`` rebuilt).

The flow-level TCP model of Casanova & Marchal (2002) allocates bandwidth by
*weighted max-min fairness*: all flows raise a common level ``phi`` together,
flow ``i`` receiving rate ``phi / w_i`` (``w_i`` grows with the flow's RTT, so
the share on a shared bottleneck is inversely proportional to RTT — §IV-A of
the paper).  The level rises until either

- a constraint (link capacity) saturates, freezing every flow crossing it, or
- a flow hits its individual rate bound (the ``TCP_gamma`` window cap),

and the process repeats on the remaining flows — the classic *progressive
filling* algorithm, extended with per-variable bounds and per-(variable,
constraint) consumption coefficients (a route may traverse one SHARED link in
both directions).

Solved instances hold:

- ``Variable.value`` — the allocated rate,
- ``Constraint.usage`` — the total consumption on the constraint.

The solver is numpy-vectorised over constraints and variables; each iteration
freezes at least one variable or constraint, so at most ``n + m`` passes run.

Two front-ends share the same progressive-filling kernel:

- :class:`MaxMinSystem` — build once, solve once (the historical API, kept as
  the ``full_resolve`` verification path),
- :class:`SharingSystem` — a *persistent arena* for the event loop: variables
  come and go as activities start and finish, coefficient buffers stay alive
  across events (grow-only, free-list slot reuse), and :meth:`SharingSystem.
  solve` only re-solves the connected components touched since the last call
  (dirty-set tracking).  Untouched components keep their previous allocation,
  which is exact: progressive filling never moves rate between disconnected
  components.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

_EPS = 1e-12


class MaxMinError(Exception):
    """Raised on invalid solver usage (non-positive capacity/weight, …)."""


class Variable:
    """One allocation variable (a flow's rate)."""

    __slots__ = ("index", "weight", "bound", "value", "payload")

    def __init__(self, index: int, weight: float, bound: Optional[float], payload: object) -> None:
        self.index = index
        self.weight = weight
        self.bound = bound
        self.value = 0.0
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable(#{self.index}, w={self.weight:.4g}, bound={self.bound}, value={self.value:.4g})"


class Constraint:
    """One capacity constraint (a link direction's available bandwidth)."""

    __slots__ = ("index", "capacity", "usage", "payload")

    def __init__(self, index: int, capacity: float, payload: object) -> None:
        self.index = index
        self.capacity = capacity
        self.usage = 0.0
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constraint(#{self.index}, cap={self.capacity:.4g}, usage={self.usage:.4g})"


class MaxMinSystem:
    """A linear max-min system: build variables/constraints, then solve."""

    def __init__(self) -> None:
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        # (constraint index, variable index) -> coefficient
        self._coeffs: dict[tuple[int, int], float] = {}

    def new_variable(
        self,
        weight: float,
        bound: Optional[float] = None,
        payload: object = None,
    ) -> Variable:
        """Add a variable with fairness weight ``weight`` (> 0) and optional
        rate ``bound`` (> 0 or None for unbounded)."""
        index = len(self.variables)
        if not (weight > 0.0) or not math.isfinite(weight):
            raise MaxMinError(
                f"variable #{index} (payload={payload!r}): weight must be "
                f"positive and finite, got {weight}"
            )
        if bound is not None:
            if bound <= 0 or not math.isfinite(bound):
                if bound is not None and math.isinf(bound) and bound > 0:
                    bound = None
                else:
                    raise MaxMinError(
                        f"variable #{index} (payload={payload!r}): bound must "
                        f"be positive, got {bound}"
                    )
        var = Variable(index, float(weight), bound, payload)
        self.variables.append(var)
        return var

    def new_constraint(self, capacity: float, payload: object = None) -> Constraint:
        """Add a capacity constraint (> 0)."""
        index = len(self.constraints)
        if not (capacity > 0.0) or not math.isfinite(capacity):
            raise MaxMinError(
                f"constraint #{index} (payload={payload!r}): capacity must be "
                f"positive and finite, got {capacity}"
            )
        cons = Constraint(index, float(capacity), payload)
        self.constraints.append(cons)
        return cons

    def expand(self, constraint: Constraint, variable: Variable, coefficient: float = 1.0) -> None:
        """Make ``variable`` consume ``coefficient`` times its rate on
        ``constraint``.  Repeated expansion accumulates (a route crossing a
        SHARED link twice consumes twice)."""
        if coefficient <= 0:
            raise MaxMinError(
                f"coefficient must be positive, got {coefficient} "
                f"(constraint #{constraint.index} payload={constraint.payload!r}, "
                f"variable #{variable.index} payload={variable.payload!r})"
            )
        key = (constraint.index, variable.index)
        self._coeffs[key] = self._coeffs.get(key, 0.0) + float(coefficient)

    def solve(self) -> None:
        """Run progressive filling; fills ``Variable.value``/``Constraint.usage``."""
        n = len(self.variables)
        m = len(self.constraints)
        for cons in self.constraints:
            cons.usage = 0.0
        if n == 0:
            return

        weights = np.array([v.weight for v in self.variables], dtype=float)
        bounds = np.array(
            [v.bound if v.bound is not None else np.inf for v in self.variables],
            dtype=float,
        )

        if m:
            rows = np.empty(len(self._coeffs), dtype=np.intp)
            cols = np.empty(len(self._coeffs), dtype=np.intp)
            vals = np.empty(len(self._coeffs), dtype=float)
            for k, ((ci, vi), coeff) in enumerate(self._coeffs.items()):
                rows[k], cols[k], vals[k] = ci, vi, coeff
            # dense incidence is fine at our scale (hundreds x hundreds)
            incidence = np.zeros((m, n), dtype=float)
            incidence[rows, cols] = vals
            capacities = np.array([c.capacity for c in self.constraints], dtype=float)
        else:
            incidence = np.zeros((0, n), dtype=float)
            capacities = np.zeros(0, dtype=float)

        values, usage = progressive_fill(weights, bounds, incidence, capacities)

        for var, value in zip(self.variables, values):
            var.value = float(value)
        for cons, used in zip(self.constraints, usage):
            cons.usage = float(used)

    # -- diagnostics --------------------------------------------------------

    def is_feasible(self, tolerance: float = 1e-6) -> bool:
        """True when no constraint is over-consumed (relative tolerance)."""
        return all(
            cons.usage <= cons.capacity * (1.0 + tolerance) for cons in self.constraints
        )


def progressive_fill(
    weights: np.ndarray,
    bounds: np.ndarray,
    incidence: np.ndarray,
    capacities: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """The progressive-filling kernel shared by both solver front-ends.

    ``weights``/``bounds`` have one entry per variable (``inf`` bound means
    unbounded), ``incidence`` is the dense ``(constraints × variables)``
    coefficient matrix, ``capacities`` one entry per constraint.  Returns
    ``(values, usage)``: the allocated rate per variable and the resulting
    consumption per constraint.
    """
    n = int(weights.size)
    m = int(capacities.size)
    inv_w = 1.0 / weights
    remaining = capacities.astype(float, copy=True)

    active = np.ones(n, dtype=bool)
    cons_active = np.ones(m, dtype=bool)
    values = np.zeros(n, dtype=float)
    phi = 0.0

    for _ in range(n + m + 1):
        if not active.any():
            break
        active_inv_w = np.where(active, inv_w, 0.0)
        # consumption per unit of additional level, per constraint
        drain = incidence @ active_inv_w if m else np.zeros(0)
        relevant = cons_active & (drain > _EPS)
        # level increase that saturates each relevant constraint
        with np.errstate(divide="ignore", invalid="ignore"):
            dphi_cons = np.where(relevant, remaining / np.where(drain > 0, drain, 1.0), np.inf)
        # level at which each active bounded variable tops out
        dphi_vars = np.where(active, bounds * weights - phi, np.inf)
        dphi_vars = np.where(dphi_vars < 0, 0.0, dphi_vars)

        best_cons = dphi_cons.min() if m else np.inf
        best_var = dphi_vars.min()
        dphi = min(best_cons, best_var)
        if not np.isfinite(dphi):
            # no constraint and no bound applies: unbounded variables —
            # treat as "infinitely fast" (no capacity anywhere on route)
            values[active] = np.inf
            active[:] = False
            break

        phi += dphi
        if m:
            remaining = remaining - dphi * drain
        # freeze variables at their bound
        hit_bound = active & (bounds * weights - phi <= _EPS * max(phi, 1.0))
        # freeze constraints that saturated (and their variables)
        if m:
            saturated = relevant & (remaining <= _EPS * capacities)
            if saturated.any():
                # any active variable with positive coefficient on a
                # saturated constraint freezes at the current level
                involved = (incidence[saturated] > 0).any(axis=0)
                hit_bound = hit_bound | (active & involved)
                cons_active &= ~saturated
        if not hit_bound.any():
            # numerical safety: force-freeze the variable closest to its
            # bound or the constraint-minimising one to guarantee progress
            hit_bound = active.copy()
        values[hit_bound] = np.minimum(phi * inv_w[hit_bound], bounds[hit_bound])
        active &= ~hit_bound

    if m:
        usage = incidence @ np.where(np.isfinite(values), values, 0.0)
    else:
        usage = np.zeros(0, dtype=float)
    return values, usage


class SharingSystem:
    """Persistent incremental arena for event-loop resource sharing.

    Unlike :class:`MaxMinSystem` (rebuilt from scratch for every solve), a
    ``SharingSystem`` lives across simulation events:

    - :meth:`add_variable` / :meth:`remove_variable` register flows as they
      start and finish; constraints are *interned* by an opaque key (a link
      direction, a host) and reference-counted, disappearing with their last
      variable,
    - numpy buffers (weights, bounds, values, capacities, the dense
      coefficient matrix) are grow-only with geometric doubling; freed slots
      go to a free list and are reused,
    - every mutation marks the touched constraints/variables *dirty*; a
      :meth:`solve` call re-runs progressive filling only on the connected
      components reachable from the dirty set, one component at a time, in
      canonical (slot-sorted) order.  Untouched components keep their
      previous allocation — exact, since max-min allocations of disconnected
      components are independent.

    ``solve`` returns the ``(payload, value)`` pairs of every re-solved
    variable, which is exactly the set of activities whose rate may have
    changed.
    """

    def __init__(self, initial_variables: int = 64, initial_constraints: int = 64) -> None:
        n = max(1, int(initial_variables))
        m = max(1, int(initial_constraints))
        # per-variable slot buffers (plain lists: scalar access dominates the
        # event loop, and Python lists beat numpy scalar indexing there)
        self._weights: list[float] = [1.0] * n
        self._bounds: list[float] = [math.inf] * n
        self._values: list[float] = [0.0] * n
        self._var_live: list[bool] = [False] * n
        self._var_payload: list[object] = [None] * n
        self._var_uses: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self._var_free: list[int] = list(range(n - 1, -1, -1))
        # per-constraint slot buffers
        self._capacities: list[float] = [0.0] * m
        self._usages: list[float] = [0.0] * m
        self._cons_live: list[bool] = [False] * m
        self._cons_key: list[object] = [None] * m
        self._cons_vars: list[set[int]] = [set() for _ in range(m)]
        self._cons_free: list[int] = list(range(m - 1, -1, -1))
        self._key_to_slot: dict[object, int] = {}
        # dense numpy coefficient matrix, (constraint slots × variable slots),
        # kept alive across events and sliced per component at solve time
        self._coeffs = np.zeros((m, n), dtype=float)
        # dirty sets: slots whose component must be re-solved
        self._dirty_vars: set[int] = set()
        self._dirty_cons: set[int] = set()
        self._live_count = 0
        #: cumulative counters, exposed for benches and tests
        self.stats = {
            "solves": 0,
            "components_solved": 0,
            "variables_resolved": 0,
            "peak_variables": 0,
        }

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return self._live_count

    @property
    def variable_count(self) -> int:
        """Number of live variables."""
        return len(self)

    @property
    def constraint_count(self) -> int:
        """Number of live (interned) constraints."""
        return len(self._key_to_slot)

    def value(self, vid: int) -> float:
        """Current allocation of variable ``vid``."""
        self._check_live(vid)
        return float(self._values[vid])

    def payload(self, vid: int) -> object:
        self._check_live(vid)
        return self._var_payload[vid]

    def constraint_usage(self, key: object) -> float:
        """Current consumption on the constraint interned under ``key``."""
        slot = self._key_to_slot.get(key)
        if slot is None:
            raise MaxMinError(f"no live constraint for key {key!r}")
        return float(self._usages[slot])

    def constraint_capacity(self, key: object) -> float:
        slot = self._key_to_slot.get(key)
        if slot is None:
            raise MaxMinError(f"no live constraint for key {key!r}")
        return float(self._capacities[slot])

    def allocations(self) -> list[tuple[object, float]]:
        """``(payload, value)`` for every live variable (slot order)."""
        return [
            (self._var_payload[v], self._values[v])
            for v, live in enumerate(self._var_live)
            if live
        ]

    def is_feasible(self, tolerance: float = 1e-6) -> bool:
        """True when no live constraint is over-consumed."""
        return all(
            self._usages[c] <= self._capacities[c] * (1.0 + tolerance)
            for c, live in enumerate(self._cons_live)
            if live
        )

    def _check_live(self, vid: int) -> None:
        if not (0 <= vid < len(self._var_live)) or not self._var_live[vid]:
            raise MaxMinError(f"variable #{vid} is not live in this system")

    # -- growth --------------------------------------------------------------

    def _grow_vars(self) -> None:
        old = len(self._weights)
        new = old * 2
        self._weights.extend([1.0] * (new - old))
        self._bounds.extend([math.inf] * (new - old))
        self._values.extend([0.0] * (new - old))
        self._var_live.extend([False] * (new - old))
        self._var_payload.extend([None] * (new - old))
        self._var_uses.extend([] for _ in range(new - old))
        coeffs = np.zeros((self._coeffs.shape[0], new), dtype=float)
        coeffs[:, :old] = self._coeffs
        self._coeffs = coeffs
        self._var_free.extend(range(new - 1, old - 1, -1))

    def _grow_cons(self) -> None:
        old = len(self._capacities)
        new = old * 2
        self._capacities.extend([0.0] * (new - old))
        self._usages.extend([0.0] * (new - old))
        self._cons_live.extend([False] * (new - old))
        self._cons_key.extend([None] * (new - old))
        self._cons_vars.extend(set() for _ in range(new - old))
        coeffs = np.zeros((new, self._coeffs.shape[1]), dtype=float)
        coeffs[:old, :] = self._coeffs
        self._coeffs = coeffs
        self._cons_free.extend(range(new - 1, old - 1, -1))

    # -- mutation ------------------------------------------------------------

    def _intern_constraint(self, key: object, capacity: float) -> int:
        slot = self._key_to_slot.get(key)
        if slot is not None:
            if self._capacities[slot] != capacity:
                # capacity changed under us (link recalibration): adopt the
                # new value and force the component to re-solve
                self._capacities[slot] = capacity
                self._dirty_cons.add(slot)
            return slot
        if not (capacity > 0.0) or not math.isfinite(capacity):
            raise MaxMinError(
                f"constraint (key={key!r}): capacity must be positive and "
                f"finite, got {capacity}"
            )
        if not self._cons_free:
            self._grow_cons()
        slot = self._cons_free.pop()
        self._capacities[slot] = float(capacity)
        self._usages[slot] = 0.0
        self._cons_live[slot] = True
        self._cons_key[slot] = key
        self._cons_vars[slot].clear()
        self._key_to_slot[key] = slot
        return slot

    def add_variable(
        self,
        weight: float,
        bound: Optional[float] = None,
        payload: object = None,
        usages: Iterable[tuple[object, float, float]] = (),
    ) -> int:
        """Register a flow; returns its variable id (stable until removal).

        ``usages`` lists ``(constraint key, capacity, coefficient)`` triples:
        the constraint identified by ``key`` is created on first use with
        ``capacity`` and shared (by key identity) with every other variable
        naming it.  Duplicate keys accumulate their coefficients (a route
        crossing one SHARED link in both directions consumes twice).
        """
        if not (weight > 0.0) or not math.isfinite(weight):
            raise MaxMinError(
                f"variable (payload={payload!r}): weight must be positive "
                f"and finite, got {weight}"
            )
        if bound is None or (math.isinf(bound) and bound > 0):
            bound_value = math.inf
        elif bound <= 0 or not math.isfinite(bound):
            raise MaxMinError(
                f"variable (payload={payload!r}): bound must be positive, "
                f"got {bound}"
            )
        else:
            bound_value = float(bound)
        # aggregate duplicate keys before touching any state
        aggregated: dict[object, list[float]] = {}
        for key, capacity, coefficient in usages:
            if coefficient <= 0:
                raise MaxMinError(
                    f"coefficient must be positive, got {coefficient} "
                    f"(constraint key={key!r}, variable payload={payload!r})"
                )
            if key in aggregated:
                aggregated[key][1] += float(coefficient)
            else:
                aggregated[key] = [float(capacity), float(coefficient)]

        return self.add_variable_unchecked(
            float(weight), bound_value, payload,
            tuple(
                (key, capacity, coefficient)
                for key, (capacity, coefficient) in aggregated.items()
            ),
        )

    def add_variable_unchecked(
        self,
        weight: float,
        bound: float,
        payload: object,
        usages: tuple[tuple[object, float, float], ...],
    ) -> int:
        """Hot-path :meth:`add_variable` without validation or aggregation.

        The caller (the simulation engine, whose usages come pre-aggregated
        from :meth:`NetworkModel.sharing_usages`) guarantees ``weight > 0``,
        ``bound > 0`` (``inf`` for unbounded), positive coefficients and
        distinct constraint keys.
        """
        if not self._var_free:
            self._grow_vars()
        vid = self._var_free.pop()
        self._weights[vid] = weight
        self._bounds[vid] = bound
        self._values[vid] = 0.0
        self._var_live[vid] = True
        self._var_payload[vid] = payload
        uses = self._var_uses[vid]
        uses.clear()
        cons_vars = self._cons_vars
        dirty_cons = self._dirty_cons
        for key, capacity, coefficient in usages:
            slot = self._intern_constraint(key, capacity)
            # note: _intern_constraint may grow (and replace) _coeffs
            self._coeffs[slot, vid] = coefficient
            cons_vars[slot].add(vid)
            uses.append((slot, coefficient))
            dirty_cons.add(slot)
        self._dirty_vars.add(vid)
        self._live_count += 1
        if self._live_count > self.stats["peak_variables"]:
            self.stats["peak_variables"] = self._live_count
        return vid

    def remove_variable(self, vid: int) -> None:
        """Withdraw a flow; its constraints' components become dirty and
        constraints left without any variable are freed."""
        self._check_live(vid)
        for slot, _coeff in self._var_uses[vid]:
            self._coeffs[slot, vid] = 0.0
            members = self._cons_vars[slot]
            members.discard(vid)
            if members:
                self._dirty_cons.add(slot)
            else:
                # last user gone: free the constraint slot
                self._cons_live[slot] = False
                self._usages[slot] = 0.0
                del self._key_to_slot[self._cons_key[slot]]
                self._cons_key[slot] = None
                self._dirty_cons.discard(slot)
                self._cons_free.append(slot)
        self._var_uses[vid].clear()
        self._var_live[vid] = False
        self._var_payload[vid] = None
        self._values[vid] = 0.0
        self._dirty_vars.discard(vid)
        self._var_free.append(vid)
        self._live_count -= 1

    # -- solving -------------------------------------------------------------

    def _component_from(self, seed_vars: list[int], seed_cons: list[int],
                        seen_vars: set[int], seen_cons: set[int]) -> tuple[list[int], list[int]]:
        """Collect the connected component containing the seeds (BFS over the
        bipartite variable/constraint graph)."""
        comp_vars: list[int] = []
        comp_cons: list[int] = []
        stack_v = [v for v in seed_vars if v not in seen_vars]
        stack_c = [c for c in seed_cons if c not in seen_cons]
        seen_vars.update(stack_v)
        seen_cons.update(stack_c)
        while stack_v or stack_c:
            while stack_v:
                v = stack_v.pop()
                comp_vars.append(v)
                for slot, _coeff in self._var_uses[v]:
                    if slot not in seen_cons:
                        seen_cons.add(slot)
                        stack_c.append(slot)
            while stack_c:
                c = stack_c.pop()
                comp_cons.append(c)
                for v in self._cons_vars[c]:
                    if v not in seen_vars:
                        seen_vars.add(v)
                        stack_v.append(v)
        return comp_vars, comp_cons

    def _solve_component(self, comp_vars: list[int], comp_cons: list[int]) -> None:
        if len(comp_vars) == 1:
            # scalar fast path: a lone variable takes the minimum of its bound
            # and its constraints' full capacity — no numpy round-trip.  This
            # is the common case on clusters where concurrent flows touch
            # disjoint NIC links (every flow is its own component).
            vid = comp_vars[0]
            value = self._bounds[vid]
            uses = self._var_uses[vid]
            for slot, coeff in uses:
                capacity = self._capacities[slot] / coeff
                if capacity < value:
                    value = capacity
            self._values[vid] = value
            for slot, coeff in uses:
                self._usages[slot] = value * coeff
            return
        comp_vars = sorted(comp_vars)
        weights = np.array([self._weights[v] for v in comp_vars], dtype=float)
        bounds = np.array([self._bounds[v] for v in comp_vars], dtype=float)
        if comp_cons:
            comp_cons = sorted(comp_cons)
            vi = np.array(comp_vars, dtype=np.intp)
            ci = np.array(comp_cons, dtype=np.intp)
            incidence = self._coeffs[np.ix_(ci, vi)]
            capacities = np.array([self._capacities[c] for c in comp_cons], dtype=float)
        else:
            incidence = np.zeros((0, len(comp_vars)), dtype=float)
            capacities = np.zeros(0, dtype=float)
        values, usage = progressive_fill(weights, bounds, incidence, capacities)
        for v, value in zip(comp_vars, values.tolist()):
            self._values[v] = value
        for c, used in zip(comp_cons, usage.tolist()):
            self._usages[c] = used

    def solve(self, full: bool = False) -> list[tuple[object, float]]:
        """Re-solve every dirty connected component (all of them if ``full``).

        Returns ``(payload, value)`` for each re-solved variable; variables in
        untouched components are not listed (their allocation is unchanged).
        """
        if full:
            dirty_vars = [v for v, live in enumerate(self._var_live) if live]
            dirty_cons = [c for c, live in enumerate(self._cons_live) if live]
        else:
            dirty_vars = sorted(v for v in self._dirty_vars if self._var_live[v])
            dirty_cons = sorted(c for c in self._dirty_cons if self._cons_live[c])
        self._dirty_vars.clear()
        self._dirty_cons.clear()
        if not dirty_vars and not dirty_cons:
            self.stats["solves"] += 1
            return []

        seen_vars: set[int] = set()
        seen_cons: set[int] = set()
        resolved: list[int] = []
        n_components = 0
        cons_vars = self._cons_vars
        for seed in dirty_vars:
            if seed in seen_vars:
                continue
            uses = self._var_uses[seed]
            if all(len(cons_vars[slot]) == 1 for slot, _coeff in uses):
                # singleton component: the variable shares no constraint —
                # solve it with the scalar path, no BFS
                seen_vars.add(seed)
                seen_cons.update(slot for slot, _coeff in uses)
                self._solve_component([seed], [])
                resolved.append(seed)
                n_components += 1
                continue
            comp_vars, comp_cons = self._component_from([seed], [], seen_vars, seen_cons)
            self._solve_component(comp_vars, comp_cons)
            resolved.extend(comp_vars)
            n_components += 1
        for seed in dirty_cons:
            if seed in seen_cons:
                continue
            comp_vars, comp_cons = self._component_from([], [seed], seen_vars, seen_cons)
            self._solve_component(comp_vars, comp_cons)
            resolved.extend(comp_vars)
            n_components += 1

        self.stats["solves"] += 1
        self.stats["components_solved"] += n_components
        self.stats["variables_resolved"] += len(resolved)
        return [(self._var_payload[v], self._values[v]) for v in sorted(resolved)]
