"""Bounded, weighted max-min fairness solver (SimGrid's ``lmm`` rebuilt).

The flow-level TCP model of Casanova & Marchal (2002) allocates bandwidth by
*weighted max-min fairness*: all flows raise a common level ``phi`` together,
flow ``i`` receiving rate ``phi / w_i`` (``w_i`` grows with the flow's RTT, so
the share on a shared bottleneck is inversely proportional to RTT — §IV-A of
the paper).  The level rises until either

- a constraint (link capacity) saturates, freezing every flow crossing it, or
- a flow hits its individual rate bound (the ``TCP_gamma`` window cap),

and the process repeats on the remaining flows — the classic *progressive
filling* algorithm, extended with per-variable bounds and per-(variable,
constraint) consumption coefficients (a route may traverse one SHARED link in
both directions).

Solved instances hold:

- ``Variable.value`` — the allocated rate,
- ``Constraint.usage`` — the total consumption on the constraint.

The solver is numpy-vectorised over constraints and variables; each iteration
freezes at least one variable or constraint, so at most ``n + m`` passes run.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

_EPS = 1e-12


class MaxMinError(Exception):
    """Raised on invalid solver usage (non-positive capacity/weight, …)."""


class Variable:
    """One allocation variable (a flow's rate)."""

    __slots__ = ("index", "weight", "bound", "value", "payload")

    def __init__(self, index: int, weight: float, bound: Optional[float], payload: object) -> None:
        self.index = index
        self.weight = weight
        self.bound = bound
        self.value = 0.0
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable(#{self.index}, w={self.weight:.4g}, bound={self.bound}, value={self.value:.4g})"


class Constraint:
    """One capacity constraint (a link direction's available bandwidth)."""

    __slots__ = ("index", "capacity", "usage", "payload")

    def __init__(self, index: int, capacity: float, payload: object) -> None:
        self.index = index
        self.capacity = capacity
        self.usage = 0.0
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constraint(#{self.index}, cap={self.capacity:.4g}, usage={self.usage:.4g})"


class MaxMinSystem:
    """A linear max-min system: build variables/constraints, then solve."""

    def __init__(self) -> None:
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        # (constraint index, variable index) -> coefficient
        self._coeffs: dict[tuple[int, int], float] = {}

    def new_variable(
        self,
        weight: float,
        bound: Optional[float] = None,
        payload: object = None,
    ) -> Variable:
        """Add a variable with fairness weight ``weight`` (> 0) and optional
        rate ``bound`` (> 0 or None for unbounded)."""
        if not (weight > 0.0) or not math.isfinite(weight):
            raise MaxMinError(f"variable weight must be positive and finite: {weight}")
        if bound is not None:
            if bound <= 0 or not math.isfinite(bound):
                if bound is not None and math.isinf(bound) and bound > 0:
                    bound = None
                else:
                    raise MaxMinError(f"variable bound must be positive: {bound}")
        var = Variable(len(self.variables), float(weight), bound, payload)
        self.variables.append(var)
        return var

    def new_constraint(self, capacity: float, payload: object = None) -> Constraint:
        """Add a capacity constraint (> 0)."""
        if not (capacity > 0.0) or not math.isfinite(capacity):
            raise MaxMinError(f"constraint capacity must be positive and finite: {capacity}")
        cons = Constraint(len(self.constraints), float(capacity), payload)
        self.constraints.append(cons)
        return cons

    def expand(self, constraint: Constraint, variable: Variable, coefficient: float = 1.0) -> None:
        """Make ``variable`` consume ``coefficient`` times its rate on
        ``constraint``.  Repeated expansion accumulates (a route crossing a
        SHARED link twice consumes twice)."""
        if coefficient <= 0:
            raise MaxMinError(f"coefficient must be positive: {coefficient}")
        key = (constraint.index, variable.index)
        self._coeffs[key] = self._coeffs.get(key, 0.0) + float(coefficient)

    def solve(self) -> None:
        """Run progressive filling; fills ``Variable.value``/``Constraint.usage``."""
        n = len(self.variables)
        m = len(self.constraints)
        for cons in self.constraints:
            cons.usage = 0.0
        if n == 0:
            return

        weights = np.array([v.weight for v in self.variables], dtype=float)
        bounds = np.array(
            [v.bound if v.bound is not None else np.inf for v in self.variables],
            dtype=float,
        )
        inv_w = 1.0 / weights

        if m:
            rows = np.empty(len(self._coeffs), dtype=np.intp)
            cols = np.empty(len(self._coeffs), dtype=np.intp)
            vals = np.empty(len(self._coeffs), dtype=float)
            for k, ((ci, vi), coeff) in enumerate(self._coeffs.items()):
                rows[k], cols[k], vals[k] = ci, vi, coeff
            # dense incidence is fine at our scale (hundreds x hundreds)
            incidence = np.zeros((m, n), dtype=float)
            incidence[rows, cols] = vals
            remaining = np.array([c.capacity for c in self.constraints], dtype=float)
        else:
            incidence = np.zeros((0, n), dtype=float)
            remaining = np.zeros(0, dtype=float)

        active = np.ones(n, dtype=bool)
        cons_active = np.ones(m, dtype=bool)
        values = np.zeros(n, dtype=float)
        phi = 0.0

        for _ in range(n + m + 1):
            if not active.any():
                break
            active_inv_w = np.where(active, inv_w, 0.0)
            # consumption per unit of additional level, per constraint
            drain = incidence @ active_inv_w if m else np.zeros(0)
            relevant = cons_active & (drain > _EPS)
            # level increase that saturates each relevant constraint
            with np.errstate(divide="ignore", invalid="ignore"):
                dphi_cons = np.where(relevant, remaining / np.where(drain > 0, drain, 1.0), np.inf)
            # level at which each active bounded variable tops out
            dphi_vars = np.where(active, bounds * weights - phi, np.inf)
            dphi_vars = np.where(dphi_vars < 0, 0.0, dphi_vars)

            best_cons = dphi_cons.min() if m else np.inf
            best_var = dphi_vars.min()
            dphi = min(best_cons, best_var)
            if not np.isfinite(dphi):
                # no constraint and no bound applies: unbounded variables —
                # treat as "infinitely fast" (no capacity anywhere on route)
                values[active] = np.inf
                active[:] = False
                break

            phi += dphi
            if m:
                remaining = remaining - dphi * drain
            # freeze variables at their bound
            hit_bound = active & (bounds * weights - phi <= _EPS * max(phi, 1.0))
            # freeze constraints that saturated (and their variables)
            if m:
                saturated = relevant & (remaining <= _EPS * np.array([c.capacity for c in self.constraints]))
                if saturated.any():
                    # any active variable with positive coefficient on a
                    # saturated constraint freezes at the current level
                    involved = (incidence[saturated] > 0).any(axis=0)
                    hit_bound = hit_bound | (active & involved)
                    cons_active &= ~saturated
            if not hit_bound.any():
                # numerical safety: force-freeze the variable closest to its
                # bound or the constraint-minimising one to guarantee progress
                hit_bound = active.copy()
            values[hit_bound] = np.minimum(phi * inv_w[hit_bound], bounds[hit_bound])
            active &= ~hit_bound

        for var, value in zip(self.variables, values):
            var.value = float(value)
        if m:
            usage = incidence @ np.where(np.isfinite(values), values, 0.0)
            for cons, used in zip(self.constraints, usage):
                cons.usage = float(used)

    # -- diagnostics --------------------------------------------------------

    def is_feasible(self, tolerance: float = 1e-6) -> bool:
        """True when no constraint is over-consumed (relative tolerance)."""
        return all(
            cons.usage <= cons.capacity * (1.0 + tolerance) for cons in self.constraints
        )
