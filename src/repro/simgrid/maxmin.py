"""Bounded, weighted max-min fairness solver (SimGrid's ``lmm`` rebuilt).

The flow-level TCP model of Casanova & Marchal (2002) allocates bandwidth by
*weighted max-min fairness*: all flows raise a common level ``phi`` together,
flow ``i`` receiving rate ``phi / w_i`` (``w_i`` grows with the flow's RTT, so
the share on a shared bottleneck is inversely proportional to RTT — §IV-A of
the paper).  The level rises until either

- a constraint (link capacity) saturates, freezing every flow crossing it, or
- a flow hits its individual rate bound (the ``TCP_gamma`` window cap),

and the process repeats on the remaining flows — the classic *progressive
filling* algorithm, extended with per-variable bounds and per-(variable,
constraint) consumption coefficients (a route may traverse one SHARED link in
both directions).

Solved instances hold:

- ``Variable.value`` — the allocated rate,
- ``Constraint.usage`` — the total consumption on the constraint.

Two front-ends share the progressive-filling kernels:

- :class:`MaxMinSystem` — build once, solve once (the historical API, kept as
  the ``full_resolve`` verification path),
- :class:`SharingSystem` — a *persistent arena* for the event loop: variables
  come and go as activities start and finish, coefficient buffers stay alive
  across events (grow-only, free-list slot reuse, periodic compaction), and
  :meth:`SharingSystem.solve` only re-solves the connected components touched
  since the last call (dirty-set tracking).  Untouched components keep their
  previous allocation, which is exact: progressive filling never moves rate
  between disconnected components.

``SharingSystem.solve`` runs one of two equivalent paths:

- the **batched vectorized kernel** (default): all valid coefficients live in
  flat COO triplet arrays (constraint slot, variable slot, coefficient) with a
  per-variable *generation* stamp — removing a variable bumps its generation,
  invalidating its triplets in O(1) without touching the arrays.  A solve
  discovers connected components by whole-array label propagation over the
  triplets, picks the components containing dirty slots, solves every
  single-variable component in one scalar-free bulk pass, and runs all
  remaining components through :func:`progressive_fill_batched` — one
  progressive-filling iteration advances *every* component simultaneously
  (per-constraint drains via ``np.bincount`` segment sums, per-component
  levels via ``np.minimum.reduceat``),
- the **scalar path** (``solve(vectorized=False)``): the PR-1 per-component
  Python walk, retained as the verification escape hatch exactly the way
  ``full_resolve`` was retained for the engine.

Long-lived arenas (days-long metrology loops) call :meth:`SharingSystem.
compact` — or let :meth:`maybe_compact` decide — to defragment the free lists
and drop stale triplets; live variables get new contiguous ids (the returned
remap), and ``allocations()`` order is preserved.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np

_EPS = 1e-12

_EMPTY_IDS = np.zeros(0, dtype=np.intp)
_EMPTY_VALS = np.zeros(0, dtype=float)


class MaxMinError(Exception):
    """Raised on invalid solver usage (non-positive capacity/weight, …)."""


class Variable:
    """One allocation variable (a flow's rate)."""

    __slots__ = ("index", "weight", "bound", "value", "payload")

    def __init__(self, index: int, weight: float, bound: Optional[float], payload: object) -> None:
        self.index = index
        self.weight = weight
        self.bound = bound
        self.value = 0.0
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable(#{self.index}, w={self.weight:.4g}, bound={self.bound}, value={self.value:.4g})"


class Constraint:
    """One capacity constraint (a link direction's available bandwidth)."""

    __slots__ = ("index", "capacity", "usage", "payload")

    def __init__(self, index: int, capacity: float, payload: object) -> None:
        self.index = index
        self.capacity = capacity
        self.usage = 0.0
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constraint(#{self.index}, cap={self.capacity:.4g}, usage={self.usage:.4g})"


class MaxMinSystem:
    """A linear max-min system: build variables/constraints, then solve."""

    def __init__(self) -> None:
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        # (constraint index, variable index) -> coefficient
        self._coeffs: dict[tuple[int, int], float] = {}

    def new_variable(
        self,
        weight: float,
        bound: Optional[float] = None,
        payload: object = None,
    ) -> Variable:
        """Add a variable with fairness weight ``weight`` (> 0) and optional
        rate ``bound`` (> 0 or None for unbounded)."""
        index = len(self.variables)
        if not (weight > 0.0) or not math.isfinite(weight):
            raise MaxMinError(
                f"variable #{index} (payload={payload!r}): weight must be "
                f"positive and finite, got {weight}"
            )
        if bound is not None:
            if bound <= 0 or not math.isfinite(bound):
                if bound is not None and math.isinf(bound) and bound > 0:
                    bound = None
                else:
                    raise MaxMinError(
                        f"variable #{index} (payload={payload!r}): bound must "
                        f"be positive, got {bound}"
                    )
        var = Variable(index, float(weight), bound, payload)
        self.variables.append(var)
        return var

    def new_constraint(self, capacity: float, payload: object = None) -> Constraint:
        """Add a capacity constraint (> 0)."""
        index = len(self.constraints)
        if not (capacity > 0.0) or not math.isfinite(capacity):
            raise MaxMinError(
                f"constraint #{index} (payload={payload!r}): capacity must be "
                f"positive and finite, got {capacity}"
            )
        cons = Constraint(index, float(capacity), payload)
        self.constraints.append(cons)
        return cons

    def expand(self, constraint: Constraint, variable: Variable, coefficient: float = 1.0) -> None:
        """Make ``variable`` consume ``coefficient`` times its rate on
        ``constraint``.  Repeated expansion accumulates (a route crossing a
        SHARED link twice consumes twice)."""
        if coefficient <= 0:
            raise MaxMinError(
                f"coefficient must be positive, got {coefficient} "
                f"(constraint #{constraint.index} payload={constraint.payload!r}, "
                f"variable #{variable.index} payload={variable.payload!r})"
            )
        key = (constraint.index, variable.index)
        self._coeffs[key] = self._coeffs.get(key, 0.0) + float(coefficient)

    def solve(self) -> None:
        """Run progressive filling; fills ``Variable.value``/``Constraint.usage``."""
        n = len(self.variables)
        m = len(self.constraints)
        for cons in self.constraints:
            cons.usage = 0.0
        if n == 0:
            return

        weights = np.array([v.weight for v in self.variables], dtype=float)
        bounds = np.array(
            [v.bound if v.bound is not None else np.inf for v in self.variables],
            dtype=float,
        )

        if m:
            rows = np.empty(len(self._coeffs), dtype=np.intp)
            cols = np.empty(len(self._coeffs), dtype=np.intp)
            vals = np.empty(len(self._coeffs), dtype=float)
            for k, ((ci, vi), coeff) in enumerate(self._coeffs.items()):
                rows[k], cols[k], vals[k] = ci, vi, coeff
            # dense incidence is fine at our scale (hundreds x hundreds)
            incidence = np.zeros((m, n), dtype=float)
            incidence[rows, cols] = vals
            capacities = np.array([c.capacity for c in self.constraints], dtype=float)
        else:
            incidence = np.zeros((0, n), dtype=float)
            capacities = np.zeros(0, dtype=float)

        values, usage = progressive_fill(weights, bounds, incidence, capacities)

        for var, value in zip(self.variables, values):
            var.value = float(value)
        for cons, used in zip(self.constraints, usage):
            cons.usage = float(used)

    # -- diagnostics --------------------------------------------------------

    def is_feasible(self, tolerance: float = 1e-6) -> bool:
        """True when no constraint is over-consumed.

        The slack is *relative to each constraint's capacity*
        (``usage - capacity <= tolerance * capacity``), so a near-zero-capacity
        constraint gets a proportionally tiny allowance instead of inheriting
        slack sized for big links.  A variable that touches any constraint yet
        holds an infinite allocation is reported infeasible regardless of the
        usage sums: ``inf`` rates are excluded from usage accounting, so they
        would otherwise pass silently.
        """
        for cons in self.constraints:
            if cons.usage - cons.capacity > tolerance * cons.capacity:
                return False
        constrained = {vi for (_ci, vi) in self._coeffs}
        for var in self.variables:
            if var.index in constrained and not math.isfinite(var.value):
                return False
        return True


def progressive_fill(
    weights: np.ndarray,
    bounds: np.ndarray,
    incidence: np.ndarray,
    capacities: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """The progressive-filling kernel shared by both solver front-ends.

    ``weights``/``bounds`` have one entry per variable (``inf`` bound means
    unbounded), ``incidence`` is the dense ``(constraints × variables)``
    coefficient matrix, ``capacities`` one entry per constraint.  Returns
    ``(values, usage)``: the allocated rate per variable and the resulting
    consumption per constraint.
    """
    n = int(weights.size)
    m = int(capacities.size)
    inv_w = 1.0 / weights
    remaining = capacities.astype(float, copy=True)

    active = np.ones(n, dtype=bool)
    cons_active = np.ones(m, dtype=bool)
    values = np.zeros(n, dtype=float)
    phi = 0.0

    for _ in range(n + m + 1):
        if not active.any():
            break
        active_inv_w = np.where(active, inv_w, 0.0)
        # consumption per unit of additional level, per constraint.  Any
        # strictly positive drain keeps the constraint relevant: comparing
        # against an absolute epsilon here would let a huge-weight variable
        # (drain underflowing the epsilon) sail past its capacity to an
        # unbounded allocation.
        drain = incidence @ active_inv_w if m else np.zeros(0)
        relevant = cons_active & (drain > 0.0)
        # level increase that saturates each relevant constraint
        with np.errstate(divide="ignore", invalid="ignore"):
            dphi_cons = np.where(relevant, remaining / np.where(drain > 0, drain, 1.0), np.inf)
        # level at which each active bounded variable tops out
        dphi_vars = np.where(active, bounds * weights - phi, np.inf)
        dphi_vars = np.where(dphi_vars < 0, 0.0, dphi_vars)

        best_cons = dphi_cons.min() if m else np.inf
        best_var = dphi_vars.min()
        dphi = min(best_cons, best_var)
        if not np.isfinite(dphi):
            # no constraint and no bound applies: unbounded variables —
            # treat as "infinitely fast" (no capacity anywhere on route)
            values[active] = np.inf
            active[:] = False
            break

        phi += dphi
        if m:
            remaining = remaining - dphi * drain
        # freeze variables at their bound
        hit_bound = active & (bounds * weights - phi <= _EPS * max(phi, 1.0))
        # freeze constraints that saturated (and their variables)
        if m:
            saturated = relevant & (remaining <= _EPS * capacities)
            if saturated.any():
                # any active variable with positive coefficient on a
                # saturated constraint freezes at the current level
                involved = (incidence[saturated] > 0).any(axis=0)
                hit_bound = hit_bound | (active & involved)
                cons_active &= ~saturated
        if not hit_bound.any():
            # numerical safety: force-freeze the variable closest to its
            # bound or the constraint-minimising one to guarantee progress
            hit_bound = active.copy()
        values[hit_bound] = np.minimum(phi * inv_w[hit_bound], bounds[hit_bound])
        active &= ~hit_bound

    if m:
        usage = incidence @ np.where(np.isfinite(values), values, 0.0)
    else:
        usage = np.zeros(0, dtype=float)
    return values, usage


def progressive_fill_batched(
    weights: np.ndarray,
    bounds: np.ndarray,
    capacities: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    coeffs: np.ndarray,
    comp_of_var: np.ndarray,
    comp_of_cons: np.ndarray,
    n_comps: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Progressive filling over many *independent* components at once.

    The coefficient matrix arrives as COO triplets (``rows`` into
    ``capacities``, ``cols`` into ``weights``/``bounds``), and every variable
    and constraint carries a component id (``comp_of_var``/``comp_of_cons``).
    Each iteration advances *all* components by their own level increment:
    per-constraint drains are segment sums (``np.bincount``), per-component
    level increments are segment minima (``np.minimum.reduceat``), and the
    freeze decisions (bound hit, constraint saturated, per-component forced
    freeze) are taken simultaneously across components — each component makes
    exactly the choices the scalar kernel would make for it alone.

    Preconditions (the :class:`SharingSystem` gather guarantees them):
    variables and constraints are grouped by component id (non-decreasing),
    and every component has at least one variable and one constraint.
    Returns ``(values, usage)`` in the given variable/constraint order.
    """
    n = int(weights.size)
    m = int(capacities.size)
    inv_w = 1.0 / weights
    remaining = capacities.astype(float, copy=True)

    active = np.ones(n, dtype=bool)
    cons_active = np.ones(m, dtype=bool)
    values = np.zeros(n, dtype=float)
    phi = np.zeros(n_comps, dtype=float)

    # segment starts for reduceat (components are contiguous and non-empty)
    comp_ids = np.arange(n_comps)
    var_starts = np.searchsorted(comp_of_var, comp_ids)
    cons_starts = np.searchsorted(comp_of_cons, comp_ids)
    bw = bounds * weights

    for _ in range(n + m + 1):
        if not active.any():
            break
        active_inv_w = np.where(active, inv_w, 0.0)
        # segment-summed drains; strictly positive keeps a constraint relevant
        # (same absolute-epsilon fix as the scalar kernel)
        drain = np.bincount(rows, weights=coeffs * active_inv_w[cols], minlength=m)
        relevant = cons_active & (drain > 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            dphi_cons = np.where(relevant, remaining / np.where(drain > 0, drain, 1.0), np.inf)
        phi_v = phi[comp_of_var]
        dphi_vars = np.where(active, bw - phi_v, np.inf)
        dphi_vars = np.where(dphi_vars < 0, 0.0, dphi_vars)

        # per-component level increment: min over the component's constraints
        # and bounded variables
        dphi = np.minimum(
            np.minimum.reduceat(dphi_cons, cons_starts),
            np.minimum.reduceat(dphi_vars, var_starts),
        )
        act_per_comp = np.bincount(comp_of_var, weights=active, minlength=n_comps)
        comp_active = act_per_comp > 0
        unbounded = comp_active & ~np.isfinite(dphi)
        if unbounded.any():
            # components with no applicable constraint or bound left
            ub_vars = active & unbounded[comp_of_var]
            values[ub_vars] = np.inf
            active &= ~ub_vars
        dphi_eff = np.where(comp_active & np.isfinite(dphi), dphi, 0.0)

        phi += dphi_eff
        remaining -= dphi_eff[comp_of_cons] * drain
        phi_v = phi[comp_of_var]
        hit_bound = active & (bw - phi_v <= _EPS * np.maximum(phi_v, 1.0))
        saturated = relevant & (remaining <= _EPS * capacities)
        if saturated.any():
            involved = np.zeros(n, dtype=bool)
            involved[cols[saturated[rows]]] = True
            hit_bound |= active & involved
            cons_active &= ~saturated
        # per-component numerical safety: a component whose iteration froze
        # nothing force-freezes all its active variables (scalar kernel's
        # "if not hit_bound.any()" taken component-wise)
        frozen = np.bincount(comp_of_var, weights=hit_bound, minlength=n_comps)
        stuck = comp_active & ~unbounded & (frozen == 0)
        if stuck.any():
            hit_bound |= active & stuck[comp_of_var]
        values[hit_bound] = np.minimum(phi_v[hit_bound] * inv_w[hit_bound], bounds[hit_bound])
        active &= ~hit_bound

    finite = np.where(np.isfinite(values), values, 0.0)
    usage = np.bincount(rows, weights=coeffs * finite[cols], minlength=m)
    return values, usage


def _pow2_at_least(n: int) -> int:
    size = 1
    while size < n:
        size *= 2
    return size


def _label_components_bfs(n_vars: int, n_cons: int,
                          iv: np.ndarray, ic: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Exact bipartite component labels by Python BFS (fallback for graphs
    whose diameter defeats the bounded label-propagation loop)."""
    var_adj: list[list[int]] = [[] for _ in range(n_vars)]
    cons_adj: list[list[int]] = [[] for _ in range(n_cons)]
    for v, c in zip(iv.tolist(), ic.tolist()):
        var_adj[v].append(c)
        cons_adj[c].append(v)
    lab_v = np.full(n_vars, -1, dtype=np.intp)
    lab_c = np.full(n_cons, -1, dtype=np.intp)
    label = 0
    for start in range(n_vars):
        if lab_v[start] >= 0:
            continue
        lab_v[start] = label
        stack = [start]
        while stack:
            v = stack.pop()
            for c in var_adj[v]:
                if lab_c[c] < 0:
                    lab_c[c] = label
                    for v2 in cons_adj[c]:
                        if lab_v[v2] < 0:
                            lab_v[v2] = label
                            stack.append(v2)
        label += 1
    return lab_v, lab_c


def _positions_in(sorted_arr: np.ndarray, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(positions, found)`` of ``queries`` in a sorted unique array."""
    if sorted_arr.size == 0:
        return np.zeros(queries.size, dtype=np.intp), np.zeros(queries.size, dtype=bool)
    pos = np.searchsorted(sorted_arr, queries)
    pos = np.minimum(pos, sorted_arr.size - 1)
    return pos, sorted_arr[pos] == queries


class SharingSystem:
    """Persistent incremental arena for event-loop resource sharing.

    Unlike :class:`MaxMinSystem` (rebuilt from scratch for every solve), a
    ``SharingSystem`` lives across simulation events:

    - :meth:`add_variable` / :meth:`remove_variable` register flows as they
      start and finish; constraints are *interned* by an opaque key (a link
      direction, a host) and reference-counted, disappearing with their last
      variable,
    - numpy slot buffers (weights, bounds, values, capacities) and the flat
      COO triplet store are grow-only with geometric doubling; freed slots go
      to free lists and are reused, and :meth:`compact` defragments after long
      churn,
    - every mutation marks the touched constraints/variables *dirty*; a
      :meth:`solve` call re-runs progressive filling only on the connected
      components reachable from the dirty set.  Untouched components keep
      their previous allocation — exact, since max-min allocations of
      disconnected components are independent.

    ``solve`` returns the ``(payload, value)`` pairs of every re-solved
    variable, which is exactly the set of activities whose rate may have
    changed; :meth:`solve_raw` returns the same information as flat
    ``(vid, value)`` arrays for callers that keep their own vid maps.
    """

    def __init__(self, initial_variables: int = 64, initial_constraints: int = 64,
                 vectorized: bool = True) -> None:
        n = max(1, int(initial_variables))
        m = max(1, int(initial_constraints))
        #: default solve path; ``solve(vectorized=...)`` overrides per call
        self.vectorized = bool(vectorized)
        #: smallest dirty set worth routing through the batched kernel when
        #: the caller leaves the path choice to the instance default: the
        #: kernel's fixed cost (triplet compression, whole-graph component
        #: labeling) beats the scalar walk only on wide re-solves
        self.vectorize_min_dirty = 128
        # per-variable slot buffers
        self._weights = np.ones(n, dtype=float)
        self._bounds = np.full(n, np.inf, dtype=float)
        self._values = np.zeros(n, dtype=float)
        self._var_live = np.zeros(n, dtype=bool)
        # generation stamp per slot: bumped on removal, so triplets recorded
        # for a previous occupant of the slot are invalid by comparison
        self._var_gen = np.zeros(n, dtype=np.int64)
        self._var_payload: list[object] = [None] * n
        self._var_uses: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self._var_free: list[int] = list(range(n - 1, -1, -1))
        # per-constraint slot buffers
        self._capacities = np.zeros(m, dtype=float)
        self._usages = np.zeros(m, dtype=float)
        self._cons_live = np.zeros(m, dtype=bool)
        self._cons_key: list[object] = [None] * m
        self._cons_vars: list[set[int]] = [set() for _ in range(m)]
        self._cons_free: list[int] = list(range(m - 1, -1, -1))
        self._key_to_slot: dict[object, int] = {}
        # coefficients live in the per-variable uses lists (and the triplet
        # store below) — there is no dense matrix, so arena memory stays
        # O(variables + uses) regardless of shape
        # COO triplet store for the vectorized path: committed numpy arrays
        # plus a staging tail of ``(vid, generation, uses)`` records — one
        # cheap append per added variable; expansion into flat triplets is
        # amortised into the next vectorized solve
        self._tr_var = np.zeros(0, dtype=np.intp)
        self._tr_cons = np.zeros(0, dtype=np.intp)
        self._tr_coeff = np.zeros(0, dtype=float)
        self._tr_gen = np.zeros(0, dtype=np.int64)
        self._pend: list[tuple[int, int, list[tuple[int, float]]]] = []
        self._tr_dead = 0
        # dirty sets: slots whose component must be re-solved
        self._dirty_vars: set[int] = set()
        self._dirty_cons: set[int] = set()
        self._live_count = 0
        #: cumulative counters, exposed for benches and tests
        self.stats = {
            "solves": 0,
            "components_solved": 0,
            "variables_resolved": 0,
            "peak_variables": 0,
            "vectorized_solves": 0,
            "compactions": 0,
        }

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return self._live_count

    @property
    def variable_count(self) -> int:
        """Number of live variables."""
        return len(self)

    @property
    def constraint_count(self) -> int:
        """Number of live (interned) constraints."""
        return len(self._key_to_slot)

    @property
    def variable_capacity(self) -> int:
        """Allocated variable slots (live + free), for arena diagnostics."""
        return int(self._weights.size)

    @property
    def constraint_capacity_slots(self) -> int:
        """Allocated constraint slots (live + free), for arena diagnostics."""
        return int(self._capacities.size)

    def value(self, vid: int) -> float:
        """Current allocation of variable ``vid``."""
        self._check_live(vid)
        return float(self._values[vid])

    def payload(self, vid: int) -> object:
        self._check_live(vid)
        return self._var_payload[vid]

    def constraint_usage(self, key: object) -> float:
        """Current consumption on the constraint interned under ``key``."""
        slot = self._key_to_slot.get(key)
        if slot is None:
            raise MaxMinError(f"no live constraint for key {key!r}")
        return float(self._usages[slot])

    def constraint_capacity(self, key: object) -> float:
        slot = self._key_to_slot.get(key)
        if slot is None:
            raise MaxMinError(f"no live constraint for key {key!r}")
        return float(self._capacities[slot])

    def allocations(self) -> list[tuple[object, float]]:
        """``(payload, value)`` for every live variable (slot order)."""
        payloads = self._var_payload
        values = self._values
        return [
            (payloads[int(v)], float(values[v]))
            for v in np.nonzero(self._var_live)[0]
        ]

    def is_feasible(self, tolerance: float = 1e-6) -> bool:
        """True when no live constraint is over-consumed.

        The slack is relative to each constraint's own capacity
        (``usage - capacity <= tolerance * capacity``): a near-zero-capacity
        constraint only tolerates a proportionally tiny overshoot.  An
        infinite allocation on a variable that touches any constraint is
        always infeasible — ``inf`` rates are excluded from usage sums, so
        without this check an underflowed drain could report a saturated
        link as unused.
        """
        live = self._cons_live
        if live.any():
            caps = self._capacities[live]
            if np.any(self._usages[live] - caps > tolerance * caps):
                return False
        bad = self._var_live & ~np.isfinite(self._values)
        if bad.any():
            for v in np.nonzero(bad)[0]:
                if self._var_uses[int(v)]:
                    return False
        return True

    def _check_live(self, vid: int) -> None:
        if not (0 <= vid < self._var_live.size) or not self._var_live[vid]:
            raise MaxMinError(f"variable #{vid} is not live in this system")

    # -- growth --------------------------------------------------------------

    def _grow_vars(self) -> None:
        old = self._weights.size
        new = old * 2
        self._weights = np.concatenate([self._weights, np.ones(old)])
        self._bounds = np.concatenate([self._bounds, np.full(old, np.inf)])
        self._values = np.concatenate([self._values, np.zeros(old)])
        self._var_live = np.concatenate([self._var_live, np.zeros(old, dtype=bool)])
        self._var_gen = np.concatenate([self._var_gen, np.zeros(old, dtype=np.int64)])
        self._var_payload.extend([None] * old)
        self._var_uses.extend([] for _ in range(old))
        self._var_free.extend(range(new - 1, old - 1, -1))

    def _grow_cons(self) -> None:
        old = self._capacities.size
        new = old * 2
        self._capacities = np.concatenate([self._capacities, np.zeros(old)])
        self._usages = np.concatenate([self._usages, np.zeros(old)])
        self._cons_live = np.concatenate([self._cons_live, np.zeros(old, dtype=bool)])
        self._cons_key.extend([None] * old)
        self._cons_vars.extend(set() for _ in range(old))
        self._cons_free.extend(range(new - 1, old - 1, -1))

    # -- mutation ------------------------------------------------------------

    def _intern_constraint(self, key: object, capacity: float) -> int:
        slot = self._key_to_slot.get(key)
        if slot is not None:
            if self._capacities[slot] != capacity:
                # capacity changed under us (link recalibration): adopt the
                # new value and force the component to re-solve
                self._capacities[slot] = capacity
                self._dirty_cons.add(slot)
            return slot
        if not (capacity > 0.0) or not math.isfinite(capacity):
            raise MaxMinError(
                f"constraint (key={key!r}): capacity must be positive and "
                f"finite, got {capacity}"
            )
        if not self._cons_free:
            self._grow_cons()
        slot = self._cons_free.pop()
        self._capacities[slot] = float(capacity)
        self._usages[slot] = 0.0
        self._cons_live[slot] = True
        self._cons_key[slot] = key
        self._cons_vars[slot].clear()
        self._key_to_slot[key] = slot
        return slot

    def add_variable(
        self,
        weight: float,
        bound: Optional[float] = None,
        payload: object = None,
        usages: Iterable[tuple[object, float, float]] = (),
    ) -> int:
        """Register a flow; returns its variable id (stable until removal).

        ``usages`` lists ``(constraint key, capacity, coefficient)`` triples:
        the constraint identified by ``key`` is created on first use with
        ``capacity`` and shared (by key identity) with every other variable
        naming it.  Duplicate keys accumulate their coefficients (a route
        crossing one SHARED link in both directions consumes twice).
        """
        if not (weight > 0.0) or not math.isfinite(weight):
            raise MaxMinError(
                f"variable (payload={payload!r}): weight must be positive "
                f"and finite, got {weight}"
            )
        if bound is None or (math.isinf(bound) and bound > 0):
            bound_value = math.inf
        elif bound <= 0 or not math.isfinite(bound):
            raise MaxMinError(
                f"variable (payload={payload!r}): bound must be positive, "
                f"got {bound}"
            )
        else:
            bound_value = float(bound)
        # aggregate duplicate keys before touching any state
        aggregated: dict[object, list[float]] = {}
        for key, capacity, coefficient in usages:
            if coefficient <= 0:
                raise MaxMinError(
                    f"coefficient must be positive, got {coefficient} "
                    f"(constraint key={key!r}, variable payload={payload!r})"
                )
            if key in aggregated:
                aggregated[key][1] += float(coefficient)
            else:
                aggregated[key] = [float(capacity), float(coefficient)]

        return self.add_variable_unchecked(
            float(weight), bound_value, payload,
            tuple(
                (key, capacity, coefficient)
                for key, (capacity, coefficient) in aggregated.items()
            ),
        )

    def add_variable_unchecked(
        self,
        weight: float,
        bound: float,
        payload: object,
        usages: tuple[tuple[object, float, float], ...],
    ) -> int:
        """Hot-path :meth:`add_variable` without validation or aggregation.

        The caller (the simulation engine, whose usages come pre-aggregated
        from :meth:`NetworkModel.sharing_usages`) guarantees ``weight > 0``,
        ``bound > 0`` (``inf`` for unbounded), positive coefficients and
        distinct constraint keys.
        """
        if not self._var_free:
            self._grow_vars()
        vid = self._var_free.pop()
        self._weights[vid] = weight
        self._bounds[vid] = bound
        self._values[vid] = 0.0
        self._var_live[vid] = True
        self._var_payload[vid] = payload
        # fresh list: staged triplet records may still reference the previous
        # occupant's uses, so the old list must never be mutated in place
        uses: list[tuple[int, float]] = []
        self._var_uses[vid] = uses
        cons_vars = self._cons_vars
        dirty_cons = self._dirty_cons
        for key, capacity, coefficient in usages:
            slot = self._intern_constraint(key, capacity)
            cons_vars[slot].add(vid)
            uses.append((slot, coefficient))
            dirty_cons.add(slot)
        if uses:
            self._pend.append((vid, int(self._var_gen[vid]), uses))
        self._dirty_vars.add(vid)
        self._live_count += 1
        if self._live_count > self.stats["peak_variables"]:
            self.stats["peak_variables"] = self._live_count
        return vid

    def update_variable(
        self,
        vid: int,
        weight: Optional[float] = None,
        bound: Optional[float] = None,
    ) -> None:
        """Retune a live variable's fairness weight and/or rate bound.

        The variable's connected component is re-solved at the next
        :meth:`solve_raw` (the dirty variable seeds the component walk, so
        neighbours sharing its constraints recompute too).  This is the
        time-varying sharing hook: congestion-aware models
        (:mod:`repro.simgrid.tcpfluid`) move a flow's window bound every
        RTT round without re-registering it.  ``None`` leaves a parameter
        unchanged; validation matches :meth:`add_variable`.
        """
        self._check_live(vid)
        if weight is not None:
            if not (weight > 0.0) or not math.isfinite(weight):
                raise MaxMinError(
                    f"variable #{vid}: weight must be positive and finite, "
                    f"got {weight}"
                )
            self._weights[vid] = float(weight)
        if bound is not None:
            if math.isinf(bound) and bound > 0:
                self._bounds[vid] = math.inf
            elif bound <= 0 or not math.isfinite(bound):
                raise MaxMinError(
                    f"variable #{vid}: bound must be positive, got {bound}"
                )
            else:
                self._bounds[vid] = float(bound)
        self._dirty_vars.add(vid)

    def remove_variable(self, vid: int) -> None:
        """Withdraw a flow; its constraints' components become dirty and
        constraints left without any variable are freed."""
        self._check_live(vid)
        uses = self._var_uses[vid]
        for slot, _coeff in uses:
            members = self._cons_vars[slot]
            members.discard(vid)
            if members:
                self._dirty_cons.add(slot)
            else:
                # last user gone: free the constraint slot
                self._cons_live[slot] = False
                self._usages[slot] = 0.0
                del self._key_to_slot[self._cons_key[slot]]
                self._cons_key[slot] = None
                self._dirty_cons.discard(slot)
                self._cons_free.append(slot)
        self._tr_dead += len(uses)
        # replace (don't clear): a staged triplet record may still hold this
        # list; the generation bump below is what invalidates it
        self._var_uses[vid] = []
        # invalidate this slot's triplets in O(1): their recorded generation
        # no longer matches
        self._var_gen[vid] += 1
        self._var_live[vid] = False
        self._var_payload[vid] = None
        self._values[vid] = 0.0
        self._dirty_vars.discard(vid)
        self._var_free.append(vid)
        self._live_count -= 1

    # -- arena hygiene -------------------------------------------------------

    def _commit_triplets(self) -> None:
        if not self._pend:
            return
        pend_var: list[int] = []
        pend_cons: list[int] = []
        pend_coeff: list[float] = []
        pend_gen: list[int] = []
        var_gen = self._var_gen
        for vid, gen, uses in self._pend:
            if gen != var_gen[vid]:
                # added and removed between two vectorized solves: never
                # enters the committed store (it was pre-counted dead)
                self._tr_dead -= len(uses)
                continue
            for slot, coeff in uses:
                pend_var.append(vid)
                pend_cons.append(slot)
                pend_coeff.append(coeff)
                pend_gen.append(gen)
        self._pend.clear()
        if not pend_var:
            return
        self._tr_var = np.concatenate(
            [self._tr_var, np.array(pend_var, dtype=np.intp)])
        self._tr_cons = np.concatenate(
            [self._tr_cons, np.array(pend_cons, dtype=np.intp)])
        self._tr_coeff = np.concatenate(
            [self._tr_coeff, np.array(pend_coeff, dtype=float)])
        self._tr_gen = np.concatenate(
            [self._tr_gen, np.array(pend_gen, dtype=np.int64)])

    def _prune_triplets(self) -> None:
        """Drop triplets whose variable generation went stale."""
        self._commit_triplets()
        valid = self._tr_gen == self._var_gen[self._tr_var]
        self._tr_var = self._tr_var[valid]
        self._tr_cons = self._tr_cons[valid]
        self._tr_coeff = self._tr_coeff[valid]
        self._tr_gen = self._tr_gen[valid]
        self._tr_dead = 0

    def compact(self, min_capacity: int = 64) -> dict[int, int]:
        """Defragment the arena; returns the ``{old vid: new vid}`` remap.

        Live variables and constraints are renumbered onto contiguous slots
        (ascending old-slot order, so :meth:`allocations` order is stable),
        buffers shrink to the next power of two that holds them (at least
        ``min_capacity``), stale triplets are dropped, and all generations
        reset.  Values, usages, capacities, payloads, dirty marks and interned
        keys are preserved exactly — only the ids change.  Callers holding
        vids must apply the returned remap.
        """
        live_v = np.nonzero(self._var_live)[0]
        live_c = np.nonzero(self._cons_live)[0]
        nv = int(live_v.size)
        nc = int(live_c.size)
        ncap = _pow2_at_least(max(int(min_capacity), nv, 1))
        mcap = _pow2_at_least(max(int(min_capacity), nc, 1))
        vmap = np.full(self._weights.size, -1, dtype=np.intp)
        vmap[live_v] = np.arange(nv)
        cmap = np.full(self._capacities.size, -1, dtype=np.intp)
        cmap[live_c] = np.arange(nc)

        # python-side structures first (they read the old buffers)
        new_payload = [self._var_payload[int(v)] for v in live_v] + [None] * (ncap - nv)
        new_uses = [
            [(int(cmap[slot]), coeff) for slot, coeff in self._var_uses[int(v)]]
            for v in live_v
        ] + [[] for _ in range(ncap - nv)]
        new_cons_key = [self._cons_key[int(c)] for c in live_c] + [None] * (mcap - nc)
        new_cons_vars = [
            {int(vmap[v]) for v in self._cons_vars[int(c)]} for c in live_c
        ] + [set() for _ in range(mcap - nc)]
        new_key_to_slot = {key: int(cmap[slot]) for key, slot in self._key_to_slot.items()}
        new_dirty_vars = {int(vmap[v]) for v in self._dirty_vars if self._var_live[v]}
        new_dirty_cons = {int(cmap[c]) for c in self._dirty_cons if self._cons_live[c]}

        def packed(src: np.ndarray, idx: np.ndarray, size: int, fill, dtype) -> np.ndarray:
            out = np.full(size, fill, dtype=dtype)
            out[: idx.size] = src[idx]
            return out

        self._weights = packed(self._weights, live_v, ncap, 1.0, float)
        self._bounds = packed(self._bounds, live_v, ncap, np.inf, float)
        self._values = packed(self._values, live_v, ncap, 0.0, float)
        self._var_live = np.zeros(ncap, dtype=bool)
        self._var_live[:nv] = True
        self._var_gen = np.zeros(ncap, dtype=np.int64)
        self._var_payload = new_payload
        self._var_uses = new_uses
        self._var_free = list(range(ncap - 1, nv - 1, -1))
        self._capacities = packed(self._capacities, live_c, mcap, 0.0, float)
        self._usages = packed(self._usages, live_c, mcap, 0.0, float)
        self._cons_live = np.zeros(mcap, dtype=bool)
        self._cons_live[:nc] = True
        self._cons_key = new_cons_key
        self._cons_vars = new_cons_vars
        self._cons_free = list(range(mcap - 1, nc - 1, -1))
        self._key_to_slot = new_key_to_slot
        self._dirty_vars = new_dirty_vars
        self._dirty_cons = new_dirty_cons

        # rebuild the triplet store from the (remapped) uses
        tr_var: list[int] = []
        tr_cons: list[int] = []
        tr_coeff: list[float] = []
        for new_vid in range(nv):
            for slot, coeff in self._var_uses[new_vid]:
                tr_var.append(new_vid)
                tr_cons.append(slot)
                tr_coeff.append(coeff)
        self._tr_var = np.array(tr_var, dtype=np.intp)
        self._tr_cons = np.array(tr_cons, dtype=np.intp)
        self._tr_coeff = np.array(tr_coeff, dtype=float)
        self._tr_gen = np.zeros(len(tr_var), dtype=np.int64)
        self._pend.clear()
        self._tr_dead = 0

        self.stats["compactions"] += 1
        return {int(old): int(new) for old, new in zip(live_v, vmap[live_v])}

    def maybe_compact(self, min_capacity: int = 64) -> Optional[dict[int, int]]:
        """Compact when the arena is badly fragmented; None when left alone.

        Triggers once allocated slots exceed 256 *and* at least 8x the live
        population — steady-state simulations never pay for it, while a
        long-running metrology arena that ballooned during a burst shrinks
        back after the burst drains.
        """
        cap = int(self._weights.size)
        if cap <= 256:
            return None
        if cap < 8 * max(self._live_count, min_capacity // 2):
            return None
        return self.compact(min_capacity)

    # -- solving -------------------------------------------------------------

    def _component_from(self, seed_vars: list[int], seed_cons: list[int],
                        seen_vars: set[int], seen_cons: set[int]) -> tuple[list[int], list[int]]:
        """Collect the connected component containing the seeds (BFS over the
        bipartite variable/constraint graph)."""
        comp_vars: list[int] = []
        comp_cons: list[int] = []
        stack_v = [v for v in seed_vars if v not in seen_vars]
        stack_c = [c for c in seed_cons if c not in seen_cons]
        seen_vars.update(stack_v)
        seen_cons.update(stack_c)
        while stack_v or stack_c:
            while stack_v:
                v = stack_v.pop()
                comp_vars.append(v)
                for slot, _coeff in self._var_uses[v]:
                    if slot not in seen_cons:
                        seen_cons.add(slot)
                        stack_c.append(slot)
            while stack_c:
                c = stack_c.pop()
                comp_cons.append(c)
                for v in self._cons_vars[c]:
                    if v not in seen_vars:
                        seen_vars.add(v)
                        stack_v.append(v)
        return comp_vars, comp_cons

    def _solve_component(self, comp_vars: list[int], comp_cons: list[int]) -> None:
        if len(comp_vars) == 1:
            # scalar fast path: a lone variable takes the minimum of its bound
            # and its constraints' full capacity — no numpy round-trip.  This
            # is the common case on clusters where concurrent flows touch
            # disjoint NIC links (every flow is its own component).
            vid = comp_vars[0]
            value = float(self._bounds[vid])
            uses = self._var_uses[vid]
            for slot, coeff in uses:
                capacity = float(self._capacities[slot]) / coeff
                if capacity < value:
                    value = capacity
            self._values[vid] = value
            for slot, coeff in uses:
                self._usages[slot] = value * coeff
            return
        if len(comp_vars) <= 8:
            self._solve_component_small(sorted(comp_vars), sorted(comp_cons))
            return
        vi = np.array(sorted(comp_vars), dtype=np.intp)
        weights = self._weights[vi]
        bounds = self._bounds[vi]
        if comp_cons:
            ci = np.array(sorted(comp_cons), dtype=np.intp)
            cons_index = {int(c): i for i, c in enumerate(ci)}
            incidence = np.zeros((ci.size, vi.size), dtype=float)
            for j, vid in enumerate(vi.tolist()):
                for slot, coefficient in self._var_uses[vid]:
                    incidence[cons_index[slot], j] = coefficient
            capacities = self._capacities[ci]
        else:
            ci = _EMPTY_IDS
            incidence = np.zeros((0, vi.size), dtype=float)
            capacities = np.zeros(0, dtype=float)
        values, usage = progressive_fill(weights, bounds, incidence, capacities)
        self._values[vi] = values
        if ci.size:
            self._usages[ci] = usage

    def _solve_component_small(self, vids: list[int], cons: list[int]) -> None:
        """Pure-python :func:`progressive_fill` for components of a few
        variables, where array dispatch costs more than the arithmetic.

        Mirrors the numpy kernel's operation order element-for-element, so
        results agree with it to the last bits of float noise (well inside
        the 1e-9 equivalence budget pinned by the tests and benches)."""
        n = len(vids)
        m = len(cons)
        weights = [float(self._weights[v]) for v in vids]
        bounds = [float(self._bounds[v]) for v in vids]
        inv_w = [1.0 / w for w in weights]
        # coefficient rows come from the per-variable uses lists: for a
        # component this small, scanning them beats dense-matrix gathers
        cons_index = {c: i for i, c in enumerate(cons)}
        coeff = [[0.0] * n for _ in range(m)]
        for j, vid in enumerate(vids):
            for slot, coefficient in self._var_uses[vid]:
                coeff[cons_index[slot]][j] = coefficient
        capacities = [float(self._capacities[c]) for c in cons]
        remaining = list(capacities)
        active = [True] * n
        cons_active = [True] * m
        values = [0.0] * n
        n_active = n
        phi = 0.0
        drain = [0.0] * m
        hit = [False] * n
        for _ in range(n + m + 1):
            if not n_active:
                break
            dphi = math.inf
            for c in range(m):
                row = coeff[c]
                d = 0.0
                for v in range(n):
                    if active[v]:
                        d += row[v] * inv_w[v]
                drain[c] = d
                if cons_active[c] and d > 0.0:
                    step = remaining[c] / d
                    if step < dphi:
                        dphi = step
            for v in range(n):
                if active[v]:
                    d = bounds[v] * weights[v] - phi
                    if d < 0.0:
                        d = 0.0
                    if d < dphi:
                        dphi = d
            if not math.isfinite(dphi):
                # no constraint and no bound applies: unbounded variables
                for v in range(n):
                    if active[v]:
                        values[v] = math.inf
                        active[v] = False
                n_active = 0
                break
            phi += dphi
            freeze_eps = _EPS * (phi if phi > 1.0 else 1.0)
            any_hit = False
            for v in range(n):
                if active[v] and bounds[v] * weights[v] - phi <= freeze_eps:
                    hit[v] = True
                    any_hit = True
                else:
                    hit[v] = False
            for c in range(m):
                d = drain[c]
                remaining[c] -= dphi * d
                if (cons_active[c] and d > 0.0
                        and remaining[c] <= _EPS * capacities[c]):
                    cons_active[c] = False
                    row = coeff[c]
                    for v in range(n):
                        if active[v] and row[v] > 0.0:
                            hit[v] = True
                            any_hit = True
            if not any_hit:
                # numerical safety: force-freeze to guarantee progress
                hit = list(active)
            for v in range(n):
                if hit[v]:
                    value = phi * inv_w[v]
                    if bounds[v] < value:
                        value = bounds[v]
                    values[v] = value
                    active[v] = False
                    n_active -= 1
        for v, vid in enumerate(vids):
            self._values[vid] = values[v]
        for c, cid in enumerate(cons):
            row = coeff[c]
            total = 0.0
            for v in range(n):
                value = values[v]
                if value < math.inf:
                    total += row[v] * value
            self._usages[cid] = total

    def _solve_scalar(self, dirty_vars: list[int], dirty_cons: list[int]) -> np.ndarray:
        seen_vars: set[int] = set()
        seen_cons: set[int] = set()
        resolved: list[int] = []
        n_components = 0
        cons_vars = self._cons_vars
        for seed in dirty_vars:
            if seed in seen_vars:
                continue
            uses = self._var_uses[seed]
            if all(len(cons_vars[slot]) == 1 for slot, _coeff in uses):
                # singleton component: the variable shares no constraint —
                # solve it with the scalar path, no BFS
                seen_vars.add(seed)
                seen_cons.update(slot for slot, _coeff in uses)
                self._solve_component([seed], [])
                resolved.append(seed)
                n_components += 1
                continue
            comp_vars, comp_cons = self._component_from([seed], [], seen_vars, seen_cons)
            self._solve_component(comp_vars, comp_cons)
            resolved.extend(comp_vars)
            n_components += 1
        for seed in dirty_cons:
            if seed in seen_cons:
                continue
            comp_vars, comp_cons = self._component_from([], [seed], seen_vars, seen_cons)
            self._solve_component(comp_vars, comp_cons)
            resolved.extend(comp_vars)
            n_components += 1

        self.stats["components_solved"] += n_components
        self.stats["variables_resolved"] += len(resolved)
        resolved.sort()
        return np.array(resolved, dtype=np.intp)

    def _solve_vectorized(self, dirty_vars: list[int], dirty_cons: list[int]) -> np.ndarray:
        self._commit_triplets()
        length = self._tr_var.size
        if self._tr_dead and length > 256 and self._tr_dead * 2 > length:
            self._prune_triplets()
            length = self._tr_var.size

        dv = np.array(dirty_vars, dtype=np.intp)
        dc = np.array(dirty_cons, dtype=np.intp)

        if length:
            tv_all = self._tr_var
            valid = self._tr_gen == self._var_gen[tv_all]
            tv = tv_all[valid]
            tc = self._tr_cons[valid]
            tw = self._tr_coeff[valid]
        else:
            tv = tc = _EMPTY_IDS
            tw = _EMPTY_VALS

        n_components = 0
        resolved_parts: list[np.ndarray] = []

        if tv.size == 0:
            # no live coefficients anywhere: every dirty variable is
            # unconstrained and takes its bound
            if dv.size:
                self._values[dv] = self._bounds[dv]
                resolved_parts.append(dv)
                n_components += int(dv.size)
            resolved = dv
            self.stats["components_solved"] += n_components
            self.stats["variables_resolved"] += int(resolved.size)
            return resolved

        # compress the live graph: positions 0..nV-1 / 0..nC-1 in slot order
        u_v, iv = np.unique(tv, return_inverse=True)
        u_c, ic = np.unique(tc, return_inverse=True)
        n_v = int(u_v.size)
        n_c = int(u_c.size)
        ord_c = np.argsort(ic, kind="stable")
        ord_v = np.argsort(iv, kind="stable")
        ic_of_ordv = ic[ord_v]
        iv_of_ordc = iv[ord_c]
        c_starts = np.searchsorted(ic[ord_c], np.arange(n_c))
        v_starts = np.searchsorted(iv[ord_v], np.arange(n_v))

        # connected components by label propagation (bounded rounds; exact
        # BFS fallback for pathological diameters)
        lab_v = np.arange(n_v, dtype=np.intp)
        for _ in range(32):
            lab_c = np.maximum.reduceat(lab_v[iv_of_ordc], c_starts)
            new_v = np.maximum(lab_v, np.maximum.reduceat(lab_c[ic_of_ordv], v_starts))
            if np.array_equal(new_v, lab_v):
                break
            lab_v = new_v
        else:
            lab_v, _ = _label_components_bfs(n_v, n_c, iv, ic)
        lab_c = np.maximum.reduceat(lab_v[iv_of_ordc], c_starts)

        roots, comp_v = np.unique(lab_v, return_inverse=True)
        comp_c = np.searchsorted(roots, lab_c)
        n_comp = int(roots.size)

        # select the components containing a dirty variable or constraint
        dirty_comp = np.zeros(n_comp, dtype=bool)
        if dv.size:
            pos, found = _positions_in(u_v, dv)
            dirty_comp[comp_v[pos[found]]] = True
            off_vars = dv[~found]  # live but without any use: value = bound
        else:
            off_vars = dv
        if dc.size:
            pos, found = _positions_in(u_c, dc)
            dirty_comp[comp_c[pos[found]]] = True

        if off_vars.size:
            self._values[off_vars] = self._bounds[off_vars]
            resolved_parts.append(off_vars)
            n_components += int(off_vars.size)

        var_counts = np.bincount(comp_v, minlength=n_comp)
        sel_single = dirty_comp & (var_counts == 1)
        sel_multi = dirty_comp & (var_counts > 1)

        if sel_single.any():
            # bulk scalar-free fast path: each selected component is a lone
            # variable; its rate is min(bound, capacity/coefficient) over its
            # constraints, all computed in whole-array passes
            vmask = sel_single[comp_v]
            vpos = np.nonzero(vmask)[0]
            slots = u_v[vpos]
            ratio = self._capacities[tc] / tw
            per_var_min = np.minimum.reduceat(ratio[ord_v], v_starts)
            vals = np.minimum(self._bounds[slots], per_var_min[vpos])
            self._values[slots] = vals
            tmask = vmask[iv]
            tsel = np.nonzero(tmask)[0]
            val_at = np.zeros(n_v, dtype=float)
            val_at[vpos] = vals
            self._usages[tc[tsel]] = val_at[iv[tsel]] * tw[tsel]
            resolved_parts.append(slots)
            n_components += int(vpos.size)

        if sel_multi.any():
            # gather the multi-variable components into one contiguous
            # component-grouped layout and run them through the batched kernel
            vmask = sel_multi[comp_v]
            cmask = sel_multi[comp_c]
            vpos = np.nonzero(vmask)[0]
            cpos = np.nonzero(cmask)[0]
            vpos = vpos[np.argsort(comp_v[vpos], kind="stable")]
            cpos = cpos[np.argsort(comp_c[cpos], kind="stable")]
            ucomp = np.unique(comp_v[vpos])
            cov = np.searchsorted(ucomp, comp_v[vpos])
            coc = np.searchsorted(ucomp, comp_c[cpos])
            loc_v = np.full(n_v, -1, dtype=np.intp)
            loc_v[vpos] = np.arange(vpos.size)
            loc_c = np.full(n_c, -1, dtype=np.intp)
            loc_c[cpos] = np.arange(cpos.size)
            tsel = np.nonzero(vmask[iv])[0]
            rows = loc_c[ic[tsel]]
            cols = loc_v[iv[tsel]]
            vslots = u_v[vpos]
            cslots = u_c[cpos]
            values, usage = progressive_fill_batched(
                self._weights[vslots], self._bounds[vslots],
                self._capacities[cslots],
                rows, cols, tw[tsel], cov, coc, int(ucomp.size),
            )
            self._values[vslots] = values
            self._usages[cslots] = usage
            resolved_parts.append(vslots)
            n_components += int(ucomp.size)

        if resolved_parts:
            resolved = np.concatenate(resolved_parts)
            resolved.sort()
        else:
            resolved = _EMPTY_IDS
        self.stats["components_solved"] += n_components
        self.stats["variables_resolved"] += int(resolved.size)
        return resolved

    def solve_raw(self, full: bool = False,
                  vectorized: Optional[bool] = None) -> tuple[np.ndarray, np.ndarray]:
        """Re-solve dirty components; returns ``(vids, values)`` arrays.

        The flat-array twin of :meth:`solve` for callers (the engine) that
        keep their own vid maps and don't want per-variable tuples.
        """
        if full:
            dirty_vars = [int(v) for v in np.nonzero(self._var_live)[0]]
            dirty_cons = [int(c) for c in np.nonzero(self._cons_live)[0]]
        else:
            # dirty sets never hold dead slots: every removal path discards
            dirty_vars = sorted(self._dirty_vars)
            dirty_cons = sorted(self._dirty_cons)
        self._dirty_vars.clear()
        self._dirty_cons.clear()
        self.stats["solves"] += 1
        if not dirty_vars and not dirty_cons:
            return _EMPTY_IDS, _EMPTY_VALS
        if vectorized is None:
            # adaptive dispatch: the batched kernel's fixed per-solve cost
            # (triplet compression + component labeling over the whole live
            # graph) only amortizes once the dirty set is wide enough; tiny
            # deltas go through the scalar walk even in vectorized mode.
            # An explicit ``vectorized=True/False`` always forces its path.
            use_vectorized = (
                self.vectorized
                and len(dirty_vars) + len(dirty_cons) >= self.vectorize_min_dirty
            )
        else:
            use_vectorized = bool(vectorized)
        if use_vectorized:
            self.stats["vectorized_solves"] += 1
            resolved = self._solve_vectorized(dirty_vars, dirty_cons)
        else:
            resolved = self._solve_scalar(dirty_vars, dirty_cons)
        return resolved, self._values[resolved]

    def solve(self, full: bool = False,
              vectorized: Optional[bool] = None) -> list[tuple[object, float]]:
        """Re-solve every dirty connected component (all of them if ``full``).

        ``vectorized`` picks the batched kernel (None: the instance default);
        both paths are equivalent within 1e-9 — the scalar path is the
        verification escape hatch.  Returns ``(payload, value)`` for each
        re-solved variable; variables in untouched components are not listed
        (their allocation is unchanged).
        """
        vids, values = self.solve_raw(full=full, vectorized=vectorized)
        payloads = self._var_payload
        return [
            (payloads[vid], value)
            for vid, value in zip(vids.tolist(), values.tolist())
        ]
