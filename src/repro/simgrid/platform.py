"""Platform description model: hosts, routers, links, hierarchical ASes.

Mirrors SimGrid's platform concepts (Bobelin et al. 2011): a platform is a
tree of *Autonomous Systems* (AS).  Each AS owns net-points (hosts, routers),
links and routes between its direct elements; an element is either a
net-point or a child AS (crossed through *gateways*).  This hierarchical
description is what made whole-Grid'5000 simulation feasible (§IV-C2 of the
paper) compared to a flat quadratic route table.

Links carry a *sharing policy*:

- ``SHARED`` — a single capacity constraint shared by both traversal
  directions (SimGrid's default; this is the policy the paper's in-development
  reference API data leads to for cluster uplinks, see DESIGN.md §3),
- ``FULLDUPLEX`` — one capacity constraint per direction,
- ``FATPIPE`` — no aggregation: each flow is individually capped at the link
  bandwidth (used for backbones whose aggregation is not to be modeled).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro._util.lru import BoundedLRU
from repro.simgrid.units import parse_bandwidth, parse_time


class PlatformError(Exception):
    """Base error for platform construction and routing."""


class DuplicateNameError(PlatformError):
    """An element with this name already exists in the platform."""


class UnknownElementError(PlatformError, KeyError):
    """Requested host/router/AS does not exist."""


class NoRouteError(PlatformError):
    """No route can be resolved between the requested end-points."""


class SharingPolicy(enum.Enum):
    """How concurrent flows share a link's capacity."""

    SHARED = "SHARED"
    FATPIPE = "FATPIPE"
    FULLDUPLEX = "FULLDUPLEX"


class RouteCache(BoundedLRU):
    """A bounded LRU cache for resolved routes, keyed by ``(src, dst)``.

    Platform-graph walks (hierarchical AS resolution, Dijkstra) are the
    expensive part of starting a communication; memoizing them means a
    simulation's per-comm setup stops re-walking the platform.  The cache is
    bounded so pathological all-pairs scans over huge platforms cannot grow
    memory without limit — least-recently-used entries are evicted first
    (see :class:`repro._util.lru.BoundedLRU`, which also keeps the
    hit/miss/eviction counters for benches and tests).
    """

    __slots__ = ()

    def __init__(self, maxsize: int = 131072) -> None:
        if maxsize < 1:
            raise PlatformError(f"route cache size must be >= 1, got {maxsize}")
        super().__init__(maxsize)


class Direction(enum.Enum):
    """Traversal direction relative to a link's canonical orientation."""

    UP = "UP"
    DOWN = "DOWN"

    def reversed(self) -> "Direction":
        return Direction.DOWN if self is Direction.UP else Direction.UP


#: Global link-mutation epoch: bumped whenever any link's bandwidth, latency
#: or policy changes in place, so per-route model memos (Route.model_specs)
#: can detect staleness without per-link bookkeeping.
_LINK_EPOCH = 0


def link_epoch() -> int:
    """Current global link-mutation epoch (see :class:`Route`)."""
    return _LINK_EPOCH


class Link:
    """A network link with a capacity, a latency and a sharing policy.

    ``bandwidth`` is stored in bytes/s and ``latency`` in seconds; both accept
    unit strings (``"10Gbps"``, ``"225us"``).  Attributes are mutable so that
    dynamic calibration (e.g. the Pilgrim latency feed) can adjust them
    between simulations without rebuilding routes; every in-place mutation
    bumps the global :func:`link_epoch` so derived per-route quantities are
    recomputed.
    """

    __slots__ = ("name", "_bandwidth", "_latency", "_policy", "properties")

    def __init__(
        self,
        name: str,
        bandwidth: float | str,
        latency: float | str = 0.0,
        policy: SharingPolicy = SharingPolicy.SHARED,
        properties: Optional[dict] = None,
    ) -> None:
        self.name = name
        self._bandwidth = parse_bandwidth(bandwidth)
        self._latency = parse_time(latency)
        if self._bandwidth <= 0:
            raise PlatformError(f"link {name!r}: bandwidth must be positive")
        self._policy = policy
        self.properties = dict(properties or {})

    @property
    def bandwidth(self) -> float:
        return self._bandwidth

    @bandwidth.setter
    def bandwidth(self, value: float | str) -> None:
        global _LINK_EPOCH
        self._bandwidth = parse_bandwidth(value)
        _LINK_EPOCH += 1

    @property
    def latency(self) -> float:
        return self._latency

    @latency.setter
    def latency(self, value: float | str) -> None:
        global _LINK_EPOCH
        self._latency = parse_time(value)
        _LINK_EPOCH += 1

    @property
    def policy(self) -> SharingPolicy:
        return self._policy

    @policy.setter
    def policy(self, value: SharingPolicy) -> None:
        global _LINK_EPOCH
        self._policy = value
        _LINK_EPOCH += 1

    def constraint_key(self, direction: Direction) -> tuple["Link", Optional[Direction]]:
        """Key identifying the capacity constraint used when traversed in
        ``direction``.  SHARED/FATPIPE links have one constraint; FULLDUPLEX
        links have one per direction."""
        if self.policy is SharingPolicy.FULLDUPLEX:
            return (self, direction)
        return (self, None)

    def __repr__(self) -> str:
        return (
            f"Link({self.name!r}, bw={self.bandwidth:.4g}B/s, "
            f"lat={self.latency:.4g}s, {self.policy.value})"
        )


@dataclass(frozen=True)
class LinkUse:
    """One traversal of a link in a given direction along a route."""

    link: Link
    direction: Direction = Direction.UP

    def reversed(self) -> "LinkUse":
        return LinkUse(self.link, self.direction.reversed())

    @property
    def latency(self) -> float:
        return self.link.latency

    @property
    def bandwidth(self) -> float:
        return self.link.bandwidth


class Route(list):
    """A resolved route: a list of :class:`LinkUse` plus a per-model memo.

    Network models hang their derived per-route quantities (startup latency,
    fairness weight, rate bound, sharing usages) off the route object itself
    via :attr:`model_specs`, so repeated communications over the same cached
    route do not re-walk the links.  Entries carry the :func:`link_epoch` at
    computation time, so in-place link mutation invalidates them; the memo
    itself dies with the route — topology invalidation drops the route from
    the platform's cache, and any specs with it."""

    __slots__ = ("model_specs",)

    def __init__(self, uses: Iterable[LinkUse] = ()) -> None:
        super().__init__(uses)
        #: model -> opaque spec tuple (managed by repro.simgrid.models)
        self.model_specs: dict = {}


class NetPoint:
    """A routable point in the platform (host or router)."""

    __slots__ = ("name", "containing_as", "properties")

    def __init__(self, name: str, properties: Optional[dict] = None) -> None:
        self.name = name
        self.containing_as: Optional["AutonomousSystem"] = None
        self.properties = dict(properties or {})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class Host(NetPoint):
    """A compute node: a net-point with processing speed (flop/s)."""

    __slots__ = ("speed", "cores")

    def __init__(
        self,
        name: str,
        speed: float = 1e9,
        cores: int = 1,
        properties: Optional[dict] = None,
    ) -> None:
        super().__init__(name, properties)
        if speed <= 0:
            raise PlatformError(f"host {name!r}: speed must be positive")
        if cores < 1:
            raise PlatformError(f"host {name!r}: cores must be >= 1")
        self.speed = float(speed)
        self.cores = int(cores)


class Router(NetPoint):
    """A pure routing net-point (no compute)."""

    __slots__ = ()


@dataclass
class RouteEntry:
    """A declared route between two elements of one AS.

    ``gw_src``/``gw_dst`` name net-points *inside* the respective element when
    the element is a child AS (SimGrid's ASroute gateways).  They are ``None``
    when the element is a plain net-point.
    """

    links: list[LinkUse] = field(default_factory=list)
    gw_src: Optional[str] = None
    gw_dst: Optional[str] = None


def _as_link_uses(links: Iterable["Link | LinkUse"]) -> list[LinkUse]:
    uses = []
    for item in links:
        if isinstance(item, LinkUse):
            uses.append(item)
        elif isinstance(item, Link):
            uses.append(LinkUse(item, Direction.UP))
        else:
            raise TypeError(f"route element must be Link or LinkUse, got {item!r}")
    return uses


def _reverse_route(entry: RouteEntry) -> RouteEntry:
    return RouteEntry(
        links=[use.reversed() for use in reversed(entry.links)],
        gw_src=entry.gw_dst,
        gw_dst=entry.gw_src,
    )


class AutonomousSystem:
    """An independent routing unit containing net-points, links, children.

    ``routing`` selects how intra-AS routes are found:

    - ``"Full"`` — explicit route table (every needed pair declared),
    - ``"Dijkstra"`` — shortest path (by latency) over declared one-hop
      connections (:meth:`add_connection`).
    """

    def __init__(self, name: str, routing: str = "Full") -> None:
        if routing not in ("Full", "Dijkstra"):
            raise PlatformError(f"unknown routing mode {routing!r}")
        self.name = name
        self.routing = routing
        self.parent: Optional[AutonomousSystem] = None
        self.netpoints: dict[str, NetPoint] = {}
        self.children: dict[str, AutonomousSystem] = {}
        self.links: dict[str, Link] = {}
        self.default_gateway: Optional[str] = None
        self._routes: dict[tuple[str, str], RouteEntry] = {}
        # adjacency: element name -> list of (neighbor name, [LinkUse, ...])
        self._adjacency: dict[str, list[tuple[str, list[LinkUse]]]] = {}
        # canonical (a, b, uses) declarations, for serialisation
        self._connections: list[tuple[str, str, list[LinkUse]]] = []
        self._platform: Optional[Platform] = None

    # -- construction -----------------------------------------------------

    def _attach(self, platform: "Platform") -> None:
        self._platform = platform
        for child in self.children.values():
            child._attach(platform)

    def _register(self, point: NetPoint) -> None:
        if point.name in self.netpoints or point.name in self.children:
            raise DuplicateNameError(f"{point.name!r} already in AS {self.name!r}")
        point.containing_as = self
        self.netpoints[point.name] = point
        platform = self.platform
        if platform is not None:
            platform._index_netpoint(point)

    @property
    def platform(self) -> Optional["Platform"]:
        node: Optional[AutonomousSystem] = self
        while node is not None:
            if node._platform is not None:
                return node._platform
            node = node.parent
        return None

    def add_host(
        self,
        name: str,
        speed: float = 1e9,
        cores: int = 1,
        properties: Optional[dict] = None,
    ) -> Host:
        """Create and register a :class:`Host` in this AS."""
        host = Host(name, speed=speed, cores=cores, properties=properties)
        self._register(host)
        return host

    def add_router(self, name: str) -> Router:
        """Create and register a :class:`Router` in this AS."""
        router = Router(name)
        self._register(router)
        return router

    def add_link(
        self,
        name: str,
        bandwidth: float | str,
        latency: float | str = 0.0,
        policy: SharingPolicy = SharingPolicy.SHARED,
        properties: Optional[dict] = None,
    ) -> Link:
        """Create and register a :class:`Link` owned by this AS."""
        if name in self.links:
            raise DuplicateNameError(f"link {name!r} already in AS {self.name!r}")
        link = Link(name, bandwidth, latency, policy, properties)
        self.links[name] = link
        platform = self.platform
        if platform is not None:
            platform._index_link(link, self)
        return link

    def add_child(self, child: "AutonomousSystem", gateway: Optional[str] = None) -> "AutonomousSystem":
        """Attach ``child`` as a sub-AS; ``gateway`` names the default entry
        net-point inside ``child`` used when routes do not specify one."""
        if child.name in self.children or child.name in self.netpoints:
            raise DuplicateNameError(f"{child.name!r} already in AS {self.name!r}")
        if child.parent is not None:
            raise PlatformError(f"AS {child.name!r} already has a parent")
        child.parent = self
        if gateway is not None:
            child.default_gateway = gateway
        self.children[child.name] = child
        platform = self.platform
        if platform is not None:
            child._attach(platform)
            platform._index_as(child)
        return child

    def _check_element(self, name: str) -> None:
        if name not in self.netpoints and name not in self.children:
            raise UnknownElementError(
                f"{name!r} is not a direct element of AS {self.name!r}"
            )

    def add_route(
        self,
        src: str,
        dst: str,
        links: Iterable["Link | LinkUse"],
        symmetrical: bool = True,
        gw_src: Optional[str] = None,
        gw_dst: Optional[str] = None,
    ) -> None:
        """Declare a route between two direct elements of this AS.

        ``src``/``dst`` are names of net-points or child ASes of this AS.
        When an endpoint is a child AS the corresponding gateway (explicit or
        the child's default) identifies the concrete net-point crossed.
        ``symmetrical`` also declares the reversed route.
        """
        self._check_element(src)
        self._check_element(dst)
        if src == dst:
            raise PlatformError(f"route from {src!r} to itself")
        entry = RouteEntry(links=_as_link_uses(links), gw_src=gw_src, gw_dst=gw_dst)
        key = (src, dst)
        if key in self._routes:
            raise DuplicateNameError(f"route {src!r}->{dst!r} already declared")
        self._routes[key] = entry
        if symmetrical:
            rkey = (dst, src)
            if rkey not in self._routes:
                self._routes[rkey] = _reverse_route(entry)
        platform = self.platform
        if platform is not None:
            platform.invalidate_route_cache()

    def add_connection(self, a: str, b: str, link: "Link | Iterable[Link | LinkUse]") -> None:
        """Declare a one-hop bidirectional connection for Dijkstra routing.

        ``link`` may be a single link or a sequence (e.g. a port link plus
        the switch's backplane link).  The canonical orientation is
        ``a -> b``; traversals ``b -> a`` use the DOWN direction.
        """
        if self.routing != "Dijkstra":
            raise PlatformError(
                f"add_connection requires Dijkstra routing (AS {self.name!r} is {self.routing})"
            )
        self._check_element(a)
        self._check_element(b)
        uses = _as_link_uses([link] if isinstance(link, Link) else link)
        reverse = [use.reversed() for use in reversed(uses)]
        self._adjacency.setdefault(a, []).append((b, uses))
        self._adjacency.setdefault(b, []).append((a, reverse))
        self._connections.append((a, b, uses))
        platform = self.platform
        if platform is not None:
            platform.invalidate_route_cache()

    # -- intra-AS route lookup --------------------------------------------

    def local_route(self, src: str, dst: str) -> RouteEntry:
        """Route between two direct elements of this AS (may be child ASes)."""
        if self.routing == "Full":
            try:
                return self._routes[(src, dst)]
            except KeyError:
                raise NoRouteError(
                    f"no declared route {src!r} -> {dst!r} in AS {self.name!r}"
                ) from None
        return self._dijkstra_route(src, dst)

    def _dijkstra_route(self, src: str, dst: str) -> RouteEntry:
        # Plain-dict Dijkstra by cumulative latency (ties broken by hop count
        # then insertion order) — keeps the core free of third-party graph
        # dependencies; tests cross-check against networkx.
        import heapq

        if src == dst:
            return RouteEntry()
        counter = itertools.count()
        heap: list[tuple[float, int, int, str, list[LinkUse]]] = [
            (0.0, 0, next(counter), src, [])
        ]
        visited: set[str] = set()
        while heap:
            cost, hops, _, node, path = heapq.heappop(heap)
            if node == dst:
                return RouteEntry(links=path)
            if node in visited:
                continue
            visited.add(node)
            for neighbor, uses in self._adjacency.get(node, ()):
                if neighbor not in visited:
                    heapq.heappush(
                        heap,
                        (
                            cost + sum(u.link.latency for u in uses),
                            hops + 1,
                            next(counter),
                            neighbor,
                            path + uses,
                        ),
                    )
        raise NoRouteError(f"no path {src!r} -> {dst!r} in Dijkstra AS {self.name!r}")

    # -- misc ---------------------------------------------------------------

    def route_table_size(self) -> int:
        """Number of declared route entries (flat-vs-hierarchical bench)."""
        return len(self._routes)

    def descendants(self) -> Iterator["AutonomousSystem"]:
        for child in self.children.values():
            yield child
            yield from child.descendants()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AS({self.name!r}, routing={self.routing}, "
            f"{len(self.netpoints)} points, {len(self.children)} children)"
        )


class Platform:
    """A full platform: the root AS plus global name indexes and route cache."""

    def __init__(
        self,
        name: str = "platform",
        routing: str = "Full",
        route_cache_size: int = 131072,
    ) -> None:
        self.name = name
        self.root = AutonomousSystem(name, routing=routing)
        self.root._platform = self
        self.properties: dict[str, str] = {}
        self._netpoints: dict[str, NetPoint] = {}
        self._all_links: dict[str, Link] = {}
        self._ases: dict[str, AutonomousSystem] = {self.root.name: self.root}
        self._route_cache = RouteCache(maxsize=route_cache_size)

    # -- indexing ----------------------------------------------------------

    def _index_netpoint(self, point: NetPoint) -> None:
        if point.name in self._netpoints:
            raise DuplicateNameError(f"net-point {point.name!r} already in platform")
        self._netpoints[point.name] = point

    def _index_link(self, link: Link, owner: AutonomousSystem) -> None:
        if link.name in self._all_links:
            raise DuplicateNameError(f"link {link.name!r} already in platform")
        self._all_links[link.name] = link

    def _index_as(self, as_: AutonomousSystem) -> None:
        if as_.name in self._ases:
            raise DuplicateNameError(f"AS {as_.name!r} already in platform")
        self._ases[as_.name] = as_
        for point in as_.netpoints.values():
            self._index_netpoint(point)
        for link in as_.links.values():
            self._index_link(link, as_)
        for child in as_.children.values():
            self._index_as(child)

    # -- lookups -----------------------------------------------------------

    def netpoint(self, name: str) -> NetPoint:
        try:
            return self._netpoints[name]
        except KeyError:
            raise UnknownElementError(f"unknown net-point {name!r}") from None

    def host(self, name: str) -> Host:
        point = self.netpoint(name)
        if not isinstance(point, Host):
            raise UnknownElementError(f"{name!r} is not a host")
        return point

    def has_host(self, name: str) -> bool:
        return isinstance(self._netpoints.get(name), Host)

    def autonomous_system(self, name: str) -> AutonomousSystem:
        try:
            return self._ases[name]
        except KeyError:
            raise UnknownElementError(f"unknown AS {name!r}") from None

    def hosts(self) -> list[Host]:
        return [p for p in self._netpoints.values() if isinstance(p, Host)]

    def routers(self) -> list[Router]:
        return [p for p in self._netpoints.values() if isinstance(p, Router)]

    def links(self) -> list[Link]:
        return list(self._all_links.values())

    def link(self, name: str) -> Link:
        try:
            return self._all_links[name]
        except KeyError:
            raise UnknownElementError(f"unknown link {name!r}") from None

    def links_matching(self, pattern: str) -> list[Link]:
        """All links whose name matches the :mod:`fnmatch` ``pattern``
        (``"g-uplink*"``, ``"bb-*"``); an exact name matches itself.

        Scenario dynamics schedules target links through these patterns so a
        preset stays valid when a generator's exact link numbering changes.
        """
        import fnmatch

        if pattern in self._all_links:
            return [self._all_links[pattern]]
        return [
            link for name, link in self._all_links.items()
            if fnmatch.fnmatchcase(name, pattern)
        ]

    # -- routing -----------------------------------------------------------

    def invalidate_route_cache(self) -> None:
        """Drop memoized resolved routes (topology changed)."""
        self._route_cache.clear()

    def route_cache_info(self) -> dict:
        """LRU route cache counters (hits, misses, evictions, size)."""
        return self._route_cache.info()

    def _as_chain(self, point: NetPoint) -> list[AutonomousSystem]:
        """ASes from the root down to (and including) the one holding ``point``."""
        chain: list[AutonomousSystem] = []
        node = point.containing_as
        while node is not None:
            chain.append(node)
            node = node.parent
        chain.reverse()
        if not chain or chain[0] is not self.root:
            raise PlatformError(f"net-point {point.name!r} not attached to platform")
        return chain

    def route(self, src: str | NetPoint, dst: str | NetPoint) -> list[LinkUse]:
        """Resolve the full link-level route between two net-points.

        Walks down from the deepest common AS, stitching child-AS segments
        through gateways, exactly like SimGrid's hierarchical resolution.
        Results (including gateway sub-segments, which the recursion also
        routes through here) are memoized in a bounded LRU cache until
        :meth:`invalidate_route_cache`.
        """
        src_point = src if isinstance(src, NetPoint) else self.netpoint(src)
        dst_point = dst if isinstance(dst, NetPoint) else self.netpoint(dst)
        key = (src_point.name, dst_point.name)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = Route(self._resolve(src_point, dst_point))
            self._route_cache.put(key, cached)
        return cached

    def _resolve(self, src: NetPoint, dst: NetPoint) -> list[LinkUse]:
        if src is dst:
            return []
        chain_src = self._as_chain(src)
        chain_dst = self._as_chain(dst)
        # deepest common AS
        common: AutonomousSystem = self.root
        depth = 0
        for a, b in zip(chain_src, chain_dst):
            if a is b:
                common = a
                depth += 1
            else:
                break
        # element names at the common level
        elem_src = src.name if len(chain_src) == depth else chain_src[depth].name
        elem_dst = dst.name if len(chain_dst) == depth else chain_dst[depth].name
        if elem_src == elem_dst:
            # both below the same child element but common was the deepest
            # shared AS — cannot happen unless chains are inconsistent
            raise PlatformError(
                f"inconsistent AS chains for {src.name!r} / {dst.name!r}"
            )
        entry = common.local_route(elem_src, elem_dst)
        route: list[LinkUse] = []
        # upstream side: from src to the gateway through which we leave
        if len(chain_src) != depth:  # src lives in a child AS
            child = chain_src[depth]
            gw_name = entry.gw_src or child.default_gateway
            if gw_name is None:
                raise NoRouteError(
                    f"route {elem_src!r}->{elem_dst!r} in AS {common.name!r} "
                    f"crosses child AS {child.name!r} without a gateway"
                )
            gw_point = self.netpoint(gw_name)
            route.extend(self.route(src, gw_point))
        route.extend(entry.links)
        if len(chain_dst) != depth:  # dst lives in a child AS
            child = chain_dst[depth]
            gw_name = entry.gw_dst or child.default_gateway
            if gw_name is None:
                raise NoRouteError(
                    f"route {elem_src!r}->{elem_dst!r} in AS {common.name!r} "
                    f"enters child AS {child.name!r} without a gateway"
                )
            gw_point = self.netpoint(gw_name)
            route.extend(self.route(gw_point, dst))
        return route

    def route_latency(self, src: str | NetPoint, dst: str | NetPoint) -> float:
        """Sum of raw link latencies along the resolved route."""
        return sum(use.link.latency for use in self.route(src, dst))

    def route_bottleneck(self, src: str | NetPoint, dst: str | NetPoint) -> float:
        """Minimum raw link bandwidth along the resolved route (inf if empty)."""
        route = self.route(src, dst)
        if not route:
            return float("inf")
        return min(use.link.bandwidth for use in route)

    def total_route_table_entries(self) -> int:
        """Declared route entries across all ASes (scalability metric)."""
        total = self.root.route_table_size()
        for as_ in self.root.descendants():
            total += as_.route_table_size()
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Platform({self.name!r}, {len(self.hosts())} hosts, "
            f"{len(self._all_links)} links, {len(self._ases)} ASes)"
        )
