"""Tasks: units of computation + data, for workflow forecasting.

The paper's future work (§VI) plans "some service which will not only
forecast network transfers but also full workflows involving computations and
network transfers […] adding the simulation of computation will be
straightforward".  :class:`Task` is the unit those workflows are made of:
``flops`` of computation producing ``output_bytes`` of data for its
successors.  :mod:`repro.core.workflow` schedules DAGs of these over the MSG
layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Task:
    """One workflow node: a computation and the data it emits downstream."""

    name: str
    flops: float = 0.0
    output_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ValueError(f"task {self.name!r}: flops must be >= 0")
        if self.output_bytes < 0:
            raise ValueError(f"task {self.name!r}: output_bytes must be >= 0")


@dataclass
class TaskGraph:
    """A DAG of tasks with host placements.

    ``placement`` maps task name → host name; ``edges`` is a list of
    ``(producer, consumer)`` task-name pairs.  Data of ``producer`` moves to
    the consumer's host before the consumer may start (when both run on the
    same host the transfer is a loopback).
    """

    tasks: dict[str, Task] = field(default_factory=dict)
    edges: list[tuple[str, str]] = field(default_factory=list)
    placement: dict[str, str] = field(default_factory=dict)

    def add_task(self, task: Task, host: str) -> Task:
        if task.name in self.tasks:
            raise ValueError(f"duplicate task {task.name!r}")
        self.tasks[task.name] = task
        self.placement[task.name] = host
        return task

    def add_edge(self, producer: str, consumer: str) -> None:
        for name in (producer, consumer):
            if name not in self.tasks:
                raise ValueError(f"unknown task {name!r}")
        if (producer, consumer) in self.edges:
            raise ValueError(f"duplicate edge {producer!r}->{consumer!r}")
        self.edges.append((producer, consumer))

    def predecessors(self, name: str) -> list[str]:
        return [p for (p, c) in self.edges if c == name]

    def successors(self, name: str) -> list[str]:
        return [c for (p, c) in self.edges if p == name]

    def roots(self) -> list[str]:
        return [name for name in self.tasks if not self.predecessors(name)]

    def validate(self) -> None:
        """Raise :class:`ValueError` on cycles or missing placements."""
        for name in self.tasks:
            if name not in self.placement:
                raise ValueError(f"task {name!r} has no placement")
        # Kahn's algorithm for cycle detection
        indegree = {name: len(self.predecessors(name)) for name in self.tasks}
        queue = [name for name, deg in indegree.items() if deg == 0]
        seen = 0
        while queue:
            node = queue.pop()
            seen += 1
            for succ in self.successors(node):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
        if seen != len(self.tasks):
            raise ValueError("task graph has a cycle")
