"""MSG-like process API on generator coroutines.

The paper describes the MSG interface: "applications are modeled as a set of
processes, running on a set of hosts, executing tasks or exchanging data
through the network" (§IV-A), and the forecast service instantiates "one send
and one receive process for each requested transfer" (§IV-C2).

A process is a generator function taking a :class:`Context`; it ``yield``-s
*waitables* (communications, executions, sleeps) and is resumed with the
waitable's result::

    def sender(ctx):
        yield ctx.send("mbox", size=5e8, payload="hello")

    def receiver(ctx, results):
        payload = yield ctx.recv("mbox")
        results.append((ctx.now, payload))

    sim = Simulation(platform)
    add_process(sim, "snd", "hostA", sender)
    add_process(sim, "rcv", "hostB", receiver, results)
    sim.run()

Communication is rendezvous through named mailboxes: the data starts flowing
once a send and a receive are matched (FIFO order), like MSG's
``task_send``/``task_receive``.
"""

from __future__ import annotations

import collections
import inspect
import math
from typing import Callable, Optional

from repro.simgrid.activities import Waitable
from repro.simgrid.engine import Simulation
from repro.simgrid.platform import Host


class ProcessError(Exception):
    """Raised when a process function misbehaves (wrong yields, …)."""


class CommHandle(Waitable):
    """Send- or receive-side handle of a mailbox communication."""

    __slots__ = ("mailbox", "size", "payload", "is_send")

    def __init__(self, mailbox: str, size: float, payload: object, is_send: bool) -> None:
        super().__init__()
        self.mailbox = mailbox
        self.size = size
        self.payload = payload
        self.is_send = is_send


class _Mailbox:
    __slots__ = ("name", "pending_sends", "pending_recvs")

    def __init__(self, name: str) -> None:
        self.name = name
        # (handle, src_host)
        self.pending_sends: collections.deque = collections.deque()
        # (handle, dst_host)
        self.pending_recvs: collections.deque = collections.deque()


class MessagingLayer:
    """Per-simulation mailbox registry; created lazily on first use."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self.mailboxes: dict[str, _Mailbox] = {}

    def mailbox(self, name: str) -> _Mailbox:
        box = self.mailboxes.get(name)
        if box is None:
            box = _Mailbox(name)
            self.mailboxes[name] = box
        return box

    def post_send(self, mailbox: str, size: float, payload: object, src: Host) -> CommHandle:
        handle = CommHandle(mailbox, size, payload, is_send=True)
        box = self.mailbox(mailbox)
        box.pending_sends.append((handle, src))
        self._match(box)
        return handle

    def post_recv(self, mailbox: str, dst: Host) -> CommHandle:
        handle = CommHandle(mailbox, 0.0, None, is_send=False)
        box = self.mailbox(mailbox)
        box.pending_recvs.append((handle, dst))
        self._match(box)
        return handle

    def _match(self, box: _Mailbox) -> None:
        while box.pending_sends and box.pending_recvs:
            send_handle, src = box.pending_sends.popleft()
            recv_handle, dst = box.pending_recvs.popleft()
            comm = self.sim.add_comm(
                src, dst, send_handle.size,
                name=f"msg:{box.name}", payload=send_handle.payload,
            )

            def finish(_, send_handle=send_handle, recv_handle=recv_handle, comm=comm):
                recv_handle.result = comm.payload
                send_handle.result = None
                send_handle._fire()
                recv_handle._fire()

            comm.add_done_callback(finish)


def _messaging(sim: Simulation) -> MessagingLayer:
    layer = getattr(sim, "_msg_layer", None)
    if layer is None:
        layer = MessagingLayer(sim)
        sim._msg_layer = layer  # type: ignore[attr-defined]
    return layer


class Context:
    """The API surface handed to every process function."""

    def __init__(self, process: "Process") -> None:
        self._process = process

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._process.sim.clock

    @property
    def host(self) -> Host:
        """The host this process runs on."""
        return self._process.host

    @property
    def name(self) -> str:
        return self._process.name

    def send(self, mailbox: str, size: float, payload: object = None) -> CommHandle:
        """Post a send of ``size`` bytes; yield the handle to wait for it."""
        return _messaging(self._process.sim).post_send(
            mailbox, size, payload, self._process.host
        )

    def recv(self, mailbox: str) -> CommHandle:
        """Post a receive; yielding the handle returns the sent payload."""
        return _messaging(self._process.sim).post_recv(mailbox, self._process.host)

    def execute(self, flops: float) -> Waitable:
        """Compute ``flops`` on this process's host."""
        return self._process.sim.add_exec(self._process.host, flops)

    def sleep(self, duration: float) -> Waitable:
        """Wait ``duration`` simulated seconds."""
        return self._process.sim.add_sleep(duration)

    def wait_all(self, waitables: list[Waitable]) -> Waitable:
        """A waitable that completes when every input completed; its result
        is the list of individual results (in input order)."""
        group = Waitable()
        pending = len(waitables)
        if pending == 0:
            group.result = []
            group._fire()
            return group
        results: list[object] = [None] * pending
        remaining = [pending]

        def on_done(_done, idx):
            results[idx] = waitables[idx].result
            remaining[0] -= 1
            if remaining[0] == 0:
                group.result = results
                group._fire()

        for idx, waitable in enumerate(waitables):
            waitable.add_done_callback(lambda w, idx=idx: on_done(w, idx))
        return group


class Process(Waitable):
    """A simulated process: generator + host + scheduling glue.

    The process itself is a waitable whose result is the generator's return
    value, so processes can join each other (``yield other_process``).
    """

    def __init__(
        self,
        sim: Simulation,
        name: str,
        host: str | Host,
        func: Callable,
        *args: object,
        start_time: float = 0.0,
        **kwargs: object,
    ) -> None:
        super().__init__()
        self.sim = sim
        self.name = name
        self.host = host if isinstance(host, Host) else sim.platform.host(host)
        self.context = Context(self)
        self._finished = False
        if inspect.isgeneratorfunction(func):
            self._gen = func(self.context, *args, **kwargs)
        else:
            # plain callables run atomically at start time
            def _wrapper():
                out = func(self.context, *args, **kwargs)
                return out
                yield  # pragma: no cover - makes this a generator

            self._gen = _wrapper()
        if start_time < 0:
            raise ProcessError(f"process {name!r}: negative start time")
        sim.schedule(start_time, lambda: sim._make_runnable(self, None))

    def _step(self, value: object) -> None:
        if self._finished:
            return
        try:
            waitable = self._gen.send(value)
        except StopIteration as stop:
            self._finished = True
            self.result = stop.value
            self._fire()
            return
        if not isinstance(waitable, Waitable):
            raise ProcessError(
                f"process {self.name!r} yielded {waitable!r}; processes must "
                "yield waitables (ctx.send/recv/execute/sleep/…)"
            )
        waitable.add_done_callback(
            lambda w: self.sim._make_runnable(self, w.result)
        )


def add_process(
    sim: Simulation,
    name: str,
    host: str | Host,
    func: Callable,
    *args: object,
    start_time: float = 0.0,
    **kwargs: object,
) -> Process:
    """Create and register a process; it starts at ``start_time``."""
    return Process(sim, name, host, func, *args, start_time=start_time, **kwargs)


def transfer_processes(
    sim: Simulation, transfers: list[tuple[str, str, float]]
) -> list[dict]:
    """The paper's PNFS pattern: one sender + one receiver process per
    transfer; returns per-transfer records with completion times.

    Each record has keys ``src``, ``dst``, ``size``, ``start``, ``finish``,
    ``duration``.
    """
    records: list[dict] = []

    def sender(ctx, mailbox, dst, size):
        yield ctx.send(mailbox, size)

    def receiver(ctx, mailbox, record):
        yield ctx.recv(mailbox)
        record["finish"] = ctx.now
        record["duration"] = ctx.now - record["start"]

    for idx, (src, dst, size) in enumerate(transfers):
        record = {
            "src": src, "dst": dst, "size": size,
            "start": 0.0, "finish": math.nan, "duration": math.nan,
        }
        records.append(record)
        mailbox = f"pnfs-{idx}"
        add_process(sim, f"sender-{idx}", src, sender, mailbox, dst, size)
        add_process(sim, f"receiver-{idx}", dst, receiver, mailbox, record)
    sim.run()
    return records
