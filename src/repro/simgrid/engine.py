"""Discrete-event simulation kernel.

The kernel follows the paper's description of SimGrid (§IV-A): it is "based on
discrete events evaluations, corresponding to resource state changes […]  At
each event, resource sharing is evaluated, date of the next event is computed,
and simulated time is fast-forwarded to the next event."

Concretely, each loop iteration:

1. lets every runnable MSG process advance until it blocks (possibly creating
   new activities),
2. re-solves resource sharing (one bounded weighted max-min system covering
   all transferring communications and all executing computations),
3. finds the earliest phase boundary among activities and timers,
4. fast-forwards the clock, drains activity progress, completes what finished.

Same-host communications bypass sharing through a configurable loopback
(SimGrid models these with a dedicated loopback link as well).

Resource sharing is *incremental* by default: a persistent
:class:`~repro.simgrid.maxmin.SharingSystem` arena lives across events,
activities are added when they enter their transfer/compute phase and removed
when they finish, and each re-share only re-solves the connected components
touched since the previous event (see ``docs/ARCHITECTURE.md``).  Pass
``full_resolve=True`` to rebuild the whole bounded max-min system from
scratch at every event instead — the historical behavior, kept as a
verification escape hatch (``tests/simgrid/test_incremental_equivalence.py``
asserts both modes agree within 1e-9).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Optional

from repro.simgrid.activities import (
    Activity,
    ActivityState,
    CommActivity,
    ExecActivity,
    SleepActivity,
)
from repro.simgrid.maxmin import MaxMinSystem, SharingSystem
from repro.simgrid.models import LV08, NetworkModel
from repro.simgrid.platform import Host, Platform, link_epoch
from repro.simgrid.trace import Trace

#: Completion tolerance relative to the activity's total amount of work.
_REL_EPS = 1e-9


class SimulationError(Exception):
    """Raised on kernel misuse (negative delays, deadlocked run, …)."""


class Simulation:
    """A simulation instance bound to one platform and one network model."""

    def __init__(
        self,
        platform: Platform,
        model: Optional[NetworkModel] = None,
        loopback_bandwidth: float = 1e10,
        loopback_latency: float = 1.5e-6,
        trace: Optional[Trace] = None,
        capacity_factors: Optional[dict[str, float]] = None,
        full_resolve: bool = False,
    ) -> None:
        self.platform = platform
        self.model = model if model is not None else LV08()
        self.loopback_bandwidth = float(loopback_bandwidth)
        self.loopback_latency = float(loopback_latency)
        self.trace = trace
        #: when True, rebuild the whole max-min system at every event (the
        #: historical behavior) instead of incremental component re-solves
        self.full_resolve = bool(full_resolve)
        #: per-link capacity scaling in [0, 1], keyed by link name — the
        #: coarse background-traffic model of §VI (bandwidth consumed by
        #: traffic outside this simulation)
        self.capacity_factors = dict(capacity_factors or {})
        for name, factor in self.capacity_factors.items():
            if not 0.0 < factor <= 1.0:
                raise SimulationError(
                    f"capacity factor for {name!r} must be in (0, 1]: {factor}"
                )
        self.clock = 0.0
        self._activities: list[Activity] = []
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._runnable: list[tuple[object, object]] = []  # (process, send_value)
        self._share_dirty = True
        self._comm_counter = itertools.count()
        # incremental sharing state: the persistent arena, activity -> variable
        # id handles, and the activities that entered/left their resource
        # phase since the last re-share
        self._sharing = SharingSystem()
        self._handles: dict[Activity, int] = {}
        self._started: list[Activity] = []
        self._finished: list[Activity] = []
        self._rebuild_sharing = True
        # set when a process step ran: a process can cancel activities the
        # event loop hasn't noticed yet, so the next incremental re-share
        # must sweep the whole arena instead of trusting the delta lists
        self._sweep_stale = False
        # link-mutation epoch and capacity factors at which cached activity
        # usages were computed; a change means every cached
        # (key, capacity, coefficient) triple must be re-derived
        self._usage_epoch = link_epoch()
        self._factors_seen = dict(self.capacity_factors)

    # -- public construction API -------------------------------------------

    def add_comm(
        self,
        src: str | Host,
        dst: str | Host,
        size: float,
        name: Optional[str] = None,
        payload: object = None,
    ) -> CommActivity:
        """Start a communication of ``size`` bytes from ``src`` to ``dst`` now."""
        src_host = src if isinstance(src, Host) else self.platform.host(src)
        dst_host = dst if isinstance(dst, Host) else self.platform.host(dst)
        if name is None:
            name = f"comm-{next(self._comm_counter)}"
        if src_host is dst_host:
            # loopback: serial latency, then drain at loopback bandwidth,
            # un-shared (each local transfer gets the full loopback rate)
            comm = CommActivity(
                name, src_host, dst_host, size, route=[],
                startup_latency=self.loopback_latency,
                weight=1.0, bound=self.loopback_bandwidth, payload=payload,
            )
        else:
            route = self.platform.route(src_host, dst_host)
            startup, weight, bound, usages = self.model.comm_spec(route)
            comm = CommActivity(
                name, src_host, dst_host, size, route=route,
                startup_latency=startup, weight=weight, bound=bound,
                payload=payload,
            )
            comm.usages = self._scaled_usages(usages)
        comm.start_time = self.clock
        self._activities.append(comm)
        self._started.append(comm)
        self._share_dirty = True
        if self.trace is not None:
            self.trace.record(self.clock, "comm_start", name=name,
                              src=src_host.name, dst=dst_host.name, size=size)
        return comm

    def add_exec(self, host: str | Host, flops: float, name: Optional[str] = None) -> ExecActivity:
        """Start a computation of ``flops`` on ``host`` now."""
        host_obj = host if isinstance(host, Host) else self.platform.host(host)
        if name is None:
            name = f"exec-{next(self._comm_counter)}"
        activity = ExecActivity(name, host_obj, flops)
        activity.usages = self._exec_usages(host_obj)
        activity.start_time = self.clock
        self._activities.append(activity)
        self._started.append(activity)
        self._share_dirty = True
        if self.trace is not None:
            self.trace.record(self.clock, "exec_start", name=name,
                              host=host_obj.name, flops=flops)
        return activity

    def add_sleep(self, duration: float, name: Optional[str] = None) -> SleepActivity:
        """Start a pure delay of ``duration`` simulated seconds."""
        activity = SleepActivity(name or f"sleep-{next(self._comm_counter)}", duration)
        activity.start_time = self.clock
        self._activities.append(activity)
        return activity

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        heapq.heappush(self._timers, (self.clock + delay, next(self._seq), callback))

    def touch_sharing(self) -> None:
        """Force a re-share at the next event-loop iteration.

        Timer callbacks that mutate platform state the kernel cannot observe
        directly — link bandwidth/latency/policy edits (which bump the global
        :func:`~repro.simgrid.platform.link_epoch`), capacity-factor changes —
        must call this so in-flight activities recalibrate immediately instead
        of at the next activity start/completion.  The scenario dynamics
        schedules (:mod:`repro.scenarios.dynamics`) are the main user.
        """
        self._share_dirty = True

    # -- process integration (used by repro.simgrid.msg) --------------------

    def _make_runnable(self, process: object, value: object = None) -> None:
        self._runnable.append((process, value))

    def _drain_runnable(self) -> None:
        if self._runnable:
            # a process step may cancel activities without telling us
            self._sweep_stale = True
        while self._runnable:
            process, value = self._runnable.pop(0)
            process._step(value)  # type: ignore[attr-defined]

    # -- resource sharing ----------------------------------------------------

    def _scaled_usages(
        self, usages: tuple[tuple[object, float, float], ...]
    ) -> tuple[tuple[object, float, float], ...]:
        """Apply per-link capacity factors (coarse background traffic) to the
        model's cached sharing usages.  The constraint key's first element is
        the :class:`~repro.simgrid.platform.Link` itself."""
        if not self.capacity_factors:
            return usages
        return tuple(
            (key, capacity * self.capacity_factors.get(key[0].name, 1.0), coeff)
            for key, capacity, coeff in usages
        )

    @staticmethod
    def _sharing_spec(activity: Activity) -> tuple[float, float]:
        """(weight, rate bound — ``inf`` when unbounded) of an activity's
        sharing variable.  Single source of truth for both re-share modes."""
        if isinstance(activity, CommActivity):
            return activity.weight, activity.bound
        host = activity.host  # type: ignore[attr-defined]
        return 1.0, host.speed

    @staticmethod
    def _exec_usages(host: Host) -> tuple[tuple[object, float, float], ...]:
        """The sharing usages of a computation: the host's core pool."""
        return ((("host", host.name), host.speed * host.cores, 1.0),)

    def _apply_rate(self, activity: Activity, value: float) -> None:
        if isinstance(activity, CommActivity) and not math.isfinite(value):
            # no constraint and no bound anywhere on the route: treat as
            # the loopback rate to keep time finite
            value = self.loopback_bandwidth
        activity.rate = value

    def _refresh_usages(self) -> None:
        """Re-derive every activity's cached sharing usages after in-place
        link mutation (latency feed recalibration, bandwidth edits) or a
        capacity-factor change."""
        for activity in self._activities:
            if isinstance(activity, CommActivity):
                if activity.route:
                    activity.usages = self._scaled_usages(
                        self.model.sharing_usages(activity.route)
                    )
            elif isinstance(activity, ExecActivity):
                activity.usages = self._exec_usages(activity.host)

    def _reshare(self) -> None:
        """Recompute progress rates for running activities.

        Incremental mode applies the started/finished deltas to the
        persistent arena and re-solves only the touched components;
        ``full_resolve`` rebuilds one :class:`MaxMinSystem` from scratch.
        """
        epoch = link_epoch()
        if epoch != self._usage_epoch or self.capacity_factors != self._factors_seen:
            # a link changed capacity/latency/policy in place, or the
            # background-traffic factors moved: stale cached usages must not
            # survive into the next solve
            self._usage_epoch = epoch
            self._factors_seen = dict(self.capacity_factors)
            self._refresh_usages()
            self._rebuild_sharing = True
        if self.full_resolve:
            self._reshare_full()
        else:
            self._reshare_incremental()
        self._share_dirty = False

    def _reshare_full(self) -> None:
        system = MaxMinSystem()
        constraints: dict[object, object] = {}
        pairs: list[tuple[Activity, object]] = []

        for activity in self._activities:
            if (
                isinstance(activity, (CommActivity, ExecActivity))
                and activity.state is ActivityState.RUNNING
            ):
                weight, bound = self._sharing_spec(activity)
                var = system.new_variable(weight=weight, bound=bound, payload=activity)
                for key, capacity, coefficient in activity.usages:
                    cons = constraints.get(key)
                    if cons is None:
                        cons = system.new_constraint(capacity, payload=key)
                        constraints[key] = cons
                    system.expand(cons, var, coefficient)
                pairs.append((activity, var))

        system.solve()
        for activity, var in pairs:
            self._apply_rate(activity, var.value)
        # the incremental delta lists are not consumed in this mode — drop
        # them so completed activities don't accumulate for the run's life
        self._started.clear()
        self._finished.clear()
        self._rebuild_sharing = True

    def _reshare_incremental(self) -> None:
        if self._rebuild_sharing:
            # external mutations (cancel between runs, link edits) are
            # untracked: rebuild the arena from the live activity set
            if self._handles:
                self._sharing = SharingSystem()
                self._handles.clear()
            self._finished.clear()
            self._started = list(self._activities)
            self._rebuild_sharing = False
        handles = self._handles
        for activity in self._finished:
            vid = handles.pop(activity, None)
            if vid is not None:
                self._sharing.remove_variable(vid)
        self._finished.clear()
        if self._sweep_stale:
            # a process stepped since the last re-share and may have canceled
            # activities the event loop hasn't completed yet: evict anything
            # no longer RUNNING (full mode filters by state too, and the two
            # modes must agree)
            self._sweep_stale = False
            stale = [a for a in handles if a.state is not ActivityState.RUNNING]
            for activity in stale:
                self._sharing.remove_variable(handles.pop(activity))
        for activity in self._started:
            if (
                activity.state is ActivityState.RUNNING
                and isinstance(activity, (CommActivity, ExecActivity))
                and activity not in handles
            ):
                weight, bound = self._sharing_spec(activity)
                handles[activity] = self._sharing.add_variable_unchecked(
                    weight, bound, activity, activity.usages
                )
        self._started.clear()
        for activity, value in self._sharing.solve():
            self._apply_rate(activity, value)

    @property
    def sharing_stats(self) -> dict:
        """Counters of the incremental arena (solves, components, …)."""
        return dict(self._sharing.stats)

    # -- main loop -----------------------------------------------------------

    def _next_event_time(self) -> float:
        # inlined hot loop: equivalent to min over Activity.time_to_completion
        t = math.inf
        done = ActivityState.DONE
        canceled = ActivityState.CANCELED
        for activity in self._activities:
            rate = activity.rate
            if rate <= 0.0:
                continue
            state = activity.state
            if state is done or state is canceled:
                continue
            remaining = activity.remaining
            t_act = self.clock + remaining / rate if remaining > 0.0 else self.clock
            if t_act < t:
                t = t_act
        if self._timers and self._timers[0][0] < t:
            t = self._timers[0][0]
        return t

    def run(self, until: float = math.inf, max_iterations: int = 50_000_000) -> float:
        """Advance the simulation until no work remains (or ``until``).

        Returns the final simulated clock.
        """
        # external mutations (cancel, link edits) between runs are untracked:
        # force a re-share and a full arena rebuild
        self._share_dirty = True
        self._rebuild_sharing = True
        for _ in range(max_iterations):
            self._drain_runnable()
            if self._share_dirty:
                self._reshare()
            t_next = self._next_event_time()
            if t_next is math.inf or t_next > until:
                if math.isfinite(until) and until > self.clock:
                    # drain partial progress up to the stop point
                    dt = until - self.clock
                    for activity in self._activities:
                        activity.advance(dt)
                    self.clock = until
                self._drop_sharing_deltas()
                return self.clock
            dt = t_next - self.clock
            if dt > 0:
                # inlined Activity.advance over all activities
                for activity in self._activities:
                    rate = activity.rate
                    if rate > 0.0 and activity.remaining > 0.0:
                        left = activity.remaining - rate * dt
                        activity.remaining = left if left > 0.0 else 0.0
            self.clock = t_next
            self._fire_due_timers()
            self._complete_finished()
            if not self._activities and not self._timers and not self._runnable:
                self._drop_sharing_deltas()
                return self.clock
        raise SimulationError("max_iterations exceeded; livelocked simulation?")

    def _drop_sharing_deltas(self) -> None:
        """Forget the started/finished tracking lists at run() exit.

        Every ``run()`` begins with a full arena rebuild (external mutations
        between runs are untracked), so deltas never survive a return — and
        holding them would pin completed activities in memory."""
        self._started.clear()
        self._finished.clear()
        self._rebuild_sharing = True

    def _fire_due_timers(self) -> None:
        while self._timers and self._timers[0][0] <= self.clock + 1e-15:
            _, _, callback = heapq.heappop(self._timers)
            callback()

    def _complete_finished(self) -> None:
        still_active: list[Activity] = []
        finished: list[Activity] = []
        for activity in self._activities:
            if (
                activity.state is not ActivityState.DONE
                and activity.state is not ActivityState.CANCELED
                and activity.rate > 0.0
                and activity.remaining <= _REL_EPS * activity.scale
            ):
                activity.remaining = 0.0
                if activity.phase_complete(self.clock):
                    finished.append(activity)
                    self._finished.append(activity)
                else:
                    # phase transition (latency -> transfer): the activity now
                    # enters the sharing system
                    still_active.append(activity)
                    self._started.append(activity)
                self._share_dirty = True
            elif activity.state in (ActivityState.DONE, ActivityState.CANCELED):
                self._finished.append(activity)
                self._share_dirty = True
            else:
                still_active.append(activity)
        self._activities = still_active
        for activity in finished:
            if self.trace is not None:
                self.trace.record(self.clock, "activity_end", name=activity.name,
                                  duration=activity.duration)
            activity._fire()

    # -- convenience ---------------------------------------------------------

    def simulate_transfers(
        self, transfers: list[tuple[str, str, float]]
    ) -> list[CommActivity]:
        """Start all ``(src, dst, size)`` transfers at t=0 and run to completion.

        This is exactly what the paper's forecast service does: "a SimGrid
        simulation is instantiated, containing one send and one receive
        process for each requested transfer" (§IV-C2).  Returns the completed
        communication activities (with ``start_time``/``finish_time`` set).
        """
        comms = [self.add_comm(src, dst, size) for src, dst, size in transfers]
        self.run()
        return comms
