"""Discrete-event simulation kernel.

The kernel follows the paper's description of SimGrid (§IV-A): it is "based on
discrete events evaluations, corresponding to resource state changes […]  At
each event, resource sharing is evaluated, date of the next event is computed,
and simulated time is fast-forwarded to the next event."

Concretely, each loop iteration:

1. lets every runnable MSG process advance until it blocks (possibly creating
   new activities),
2. re-solves resource sharing (one bounded weighted max-min system covering
   all transferring communications and all executing computations),
3. finds the earliest phase boundary among activities and timers,
4. fast-forwards the clock, drains activity progress, completes what finished.

Same-host communications bypass sharing through a configurable loopback
(SimGrid models these with a dedicated loopback link as well).

Activity progress state (remaining work, allocated rate) lives in flat numpy
slot arrays owned by the engine: the next-event search, the progress drain and
the completion scan of steps 3–4 are whole-array passes instead of per-object
Python loops.  Object attributes (``activity.remaining``/``rate``) are flushed
from the arrays lazily — only before user code can observe them (timer
callbacks, MSG process steps, completion callbacks, ``run()`` returning) — so
a large steady-state simulation never pays per-event attribute traffic.

Resource sharing is *incremental* by default: a persistent
:class:`~repro.simgrid.maxmin.SharingSystem` arena lives across events,
activities are added when they enter their transfer/compute phase and removed
when they finish, and each re-share only re-solves the connected components
touched since the previous event (see ``docs/ARCHITECTURE.md``).  Pass
``full_resolve=True`` to rebuild the whole bounded max-min system from
scratch at every event instead — the historical behavior, kept as a
verification escape hatch (``tests/simgrid/test_incremental_equivalence.py``
asserts both modes agree within 1e-9).  ``vectorized=False`` similarly forces
the arena's scalar per-component solve path (the second escape hatch).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Iterator, Optional

import numpy as np

from repro.simgrid.activities import (
    Activity,
    ActivityState,
    CommActivity,
    ExecActivity,
    SleepActivity,
    cancel_epoch,
)
from repro.simgrid.maxmin import MaxMinSystem, SharingSystem
from repro.simgrid.models import LV08, SharingModel
from repro.simgrid.platform import Host, Platform, link_epoch
from repro.simgrid.trace import Trace

#: Completion tolerance relative to the activity's total amount of work.
_REL_EPS = 1e-9

_DONE = ActivityState.DONE
_CANCELED = ActivityState.CANCELED


class SimulationError(Exception):
    """Raised on kernel misuse (negative delays, deadlocked run, …)."""


class Simulation:
    """A simulation instance bound to one platform and one network model."""

    def __init__(
        self,
        platform: Platform,
        model: Optional[SharingModel] = None,
        loopback_bandwidth: float = 1e10,
        loopback_latency: float = 1.5e-6,
        trace: Optional[Trace] = None,
        capacity_factors: Optional[dict[str, float]] = None,
        full_resolve: bool = False,
        vectorized: bool = True,
    ) -> None:
        self.platform = platform
        self.model = model if model is not None else LV08()
        self.loopback_bandwidth = float(loopback_bandwidth)
        self.loopback_latency = float(loopback_latency)
        self.trace = trace
        #: when True, rebuild the whole max-min system at every event (the
        #: historical behavior) instead of incremental component re-solves
        self.full_resolve = bool(full_resolve)
        #: solve-path default of the incremental arena (False forces the
        #: scalar per-component walk — the kernel verification escape hatch)
        self.vectorized = bool(vectorized)
        #: per-link capacity scaling in [0, 1], keyed by link name — the
        #: coarse background-traffic model of §VI (bandwidth consumed by
        #: traffic outside this simulation)
        self.capacity_factors = dict(capacity_factors or {})
        for name, factor in self.capacity_factors.items():
            if not 0.0 < factor <= 1.0:
                raise SimulationError(
                    f"capacity factor for {name!r} must be in (0, 1]: {factor}"
                )
        self.clock = 0.0
        # timer heap entries are mutable [time, seq, callback] lists so a
        # scheduled callback can be canceled in place (callback -> None);
        # canceled heads are lazily pruned before the heap top is read
        self._timers: list[list] = []
        self._seq = itertools.count()
        # per-comm pending flow-dynamics round timer (time-varying models):
        # canceled when the comm completes so a mid-ramp finish does not
        # leave a live timer inflating the run's final clock
        self._flow_timers: dict[Activity, list] = {}
        self._runnable: list[tuple[object, object]] = []  # (process, send_value)
        self._share_dirty = True
        self._comm_counter = itertools.count()
        # activity slot arrays: remaining work, allocated rate, absolute
        # completion tolerance, liveness, comm-typed flag.  Dead slots keep
        # rate=0 / remaining=inf so whole-array scans skip them for free.
        cap = 64
        self._a_rem = np.full(cap, np.inf, dtype=float)
        self._a_rate = np.zeros(cap, dtype=float)
        self._a_eps = np.zeros(cap, dtype=float)
        self._a_live = np.zeros(cap, dtype=bool)
        self._a_is_comm = np.zeros(cap, dtype=bool)
        self._a_obj: list[Optional[Activity]] = [None] * cap
        self._a_free: list[int] = list(range(cap - 1, -1, -1))
        self._a_scratch = np.empty(cap, dtype=float)
        self._a_bool = np.empty(cap, dtype=bool)
        self._a_bool2 = np.empty(cap, dtype=bool)
        self._a_count = 0
        # object attributes (activity.remaining / .rate) lag the arrays; set
        # whenever the arrays move, cleared by _sync_objects()
        self._attrs_stale = False
        # incremental sharing state: the persistent arena, activity -> variable
        # id handles, the arena-vid -> engine-slot scatter map, and the
        # activities that entered/left their resource phase since the last
        # re-share
        self._sharing = SharingSystem(vectorized=self.vectorized)
        self._handles: dict[Activity, int] = {}
        self._vid_slot = np.full(64, -1, dtype=np.intp)
        self._started: list[Activity] = []
        self._finished: list[Activity] = []
        self._rebuild_sharing = True
        # set when user code ran (timer callbacks, MSG process steps): it may
        # have canceled activities behind the event loop's back, so the next
        # iteration must sweep live objects for externally-changed states —
        # unless the global cancel epoch proves nothing was canceled
        self._user_code_ran = False
        self._cancel_seen = cancel_epoch()
        # link-mutation epoch and capacity factors at which cached activity
        # usages were computed; a change means every cached
        # (key, capacity, coefficient) triple must be re-derived
        self._usage_epoch = link_epoch()
        self._factors_seen = dict(self.capacity_factors)

    # -- activity slot arena -------------------------------------------------

    def _grow_slots(self) -> None:
        old = self._a_rem.size
        new = old * 2

        def widen(arr: np.ndarray, fill) -> np.ndarray:
            out = np.full(new, fill, dtype=arr.dtype)
            out[:old] = arr
            return out

        self._a_rem = widen(self._a_rem, np.inf)
        self._a_rate = widen(self._a_rate, 0.0)
        self._a_eps = widen(self._a_eps, 0.0)
        self._a_live = widen(self._a_live, False)
        self._a_is_comm = widen(self._a_is_comm, False)
        self._a_obj.extend([None] * (new - old))
        self._a_free.extend(range(new - 1, old - 1, -1))
        self._a_scratch = np.empty(new, dtype=float)
        self._a_bool = np.empty(new, dtype=bool)
        self._a_bool2 = np.empty(new, dtype=bool)

    def _register(self, activity: Activity) -> None:
        if not self._a_free:
            self._grow_slots()
        slot = self._a_free.pop()
        activity._slot = slot
        self._a_obj[slot] = activity
        self._a_rem[slot] = activity.remaining
        self._a_rate[slot] = activity.rate
        self._a_eps[slot] = _REL_EPS * activity.scale
        self._a_live[slot] = True
        self._a_is_comm[slot] = isinstance(activity, CommActivity)
        self._a_count += 1

    def _unregister(self, activity: Activity, slot: int) -> None:
        self._a_live[slot] = False
        self._a_rem[slot] = np.inf
        self._a_rate[slot] = 0.0
        self._a_eps[slot] = 0.0
        self._a_is_comm[slot] = False
        self._a_obj[slot] = None
        self._a_free.append(slot)
        activity._slot = -1
        self._a_count -= 1

    def _live_activities(self) -> Iterator[Activity]:
        for slot in np.nonzero(self._a_live)[0].tolist():
            yield self._a_obj[slot]

    def sync_activities(self) -> None:
        """Flush array-held progress onto ``activity.remaining``/``.rate``.

        Process steps, completion callbacks, and ``run()`` returns flush
        automatically.  Timer callbacks do *not* — a timer callback that
        reads activity progress attributes must call this first (in-tree
        timer users only schedule new work, so the common case pays
        nothing)."""
        self._sync_objects()

    def _sync_objects(self) -> None:
        """Flush array-held progress state back onto the activity objects.

        Called before any user code can observe ``activity.remaining`` or
        ``activity.rate`` (process steps, completion callbacks) and when
        ``run()`` returns; timer callbacks opt in via
        :meth:`sync_activities`."""
        if not self._attrs_stale:
            return
        rem = self._a_rem
        rate = self._a_rate
        objs = self._a_obj
        for slot in np.nonzero(self._a_live)[0].tolist():
            activity = objs[slot]
            # _advance lets the completing slot dip epsilon-negative; clamp
            # here so user code never observes it
            r = rem[slot]
            activity.remaining = r if r > 0.0 else 0.0
            activity.rate = rate[slot]
        self._attrs_stale = False

    # -- public construction API -------------------------------------------

    def add_comm(
        self,
        src: str | Host,
        dst: str | Host,
        size: float,
        name: Optional[str] = None,
        payload: object = None,
    ) -> CommActivity:
        """Start a communication of ``size`` bytes from ``src`` to ``dst`` now."""
        src_host = src if isinstance(src, Host) else self.platform.host(src)
        dst_host = dst if isinstance(dst, Host) else self.platform.host(dst)
        if name is None:
            name = f"comm-{next(self._comm_counter)}"
        if src_host is dst_host:
            # loopback: serial latency, then drain at loopback bandwidth,
            # un-shared (each local transfer gets the full loopback rate)
            comm = CommActivity(
                name, src_host, dst_host, size, route=[],
                startup_latency=self.loopback_latency,
                weight=1.0, bound=self.loopback_bandwidth, payload=payload,
            )
        else:
            route = self.platform.route(src_host, dst_host)
            startup, weight, bound, usages = self.model.comm_spec(route)
            dynamics = (self.model.flow_dynamics(route)
                        if self.model.time_varying else None)
            if dynamics is not None:
                weight, bound = dynamics.spec()
            comm = CommActivity(
                name, src_host, dst_host, size, route=route,
                startup_latency=startup, weight=weight, bound=bound,
                payload=payload,
            )
            comm.usages = self._scaled_usages(usages)
            if dynamics is not None:
                # first round boundary: one dynamics interval after data
                # starts flowing (the startup phase covers the handshake)
                self._flow_timers[comm] = self.schedule(
                    startup + dynamics.interval,
                    lambda: self._flow_round(comm, dynamics),
                )
                comm.add_done_callback(self._cancel_flow_timer)
        comm.start_time = self.clock
        self._register(comm)
        self._started.append(comm)
        self._share_dirty = True
        if self.trace is not None:
            self.trace.record(self.clock, "comm_start", name=name,
                              src=src_host.name, dst=dst_host.name, size=size)
        return comm

    def add_exec(self, host: str | Host, flops: float, name: Optional[str] = None) -> ExecActivity:
        """Start a computation of ``flops`` on ``host`` now."""
        host_obj = host if isinstance(host, Host) else self.platform.host(host)
        if name is None:
            name = f"exec-{next(self._comm_counter)}"
        activity = ExecActivity(name, host_obj, flops)
        activity.usages = self._exec_usages(host_obj)
        activity.start_time = self.clock
        self._register(activity)
        self._started.append(activity)
        self._share_dirty = True
        if self.trace is not None:
            self.trace.record(self.clock, "exec_start", name=name,
                              host=host_obj.name, flops=flops)
        return activity

    def add_sleep(self, duration: float, name: Optional[str] = None) -> SleepActivity:
        """Start a pure delay of ``duration`` simulated seconds."""
        activity = SleepActivity(name or f"sleep-{next(self._comm_counter)}", duration)
        activity.start_time = self.clock
        self._register(activity)
        return activity

    def schedule(self, delay: float, callback: Callable[[], None]) -> list:
        """Run ``callback`` ``delay`` simulated seconds from now.

        Returns the heap entry as an opaque handle: setting its last element
        to ``None`` cancels the timer (the engine's flow-dynamics rounds use
        this; canceled entries are pruned lazily and never gate time)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        entry = [self.clock + delay, next(self._seq), callback]
        heapq.heappush(self._timers, entry)
        return entry

    # -- time-varying flow dynamics (congestion-aware models) ---------------

    def _cancel_flow_timer(self, comm: Activity) -> None:
        """Completion callback of every dynamics-driven comm: drop its
        pending round timer so it cannot keep the run alive past the last
        transfer."""
        entry = self._flow_timers.pop(comm, None)
        if entry is not None:
            entry[2] = None

    def _flow_round(self, comm: CommActivity, dynamics: object) -> None:
        """One RTT round boundary of a time-varying flow.

        Feeds the rate allocated during the ended round to the model's
        dynamics, applies the resulting ``(weight, bound)`` to the flow's
        sharing variable, and schedules the next round until the dynamics
        declare the flow steady."""
        slot = comm._slot
        if slot < 0 or comm.state is not ActivityState.RUNNING:
            self._flow_timers.pop(comm, None)
            return
        next_delay = dynamics.advance(float(self._a_rate[slot]))
        weight, bound = dynamics.spec()
        if weight != comm.weight or bound != comm.bound:
            comm.weight = weight
            comm.bound = bound
            vid = self._handles.get(comm)
            if vid is not None:
                self._sharing.update_variable(vid, weight, bound)
            self._share_dirty = True
        if next_delay is not None:
            self._flow_timers[comm] = self.schedule(
                next_delay, lambda: self._flow_round(comm, dynamics))
        else:
            self._flow_timers.pop(comm, None)

    def touch_sharing(self) -> None:
        """Force a re-share at the next event-loop iteration.

        Timer callbacks that mutate platform state the kernel cannot observe
        directly — link bandwidth/latency/policy edits (which bump the global
        :func:`~repro.simgrid.platform.link_epoch`), capacity-factor changes —
        must call this so in-flight activities recalibrate immediately instead
        of at the next activity start/completion.  The scenario dynamics
        schedules (:mod:`repro.scenarios.dynamics`) are the main user.
        """
        self._share_dirty = True

    # -- process integration (used by repro.simgrid.msg) --------------------

    def _make_runnable(self, process: object, value: object = None) -> None:
        self._runnable.append((process, value))

    def _drain_runnable(self) -> None:
        if self._runnable:
            # a process step is user code: it reads activity attributes and
            # may cancel activities without telling us
            self._sync_objects()
            self._user_code_ran = True
        while self._runnable:
            process, value = self._runnable.pop(0)
            process._step(value)  # type: ignore[attr-defined]

    def _sweep_external_states(self) -> None:
        """Evict activities whose state user code changed behind our back.

        ``Activity.cancel`` is the only API that moves an activity to a
        terminal state outside the event loop, and it bumps the global cancel
        epoch — an unchanged epoch makes this sweep O(1)."""
        epoch = cancel_epoch()
        if epoch == self._cancel_seen:
            return
        self._cancel_seen = epoch
        objs = self._a_obj
        for slot in np.nonzero(self._a_live)[0].tolist():
            activity = objs[slot]
            state = activity.state
            if state is _DONE or state is _CANCELED:
                self._unregister(activity, slot)
                self._finished.append(activity)
                self._share_dirty = True

    # -- resource sharing ----------------------------------------------------

    def _scaled_usages(
        self, usages: tuple[tuple[object, float, float], ...]
    ) -> tuple[tuple[object, float, float], ...]:
        """Apply per-link capacity factors (coarse background traffic) to the
        model's cached sharing usages.  The constraint key's first element is
        the :class:`~repro.simgrid.platform.Link` itself."""
        if not self.capacity_factors:
            return usages
        return tuple(
            (key, capacity * self.capacity_factors.get(key[0].name, 1.0), coeff)
            for key, capacity, coeff in usages
        )

    @staticmethod
    def _sharing_spec(activity: Activity) -> tuple[float, float]:
        """(weight, rate bound — ``inf`` when unbounded) of an activity's
        sharing variable.  Single source of truth for both re-share modes."""
        if isinstance(activity, CommActivity):
            return activity.weight, activity.bound
        host = activity.host  # type: ignore[attr-defined]
        return 1.0, host.speed

    @staticmethod
    def _exec_usages(host: Host) -> tuple[tuple[object, float, float], ...]:
        """The sharing usages of a computation: the host's core pool."""
        return ((("host", host.name), host.speed * host.cores, 1.0),)

    def _refresh_usages(self) -> None:
        """Re-derive every activity's cached sharing usages after in-place
        link mutation (latency feed recalibration, bandwidth edits) or a
        capacity-factor change."""
        for activity in self._live_activities():
            if isinstance(activity, CommActivity):
                if activity.route:
                    activity.usages = self._scaled_usages(
                        self.model.sharing_usages(activity.route)
                    )
            elif isinstance(activity, ExecActivity):
                activity.usages = self._exec_usages(activity.host)

    def _reshare(self) -> None:
        """Recompute progress rates for running activities.

        Incremental mode applies the started/finished deltas to the
        persistent arena and re-solves only the touched components;
        ``full_resolve`` rebuilds one :class:`MaxMinSystem` from scratch.
        """
        epoch = link_epoch()
        if epoch != self._usage_epoch or self.capacity_factors != self._factors_seen:
            # a link changed capacity/latency/policy in place, or the
            # background-traffic factors moved: stale cached usages must not
            # survive into the next solve
            self._usage_epoch = epoch
            self._factors_seen = dict(self.capacity_factors)
            self._refresh_usages()
            self._rebuild_sharing = True
        if self.full_resolve:
            self._reshare_full()
        else:
            self._reshare_incremental()
        self._share_dirty = False

    def _reshare_full(self) -> None:
        system = MaxMinSystem()
        constraints: dict[object, object] = {}
        pairs: list[tuple[Activity, object]] = []

        for activity in self._live_activities():
            if (
                isinstance(activity, (CommActivity, ExecActivity))
                and activity.state is ActivityState.RUNNING
            ):
                weight, bound = self._sharing_spec(activity)
                var = system.new_variable(weight=weight, bound=bound, payload=activity)
                for key, capacity, coefficient in activity.usages:
                    cons = constraints.get(key)
                    if cons is None:
                        cons = system.new_constraint(capacity, payload=key)
                        constraints[key] = cons
                    system.expand(cons, var, coefficient)
                pairs.append((activity, var))

        system.solve()
        rates = self._a_rate
        for activity, var in pairs:
            value = var.value
            if isinstance(activity, CommActivity) and not math.isfinite(value):
                # no constraint and no bound anywhere on the route: treat as
                # the loopback rate to keep time finite
                value = self.loopback_bandwidth
            activity.rate = value
            rates[activity._slot] = value
        # the incremental delta lists are not consumed in this mode — drop
        # them so completed activities don't accumulate for the run's life
        self._started.clear()
        self._finished.clear()
        self._rebuild_sharing = True

    def _ensure_vid_slot(self) -> None:
        cap = self._sharing.variable_capacity
        if self._vid_slot.size < cap:
            grown = np.full(cap, -1, dtype=np.intp)
            grown[: self._vid_slot.size] = self._vid_slot
            self._vid_slot = grown

    def _reshare_incremental(self) -> None:
        if self._rebuild_sharing:
            # external mutations (cancel between runs, link edits) are
            # untracked: rebuild the arena from the live activity set
            if self._handles:
                self._sharing = SharingSystem(vectorized=self.vectorized)
                self._vid_slot = np.full(64, -1, dtype=np.intp)
                self._handles.clear()
            self._finished.clear()
            self._started = list(self._live_activities())
            self._rebuild_sharing = False
        handles = self._handles
        sharing = self._sharing
        if self._finished:
            for activity in self._finished:
                vid = handles.pop(activity, None)
                if vid is not None:
                    sharing.remove_variable(vid)
            self._finished.clear()
            remap = sharing.maybe_compact()
            if remap is not None:
                # arena defragmentation renumbered every live vid
                for activity, vid in handles.items():
                    handles[activity] = remap[vid]
                self._vid_slot = np.full(
                    sharing.variable_capacity, -1, dtype=np.intp
                )
                for activity, vid in handles.items():
                    self._vid_slot[vid] = activity._slot
        if self._started:
            for activity in self._started:
                if (
                    activity.state is ActivityState.RUNNING
                    and isinstance(activity, (CommActivity, ExecActivity))
                    and activity not in handles
                ):
                    weight, bound = self._sharing_spec(activity)
                    vid = sharing.add_variable_unchecked(
                        weight, bound, activity, activity.usages
                    )
                    handles[activity] = vid
                    if vid >= self._vid_slot.size:
                        # the arena grew its slot buffers mid-batch
                        self._ensure_vid_slot()
                    self._vid_slot[vid] = activity._slot
            self._started.clear()
        vids, values = sharing.solve_raw()
        if vids.size:
            if vids.size <= 8:
                # tiny delta (the steady-state case): scalar scatter beats
                # the fancy-indexing round trip
                vid_slot = self._vid_slot
                rate = self._a_rate
                is_comm = self._a_is_comm
                for vid, value in zip(vids.tolist(), values.tolist()):
                    slot = vid_slot[vid]
                    if not math.isfinite(value) and is_comm[slot]:
                        value = self.loopback_bandwidth
                    rate[slot] = value
            else:
                slots = self._vid_slot[vids]
                if not np.isfinite(values).all():
                    bad = self._a_is_comm[slots] & ~np.isfinite(values)
                    if bad.any():
                        # no constraint and no bound anywhere on the route:
                        # treat as the loopback rate to keep time finite
                        # (same as full mode)
                        values = np.where(bad, self.loopback_bandwidth, values)
                self._a_rate[slots] = values
            self._attrs_stale = True

    @property
    def sharing_stats(self) -> dict:
        """Counters of the incremental arena (solves, components, …)."""
        return dict(self._sharing.stats)

    # -- main loop -----------------------------------------------------------

    def _next_event_time(self) -> float:
        # whole-array equivalent of min over Activity.time_to_completion:
        # dead slots hold rate=0 and keep the scratch's inf through the
        # masked divide (no errstate needed — zero rates are never divided)
        rate = self._a_rate
        ttc = self._a_scratch
        ttc.fill(np.inf)
        mask = np.greater(rate, 0.0, out=self._a_bool)
        np.divide(self._a_rem, rate, out=ttc, where=mask)
        dt = float(ttc.min())
        t = self.clock + dt if dt != math.inf else math.inf
        timers = self._timers
        while timers and timers[0][2] is None:
            # lazily drop canceled timers so they never gate time
            heapq.heappop(timers)
        if timers and timers[0][0] < t:
            t = timers[0][0]
        return t

    def run(self, until: float = math.inf, max_iterations: int = 50_000_000) -> float:
        """Advance the simulation until no work remains (or ``until``).

        Returns the final simulated clock.
        """
        # external mutations (cancel, link edits) between runs are untracked:
        # force a re-share, a sweep and a full arena rebuild
        self._share_dirty = True
        self._rebuild_sharing = True
        self._user_code_ran = True
        for _ in range(max_iterations):
            self._drain_runnable()
            if self._user_code_ran:
                self._user_code_ran = False
                self._sweep_external_states()
            if self._share_dirty:
                self._reshare()
            t_next = self._next_event_time()
            if t_next == math.inf or t_next > until:
                if math.isfinite(until) and until > self.clock:
                    # drain partial progress up to the stop point
                    self._advance(until - self.clock)
                    self.clock = until
                self._sync_objects()
                self._drop_sharing_deltas()
                return self.clock
            dt = t_next - self.clock
            if dt > 0:
                self._advance(dt)
            self.clock = t_next
            if self._timers and self._timers[0][0] <= self.clock + 1e-15:
                # timer callbacks that read activity progress attributes must
                # call sync_activities(); the engine does not flush here
                self._user_code_ran = True
                self._fire_due_timers()
            self._complete_finished()
            if not self._a_count and not self._timers and not self._runnable:
                self._sync_objects()
                self._drop_sharing_deltas()
                return self.clock
        raise SimulationError("max_iterations exceeded; livelocked simulation?")

    def _advance(self, dt: float) -> None:
        # whole-array progress drain; dead slots (rate 0, remaining inf) are
        # untouched by construction
        # remaining may dip epsilon-negative for the completing slot; it is
        # unregistered by _complete_finished in this same iteration, and
        # _sync_objects clamps what user code sees, so no extra pass here
        rem = self._a_rem
        step = self._a_scratch
        np.multiply(self._a_rate, dt, out=step)
        np.subtract(rem, step, out=rem)
        self._attrs_stale = True

    def _drop_sharing_deltas(self) -> None:
        """Forget the started/finished tracking lists at run() exit.

        Every ``run()`` begins with a full arena rebuild (external mutations
        between runs are untracked), so deltas never survive a return — and
        holding them would pin completed activities in memory."""
        self._started.clear()
        self._finished.clear()
        self._rebuild_sharing = True

    def _fire_due_timers(self) -> None:
        while self._timers and self._timers[0][0] <= self.clock + 1e-15:
            _, _, callback = heapq.heappop(self._timers)
            if callback is not None:
                callback()

    def _complete_finished(self) -> None:
        # dead slots fail both terms (remaining inf, eps 0, rate 0), so the
        # liveness array stays out of the mask
        mask = np.less_equal(self._a_rem, self._a_eps, out=self._a_bool)
        np.logical_and(mask, np.greater(self._a_rate, 0.0, out=self._a_bool2),
                       out=mask)
        hits = np.nonzero(mask)[0]
        if not hits.size:
            return
        objs = self._a_obj
        rate_arr = self._a_rate
        clock = self.clock
        finished: list[Activity] = []
        dead: list[int] = []
        for slot in hits.tolist():
            activity = objs[slot]
            state = activity.state
            if state is _DONE or state is _CANCELED:
                # a timer at this same event canceled/completed it already
                dead.append(slot)
                objs[slot] = None
                activity._slot = -1
                self._finished.append(activity)
                continue
            activity.remaining = 0.0
            if activity.phase_complete(clock):
                activity.rate = float(rate_arr[slot])
                dead.append(slot)
                objs[slot] = None
                activity._slot = -1
                finished.append(activity)
                self._finished.append(activity)
            else:
                # phase transition (latency -> transfer): the activity now
                # enters the sharing system; the completion tolerance moves
                # from second units to the transfer's byte scale
                self._a_rem[slot] = activity.remaining
                rate_arr[slot] = activity.rate
                self._a_eps[slot] = _REL_EPS * activity.scale
                self._started.append(activity)
        if dead:
            # batched _unregister: one fancy write per array for the whole
            # completion batch instead of six scalar writes per activity
            # (a single completion — the common steady-state case — takes
            # the cheaper scalar writes)
            idx = dead[0] if len(dead) == 1 else dead
            self._a_live[idx] = False
            self._a_rem[idx] = np.inf
            rate_arr[idx] = 0.0
            self._a_eps[idx] = 0.0
            self._a_is_comm[idx] = False
            self._a_free.extend(dead)
            self._a_count -= len(dead)
        self._share_dirty = True
        if finished:
            if any(a._callbacks for a in finished):
                # completion callbacks are user code: they may read any
                # activity's progress attributes
                self._sync_objects()
                self._user_code_ran = True
            trace = self.trace
            for activity in finished:
                if trace is not None:
                    trace.record(clock, "activity_end",
                                 name=activity.name,
                                 duration=activity.duration)
                activity._fire()

    # -- convenience ---------------------------------------------------------

    def simulate_transfers(
        self, transfers: list[tuple[str, str, float]]
    ) -> list[CommActivity]:
        """Start all ``(src, dst, size)`` transfers at t=0 and run to completion.

        This is exactly what the paper's forecast service does: "a SimGrid
        simulation is instantiated, containing one send and one receive
        process for each requested transfer" (§IV-C2).  Returns the completed
        communication activities (with ``start_time``/``finish_time`` set).
        """
        comms = [self.add_comm(src, dst, size) for src, dst, size in transfers]
        self.run()
        return comms
