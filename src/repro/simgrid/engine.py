"""Discrete-event simulation kernel.

The kernel follows the paper's description of SimGrid (§IV-A): it is "based on
discrete events evaluations, corresponding to resource state changes […]  At
each event, resource sharing is evaluated, date of the next event is computed,
and simulated time is fast-forwarded to the next event."

Concretely, each loop iteration:

1. lets every runnable MSG process advance until it blocks (possibly creating
   new activities),
2. re-solves resource sharing (one bounded weighted max-min system covering
   all transferring communications and all executing computations),
3. finds the earliest phase boundary among activities and timers,
4. fast-forwards the clock, drains activity progress, completes what finished.

Same-host communications bypass sharing through a configurable loopback
(SimGrid models these with a dedicated loopback link as well).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Optional

from repro.simgrid.activities import (
    Activity,
    ActivityState,
    CommActivity,
    ExecActivity,
    SleepActivity,
)
from repro.simgrid.maxmin import MaxMinSystem
from repro.simgrid.models import LV08, NetworkModel
from repro.simgrid.platform import Host, Platform, SharingPolicy
from repro.simgrid.trace import Trace

#: Completion tolerance relative to the activity's total amount of work.
_REL_EPS = 1e-9


class SimulationError(Exception):
    """Raised on kernel misuse (negative delays, deadlocked run, …)."""


class Simulation:
    """A simulation instance bound to one platform and one network model."""

    def __init__(
        self,
        platform: Platform,
        model: Optional[NetworkModel] = None,
        loopback_bandwidth: float = 1e10,
        loopback_latency: float = 1.5e-6,
        trace: Optional[Trace] = None,
        capacity_factors: Optional[dict[str, float]] = None,
    ) -> None:
        self.platform = platform
        self.model = model if model is not None else LV08()
        self.loopback_bandwidth = float(loopback_bandwidth)
        self.loopback_latency = float(loopback_latency)
        self.trace = trace
        #: per-link capacity scaling in [0, 1], keyed by link name — the
        #: coarse background-traffic model of §VI (bandwidth consumed by
        #: traffic outside this simulation)
        self.capacity_factors = dict(capacity_factors or {})
        for name, factor in self.capacity_factors.items():
            if not 0.0 < factor <= 1.0:
                raise SimulationError(
                    f"capacity factor for {name!r} must be in (0, 1]: {factor}"
                )
        self.clock = 0.0
        self._activities: list[Activity] = []
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._runnable: list[tuple[object, object]] = []  # (process, send_value)
        self._share_dirty = True
        self._comm_counter = itertools.count()

    # -- public construction API -------------------------------------------

    def add_comm(
        self,
        src: str | Host,
        dst: str | Host,
        size: float,
        name: Optional[str] = None,
        payload: object = None,
    ) -> CommActivity:
        """Start a communication of ``size`` bytes from ``src`` to ``dst`` now."""
        src_host = src if isinstance(src, Host) else self.platform.host(src)
        dst_host = dst if isinstance(dst, Host) else self.platform.host(dst)
        if name is None:
            name = f"comm-{next(self._comm_counter)}"
        if src_host is dst_host:
            # loopback: serial latency, then drain at loopback bandwidth,
            # un-shared (each local transfer gets the full loopback rate)
            comm = CommActivity(
                name, src_host, dst_host, size, route=[],
                startup_latency=self.loopback_latency,
                weight=1.0, bound=self.loopback_bandwidth, payload=payload,
            )
        else:
            route = self.platform.route(src_host, dst_host)
            comm = CommActivity(
                name, src_host, dst_host, size, route=route,
                startup_latency=self.model.startup_latency(route),
                weight=self.model.flow_weight(route),
                bound=self.model.rate_bound(route),
                payload=payload,
            )
        comm.start_time = self.clock
        self._activities.append(comm)
        self._share_dirty = True
        if self.trace is not None:
            self.trace.record(self.clock, "comm_start", name=name,
                              src=src_host.name, dst=dst_host.name, size=size)
        return comm

    def add_exec(self, host: str | Host, flops: float, name: Optional[str] = None) -> ExecActivity:
        """Start a computation of ``flops`` on ``host`` now."""
        host_obj = host if isinstance(host, Host) else self.platform.host(host)
        if name is None:
            name = f"exec-{next(self._comm_counter)}"
        activity = ExecActivity(name, host_obj, flops)
        activity.start_time = self.clock
        self._activities.append(activity)
        self._share_dirty = True
        if self.trace is not None:
            self.trace.record(self.clock, "exec_start", name=name,
                              host=host_obj.name, flops=flops)
        return activity

    def add_sleep(self, duration: float, name: Optional[str] = None) -> SleepActivity:
        """Start a pure delay of ``duration`` simulated seconds."""
        activity = SleepActivity(name or f"sleep-{next(self._comm_counter)}", duration)
        activity.start_time = self.clock
        self._activities.append(activity)
        return activity

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        heapq.heappush(self._timers, (self.clock + delay, next(self._seq), callback))

    # -- process integration (used by repro.simgrid.msg) --------------------

    def _make_runnable(self, process: object, value: object = None) -> None:
        self._runnable.append((process, value))

    def _drain_runnable(self) -> None:
        while self._runnable:
            process, value = self._runnable.pop(0)
            process._step(value)  # type: ignore[attr-defined]

    # -- resource sharing ----------------------------------------------------

    def _reshare(self) -> None:
        """Recompute progress rates for all running activities."""
        system = MaxMinSystem()
        constraints: dict[object, object] = {}
        pairs: list[tuple[Activity, object]] = []

        for activity in self._activities:
            if isinstance(activity, CommActivity) and activity.state is ActivityState.RUNNING:
                bound = activity.bound if math.isfinite(activity.bound) else None
                var = system.new_variable(weight=activity.weight, bound=bound, payload=activity)
                for use in activity.route:
                    link = use.link
                    if link.policy is SharingPolicy.FATPIPE:
                        continue  # folded into the bound by the model
                    key = link.constraint_key(use.direction)
                    cons = constraints.get(key)
                    if cons is None:
                        capacity = self.model.effective_bandwidth(link.bandwidth)
                        capacity *= self.capacity_factors.get(link.name, 1.0)
                        cons = system.new_constraint(capacity, payload=key)
                        constraints[key] = cons
                    system.expand(cons, var)
                pairs.append((activity, var))
            elif isinstance(activity, ExecActivity) and activity.state is ActivityState.RUNNING:
                host = activity.host
                key = ("host", host.name)
                cons = constraints.get(key)
                if cons is None:
                    cons = system.new_constraint(host.speed * host.cores, payload=key)
                    constraints[key] = cons
                var = system.new_variable(weight=1.0, bound=host.speed, payload=activity)
                system.expand(cons, var)
                pairs.append((activity, var))

        system.solve()
        for activity, var in pairs:
            rate = var.value
            if isinstance(activity, CommActivity) and not math.isfinite(rate):
                # no constraint and no bound anywhere on the route: treat as
                # the loopback rate to keep time finite
                rate = self.loopback_bandwidth
            activity.rate = rate
        self._share_dirty = False

    # -- main loop -----------------------------------------------------------

    def _next_event_time(self) -> float:
        t = math.inf
        for activity in self._activities:
            t = min(t, self.clock + activity.time_to_completion())
        if self._timers:
            t = min(t, self._timers[0][0])
        return t

    def run(self, until: float = math.inf, max_iterations: int = 50_000_000) -> float:
        """Advance the simulation until no work remains (or ``until``).

        Returns the final simulated clock.
        """
        # external mutations (cancel, link edits) between runs are untracked
        self._share_dirty = True
        for _ in range(max_iterations):
            self._drain_runnable()
            if self._share_dirty:
                self._reshare()
            t_next = self._next_event_time()
            if t_next is math.inf or t_next > until:
                if math.isfinite(until) and until > self.clock:
                    # drain partial progress up to the stop point
                    dt = until - self.clock
                    for activity in self._activities:
                        activity.advance(dt)
                    self.clock = until
                return self.clock
            dt = t_next - self.clock
            if dt > 0:
                for activity in self._activities:
                    activity.advance(dt)
            self.clock = t_next
            self._fire_due_timers()
            self._complete_finished()
            if not self._activities and not self._timers and not self._runnable:
                return self.clock
        raise SimulationError("max_iterations exceeded; livelocked simulation?")

    def _fire_due_timers(self) -> None:
        while self._timers and self._timers[0][0] <= self.clock + 1e-15:
            _, _, callback = heapq.heappop(self._timers)
            callback()

    def _complete_finished(self) -> None:
        still_active: list[Activity] = []
        finished: list[Activity] = []
        for activity in self._activities:
            total = getattr(activity, "size", None)
            if isinstance(activity, ExecActivity):
                total = activity.flops
            scale = max(total or 1.0, 1.0)
            if (
                activity.state not in (ActivityState.DONE, ActivityState.CANCELED)
                and activity.rate > 0.0
                and activity.remaining <= _REL_EPS * scale
            ):
                activity.remaining = 0.0
                if activity.phase_complete(self.clock):
                    finished.append(activity)
                else:
                    still_active.append(activity)  # phase transition (latency -> transfer)
                self._share_dirty = True
            elif activity.state in (ActivityState.DONE, ActivityState.CANCELED):
                self._share_dirty = True
            else:
                still_active.append(activity)
        self._activities = still_active
        for activity in finished:
            if self.trace is not None:
                self.trace.record(self.clock, "activity_end", name=activity.name,
                                  duration=activity.duration)
            activity._fire()

    # -- convenience ---------------------------------------------------------

    def simulate_transfers(
        self, transfers: list[tuple[str, str, float]]
    ) -> list[CommActivity]:
        """Start all ``(src, dst, size)`` transfers at t=0 and run to completion.

        This is exactly what the paper's forecast service does: "a SimGrid
        simulation is instantiated, containing one send and one receive
        process for each requested transfer" (§IV-C2).  Returns the completed
        communication activities (with ``start_time``/``finish_time`` set).
        """
        comms = [self.add_comm(src, dst, size) for src, dst, size in transfers]
        self.run()
        return comms
