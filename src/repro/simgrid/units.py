"""Parsing and formatting of bandwidth, time and size values.

Follows SimGrid XML conventions: bare numbers are base units (bytes/s for
bandwidth, seconds for time, bytes for size); suffixes select SI or binary
multiples.  Bandwidth accepts both ``bps`` (bits per second) and ``Bps``
(bytes per second) spellings, e.g. ``"1Gbps"`` == ``"125MBps"`` == ``1.25e8``.
"""

from __future__ import annotations

import re

_SI = {
    "": 1.0,
    "k": 1e3,
    "K": 1e3,
    "M": 1e6,
    "G": 1e9,
    "T": 1e12,
    "P": 1e15,
}
_BINARY = {
    "Ki": 2.0**10,
    "Mi": 2.0**20,
    "Gi": 2.0**30,
    "Ti": 2.0**40,
    "Pi": 2.0**50,
}
_TIME = {
    "s": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "µs": 1e-6,  # micro sign
    "ns": 1e-9,
    "ps": 1e-12,
    "m": 60.0,
    "h": 3600.0,
    "d": 86400.0,
    "w": 7 * 86400.0,
}

_NUMBER = r"[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?"
_BW_RE = re.compile(rf"^\s*({_NUMBER})\s*([A-Za-zµ]*)\s*$")


class UnitError(ValueError):
    """Raised for malformed unit strings."""


def _split(text: str) -> tuple[float, str]:
    match = _BW_RE.match(text)
    if not match:
        raise UnitError(f"cannot parse value: {text!r}")
    return float(match.group(1)), match.group(2)


def parse_bandwidth(value: float | int | str) -> float:
    """Parse a bandwidth into bytes per second.

    Accepts numbers (bytes/s), and strings with ``bps`` (bits/s), ``Bps``
    (bytes/s) or no suffix (bytes/s), with SI (``k``, ``M``, ``G``, ``T``)
    or binary (``Ki``, ``Mi``, ``Gi``) prefixes: ``"10Gbps"`` → 1.25e9.
    """
    if isinstance(value, (int, float)):
        result = float(value)
    else:
        number, suffix = _split(value)
        if suffix == "":
            result = number
        else:
            if suffix.endswith("bps"):
                scale_bits, prefix = 1 / 8.0, suffix[:-3]
            elif suffix.endswith("Bps"):
                scale_bits, prefix = 1.0, suffix[:-3]
            else:
                raise UnitError(f"unknown bandwidth suffix: {value!r}")
            if prefix in _BINARY:
                mult = _BINARY[prefix]
            elif prefix in _SI:
                mult = _SI[prefix]
            else:
                raise UnitError(f"unknown bandwidth prefix: {value!r}")
            result = number * mult * scale_bits
    if result < 0:
        raise UnitError(f"bandwidth must be non-negative: {value!r}")
    return result


def parse_time(value: float | int | str) -> float:
    """Parse a duration/latency into seconds (``"225us"`` → 2.25e-4)."""
    if isinstance(value, (int, float)):
        result = float(value)
    else:
        number, suffix = _split(value)
        if suffix == "":
            result = number
        elif suffix in _TIME:
            result = number * _TIME[suffix]
        else:
            raise UnitError(f"unknown time suffix: {value!r}")
    if result < 0:
        raise UnitError(f"time must be non-negative: {value!r}")
    return result


def parse_size(value: float | int | str) -> float:
    """Parse a data size into bytes (``"500MB"`` → 5e8, ``"1GiB"`` → 2**30)."""
    if isinstance(value, (int, float)):
        result = float(value)
    else:
        number, suffix = _split(value)
        if suffix == "":
            result = number
        else:
            if suffix.endswith("B"):
                prefix = suffix[:-1]
            elif suffix.endswith("b"):
                # bits
                prefix = suffix[:-1]
                number /= 8.0
            else:
                raise UnitError(f"unknown size suffix: {value!r}")
            if prefix in _BINARY:
                mult = _BINARY[prefix]
            elif prefix in _SI:
                mult = _SI[prefix]
            else:
                raise UnitError(f"unknown size prefix: {value!r}")
            result = number * mult
    if result < 0:
        raise UnitError(f"size must be non-negative: {value!r}")
    return result


def parse_speed(value: float | int | str) -> float:
    """Parse a compute speed into flop/s (``"1Gf"`` → 1e9, bare = flop/s)."""
    if isinstance(value, (int, float)):
        result = float(value)
    else:
        number, suffix = _split(value)
        if suffix == "":
            result = number
        else:
            if not suffix.endswith("f"):
                raise UnitError(f"unknown speed suffix: {value!r}")
            prefix = suffix[:-1]
            if prefix in _BINARY:
                mult = _BINARY[prefix]
            elif prefix in _SI:
                mult = _SI[prefix]
            else:
                raise UnitError(f"unknown speed prefix: {value!r}")
            result = number * mult
    if result < 0:
        raise UnitError(f"speed must be non-negative: {value!r}")
    return result


def format_bandwidth(bytes_per_s: float) -> str:
    """Human-readable bandwidth, in bit/s like network engineers expect."""
    bits = bytes_per_s * 8.0
    for unit, scale in (("Tbps", 1e12), ("Gbps", 1e9), ("Mbps", 1e6), ("kbps", 1e3)):
        if bits >= scale:
            return f"{bits / scale:.6g}{unit}"
    return f"{bits:.6g}bps"


def format_time(seconds: float) -> str:
    """Human-readable duration (``0.000225`` → ``"225us"``)."""
    for unit, scale in (("s", 1.0), ("ms", 1e-3), ("us", 1e-6), ("ns", 1e-9)):
        if seconds >= scale or unit == "ns":
            return f"{seconds / scale:.6g}{unit}"
    return f"{seconds:.6g}s"


def format_size(size_bytes: float) -> str:
    """Human-readable size (``5e8`` → ``"500MB"``)."""
    for unit, scale in (("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("kB", 1e3)):
        if size_bytes >= scale:
            return f"{size_bytes / scale:.6g}{unit}"
    return f"{size_bytes:.6g}B"
