"""Routing analysis utilities: validation and flat-vs-hierarchical tooling.

The paper stresses (§IV-C2) that SimGrid's hierarchical Autonomous Systems
made it feasible to simulate the whole of Grid'5000, where the earlier *flat*
description required a quadratic route table too large to hold in memory.
This module provides:

- :func:`validate_all_routes` — checks every host pair resolves to a sane
  route (used by converter tests),
- :func:`flatten_platform` — materialises the flat equivalent of a
  hierarchical platform (one Full AS, every pair declared), the object whose
  cost the routing-scalability bench measures,
- :func:`route_signature` — hashable route summary for comparisons.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from repro.simgrid.platform import (
    Host,
    LinkUse,
    NoRouteError,
    Platform,
    RouteCache,
)

__all__ = [
    "RouteCache",
    "flatten_platform",
    "route_cache_stats",
    "route_signature",
    "route_table_bytes",
    "validate_all_routes",
]


def route_cache_stats(platform: Platform) -> dict:
    """Convenience accessor for a platform's LRU route cache counters."""
    return platform.route_cache_info()


def route_signature(route: Iterable[LinkUse]) -> tuple[tuple[str, str], ...]:
    """Hashable summary of a route: ``((link name, direction), …)``."""
    return tuple((use.link.name, use.direction.value) for use in route)


def validate_all_routes(
    platform: Platform,
    hosts: Optional[list[str]] = None,
    sample: Optional[int] = None,
    seed: int = 0,
) -> dict:
    """Resolve routes for (a sample of) all host pairs; raise on failure.

    Returns summary statistics: number of pairs checked, min/max hop count,
    and how many pairs are asymmetric (forward route is not the mirror of the
    reverse route — allowed, but worth surfacing).
    """
    names = hosts if hosts is not None else [h.name for h in platform.hosts()]
    pairs = [(a, b) for a, b in itertools.permutations(names, 2)]
    if sample is not None and sample < len(pairs):
        from repro._util.rng import rng_for

        rng = rng_for(seed, "validate_all_routes")
        idx = rng.choice(len(pairs), size=sample, replace=False)
        pairs = [pairs[i] for i in idx]
    hops_min, hops_max = float("inf"), 0
    asymmetric = 0
    for a, b in pairs:
        route = platform.route(a, b)
        if not route:
            raise NoRouteError(f"empty route between distinct hosts {a!r} and {b!r}")
        hops_min = min(hops_min, len(route))
        hops_max = max(hops_max, len(route))
        back = platform.route(b, a)
        mirrored = tuple(use.reversed() for use in reversed(route))
        if tuple(back) != mirrored:
            asymmetric += 1
    return {
        "pairs": len(pairs),
        "min_hops": int(hops_min) if pairs else 0,
        "max_hops": int(hops_max),
        "asymmetric_pairs": asymmetric,
    }


def flatten_platform(platform: Platform, name: Optional[str] = None) -> Platform:
    """Build the *flat* equivalent of ``platform``: a single Full-routing AS
    containing every host and an explicit route for every ordered host pair.

    This reproduces the pre-AS situation the paper describes ("a huge routing
    table which would consume a lot of memory, to the point that it was
    impossible to wholly simulate Grid'5000").  Links are shared with the
    original platform objects, so simulations on the flat platform produce
    identical timings — only the routing-table cost differs.
    """
    flat = Platform(name or f"{platform.name}-flat", routing="Full")
    hosts = platform.hosts()
    for host in hosts:
        clone = Host(host.name, speed=host.speed, cores=host.cores,
                     properties=host.properties)
        flat.root._register(clone)
    for a, b in itertools.permutations([h.name for h in hosts], 2):
        route = platform.route(a, b)
        flat.root._routes[(a, b)] = _entry_from(route)
    return flat


def _entry_from(route: list[LinkUse]):
    from repro.simgrid.platform import RouteEntry

    return RouteEntry(links=list(route))


def route_table_bytes(platform: Platform) -> int:
    """Rough memory footprint of all declared route entries, in bytes.

    Counts one pointer-sized slot per link use plus fixed per-entry overhead;
    a deliberately simple estimator for the scalability bench (relative
    comparison flat vs hierarchical is what matters).
    """
    import sys

    total = 0
    ases = [platform.root, *platform.root.descendants()]
    for as_ in ases:
        for entry in as_._routes.values():
            total += sys.getsizeof(entry.links)
            total += 8 * len(entry.links) + 64
    return total
