"""Simulation activities: communications, executions, sleeps.

An *activity* is a unit of simulated work whose progress rate is set by the
resource-sharing solve (:meth:`repro.simgrid.engine.Simulation._reshare`).
Communications go through two phases, mirroring the flow-level TCP model:

1. ``LATENCY`` — a serial delay of ``latency_factor × Σ link latency`` during
   which no bandwidth is consumed (the model's stand-in for connection
   establishment and slow start),
2. ``TRANSFER`` — the payload drains at the max-min allocated rate.

Activities are *waitables*: MSG processes ``yield`` them, and completion
callbacks drive the process scheduler.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Optional, Sequence

from repro.simgrid.platform import Host, LinkUse


class ActivityState(enum.Enum):
    PENDING = "pending"
    LATENCY = "latency"
    RUNNING = "running"
    DONE = "done"
    CANCELED = "canceled"


# global cancellation counter: bumped by every Activity.cancel() so engines
# can tell in O(1) whether any user code canceled an activity behind their
# back (the only external state change possible) instead of sweeping every
# live activity after each callback
_cancel_epoch = 0


def cancel_epoch() -> int:
    return _cancel_epoch


class Waitable:
    """Anything a process can wait on: completion flag + callbacks + result."""

    __slots__ = ("_done", "_callbacks", "result")

    def __init__(self) -> None:
        self._done = False
        self._callbacks: list[Callable[["Waitable"], None]] = []
        self.result: object = None

    @property
    def done(self) -> bool:
        return self._done

    def add_done_callback(self, callback: Callable[["Waitable"], None]) -> None:
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self) -> None:
        if self._done:
            return
        self._done = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class Activity(Waitable):
    """Base class for resource-consuming activities."""

    __slots__ = ("name", "state", "start_time", "finish_time", "remaining",
                 "rate", "usages", "scale", "_slot")

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name
        self.state = ActivityState.PENDING
        self.start_time = math.nan
        self.finish_time = math.nan
        self.remaining = 0.0
        self.rate = 0.0
        #: cached ``(constraint key, capacity, coefficient)`` triples — the
        #: activity's consumption on the sharing system, computed once by the
        #: engine at start instead of re-derived from the route every event
        self.usages: tuple[tuple[object, float, float], ...] = ()
        #: completion-tolerance scale (the total amount of work, floored at
        #: 1), precomputed so the event loop's finish check is a single
        #: comparison per activity per event
        self.scale = 1.0
        #: index into the owning engine's progress slot arrays; -1 while the
        #: activity is not registered with any engine
        self._slot = -1

    # -- engine protocol ---------------------------------------------------

    def time_to_completion(self) -> float:
        """Simulated seconds until this activity's next phase boundary."""
        if self.state in (ActivityState.DONE, ActivityState.CANCELED):
            return math.inf
        if self.rate <= 0.0:
            return math.inf
        if self.remaining <= 0.0:
            return 0.0
        return self.remaining / self.rate

    def advance(self, dt: float) -> None:
        if self.rate > 0.0 and self.remaining > 0.0:
            self.remaining = max(0.0, self.remaining - self.rate * dt)

    def phase_complete(self, now: float) -> bool:
        """Called when ``remaining`` hits zero.  Returns True when the whole
        activity is finished (as opposed to an internal phase transition)."""
        self.state = ActivityState.DONE
        self.finish_time = now
        return True

    def cancel(self, now: float) -> None:
        if self.state in (ActivityState.DONE, ActivityState.CANCELED):
            return
        global _cancel_epoch
        _cancel_epoch += 1
        self.state = ActivityState.CANCELED
        self.finish_time = now
        self._fire()

    @property
    def duration(self) -> float:
        """Total simulated duration (finish − start); NaN until finished."""
        return self.finish_time - self.start_time


class CommActivity(Activity):
    """A point-to-point data transfer across a resolved route."""

    __slots__ = ("src", "dst", "size", "route", "weight", "bound", "payload")

    def __init__(
        self,
        name: str,
        src: Host,
        dst: Host,
        size: float,
        route: Sequence[LinkUse],
        startup_latency: float,
        weight: float,
        bound: float,
        payload: object = None,
    ) -> None:
        super().__init__(name)
        if size < 0:
            raise ValueError(f"comm {name!r}: size must be >= 0, got {size}")
        self.src = src
        self.dst = dst
        self.size = float(size)
        # always copy: comm.route is mutable per-activity state and must
        # never alias the platform's shared route-cache entries
        self.route = list(route)
        self.weight = weight
        self.bound = bound
        self.payload = payload
        if startup_latency > 0.0:
            self.state = ActivityState.LATENCY
            self.remaining = startup_latency
            self.rate = 1.0  # latency drains in real time
            # the countdown is in seconds, so the completion tolerance must
            # be too — a byte-scaled epsilon would swallow a whole latency
            # phase at the first foreign event
            self.scale = startup_latency
        else:
            self.state = ActivityState.RUNNING
            self.remaining = self.size
            self.scale = max(self.size, 1.0)

    @property
    def in_transfer_phase(self) -> bool:
        return self.state is ActivityState.RUNNING

    def phase_complete(self, now: float) -> bool:
        if self.state is ActivityState.LATENCY:
            self.state = ActivityState.RUNNING
            self.remaining = self.size
            self.rate = 0.0  # next reshare assigns the bandwidth share
            self.scale = max(self.size, 1.0)  # tolerance back to byte units
            if self.size > 0.0:
                return False
        self.state = ActivityState.DONE
        self.finish_time = now
        return True


class ExecActivity(Activity):
    """A computation of ``flops`` floating-point operations on one host."""

    __slots__ = ("host", "flops")

    def __init__(self, name: str, host: Host, flops: float) -> None:
        super().__init__(name)
        if flops < 0:
            raise ValueError(f"exec {name!r}: flops must be >= 0, got {flops}")
        self.host = host
        self.flops = float(flops)
        self.scale = max(self.flops, 1.0)
        self.state = ActivityState.RUNNING
        self.remaining = self.flops


class SleepActivity(Activity):
    """A pure delay; drains in real time without consuming resources."""

    __slots__ = ()

    def __init__(self, name: str, duration: float) -> None:
        super().__init__(name)
        if duration < 0:
            raise ValueError(f"sleep {name!r}: duration must be >= 0")
        self.state = ActivityState.RUNNING
        self.remaining = float(duration)
        self.rate = 1.0
