"""Round-robin database substrate.

The paper's first Pilgrim service is "a remote API for accessing RRD files
[…] hiding the complexities of these files (in particular the multiple
precisions and time-spans of round-robin archives per RRD file)" (§IV-C1).
To make that service real, this subpackage implements RRD semantics from
scratch: primary data points on a fixed step, multiple round-robin archives
with consolidation functions (AVERAGE/MIN/MAX/LAST) and xff thresholds,
counter/gauge data sources with heartbeat-based unknowns, and a fetch that
picks the most accurate archive per time segment.
"""

from repro.rrd.rra import ConsolidationFunction, RraSpec, RoundRobinArchive
from repro.rrd.database import DataSourceSpec, RoundRobinDatabase, RrdError
from repro.rrd.fileio import load_rrd, save_rrd

__all__ = [
    "ConsolidationFunction",
    "RraSpec",
    "RoundRobinArchive",
    "DataSourceSpec",
    "RoundRobinDatabase",
    "RrdError",
    "load_rrd",
    "save_rrd",
]
