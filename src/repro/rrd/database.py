"""The round-robin database: data source + primary data points + archives.

One :class:`RoundRobinDatabase` holds one data source (as Ganglia RRDs do)
and any number of archives.  Updates are timestamped samples; the database
normalises them onto its fixed primary step (rrdtool's PDP mechanism):

- **GAUGE** sources record the value as-is,
- **COUNTER**/**DERIVE** sources record the rate of change per second
  (COUNTER rejects negative rates — counter wrap is treated as unknown),
- gaps longer than the heartbeat yield *unknown* (NaN) PDPs.

:meth:`fetch` implements the paper's metrology-service contract (§IV-C1):
"for given lower and upper bound timestamps, the service will answer with
all metric values between these bounds, automatically gathering the most
accurate data from the different round-robin archives available".
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Optional

from repro.rrd.rra import (
    BOUNDARY_EPS,
    ConsolidationFunction,
    RoundRobinArchive,
    RraSpec,
)


class RrdError(Exception):
    """Invalid RRD construction, update or fetch."""


@dataclass(frozen=True)
class DataSourceSpec:
    """Definition of the stored metric."""

    name: str
    kind: str = "GAUGE"  # GAUGE | COUNTER | DERIVE
    heartbeat: float = 40.0
    minimum: float = -math.inf
    maximum: float = math.inf

    def __post_init__(self) -> None:
        if self.kind not in ("GAUGE", "COUNTER", "DERIVE"):
            raise RrdError(f"unknown data-source kind {self.kind!r}")
        if self.heartbeat <= 0:
            raise RrdError("heartbeat must be positive")


def _merge_intervals(
    intervals: list[tuple[float, float]], tol: float
) -> list[tuple[float, float]]:
    """Union of half-open ``(start, end]`` intervals (touching ones join)."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1] + tol:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def _subtract_intervals(
    span: tuple[float, float], covered: list[tuple[float, float]], tol: float
) -> list[tuple[float, float]]:
    """``span`` minus the (merged, sorted) ``covered`` intervals; fragments
    shorter than ``tol`` are dropped."""
    start, end = span
    out: list[tuple[float, float]] = []
    cursor = start
    for c_start, c_end in covered:
        if c_end <= cursor + tol:
            continue
        if c_start >= end - tol:
            break
        if c_start > cursor + tol:
            out.append((cursor, min(c_start, end)))
        cursor = max(cursor, c_end)
        if cursor >= end - tol:
            break
    if cursor < end - tol:
        out.append((cursor, end))
    return out


DEFAULT_RRAS = (
    RraSpec(ConsolidationFunction.AVERAGE, 1, 360),     # fine: step-resolution
    RraSpec(ConsolidationFunction.AVERAGE, 12, 360),    # medium
    RraSpec(ConsolidationFunction.AVERAGE, 144, 360),   # coarse
    RraSpec(ConsolidationFunction.MAX, 12, 360),
)


class RoundRobinDatabase:
    """An in-memory RRD with rrdtool-like update/fetch semantics."""

    def __init__(
        self,
        ds: DataSourceSpec,
        step: float = 15.0,
        rras: tuple[RraSpec, ...] = DEFAULT_RRAS,
        start_time: float = 0.0,
    ) -> None:
        if step <= 0:
            raise RrdError("step must be positive")
        if not rras:
            raise RrdError("at least one RRA is required")
        self.ds = ds
        self.step = float(step)
        #: serializes update/record/fetch — one RRD may be hammered by
        #: racing writers (parallel probe fan-out, concurrent collectors)
        #: and a torn _fill/accumulator interleave would lose or duplicate
        #: PDP updates.  Reentrant so record() can call update().
        self._lock = threading.RLock()
        self.archives = [RoundRobinArchive(spec, self.step) for spec in rras]
        #: timestamp of the last processed sample
        self.last_update: float = float(start_time)
        self._last_raw: float = math.nan
        #: end of the last completed PDP interval
        self._pdp_end: float = math.floor(start_time / self.step) * self.step
        #: accumulated (seconds, weighted value) inside the current PDP
        self._acc_seconds: float = 0.0
        self._acc_value: float = 0.0

    # -- update ----------------------------------------------------------------

    def update(self, timestamp: float, value: float) -> None:
        """Record one sample.  Timestamps must be strictly increasing."""
        with self._lock:
            if timestamp <= self.last_update:
                raise RrdError(
                    f"illegal update time {timestamp} "
                    f"(last was {self.last_update})"
                )
            rate = self._to_rate(timestamp, value)
            elapsed = timestamp - self.last_update
            if elapsed > self.ds.heartbeat:
                rate = math.nan
            if not math.isnan(rate):
                if rate < self.ds.minimum or rate > self.ds.maximum:
                    rate = math.nan
            self._fill(self.last_update, timestamp, rate)
            self.last_update = timestamp

    def record(self, value: float, advance: Optional[float] = None) -> float:
        """Thread-safe append: allocate the next timestamp and update.

        Atomically advances ``last_update`` by ``advance`` (default: the
        primary step) and records ``value`` there, so any number of racing
        writers can hammer one RRD without losing or duplicating PDP
        updates — each call lands on its own slot of the PDP grid.
        Returns the timestamp used.
        """
        if advance is not None and advance <= 0:
            raise RrdError(f"record advance must be positive, got {advance}")
        with self._lock:
            timestamp = self.last_update + (advance if advance is not None
                                            else self.step)
            self.update(timestamp, value)
            return timestamp

    def _to_rate(self, timestamp: float, value: float) -> float:
        if self.ds.kind == "GAUGE":
            return value
        prev = self._last_raw
        self._last_raw = value
        if math.isnan(prev):
            return math.nan
        dt = timestamp - self.last_update
        delta = value - prev
        if self.ds.kind == "COUNTER" and delta < 0:
            return math.nan  # counter wrap/reset: unknown
        return delta / dt

    def _fill(self, begin: float, end: float, rate: float) -> None:
        """Spread a sample's value across the PDP intervals it spans."""
        t = begin
        while t < end:
            pdp_boundary = self._pdp_end + self.step
            chunk_end = min(end, pdp_boundary)
            seconds = chunk_end - t
            if not math.isnan(rate):
                self._acc_seconds += seconds
                self._acc_value += rate * seconds
            t = chunk_end
            if t >= pdp_boundary - BOUNDARY_EPS:
                self._commit_pdp(pdp_boundary)

    def _commit_pdp(self, pdp_end: float) -> None:
        if self._acc_seconds >= self.step * 0.5:
            pdp = self._acc_value / self._acc_seconds
        else:
            pdp = math.nan
        for archive in self.archives:
            archive.push_pdp(pdp_end, pdp)
        self._acc_seconds = 0.0
        self._acc_value = 0.0
        self._pdp_end = pdp_end

    # -- fetch -----------------------------------------------------------------

    def fetch(
        self,
        begin: float,
        end: float,
        cf: ConsolidationFunction = ConsolidationFunction.AVERAGE,
        include_unknown: bool = False,
    ) -> list[tuple[float, float]]:
        """All metric values in ``(begin, end]``, best resolution first.

        Walks archives from finest to coarsest resolution; each time segment
        is served by the finest archive that still retains it, so a span
        reaching into old history returns fine recent points and coarse old
        ones — the behaviour the paper's service hides behind its API.

        The merge is *span-aware*: a CDP ending at ``ts`` with resolution
        ``res`` represents the interval ``(ts - res, ts]``, and a coarser
        CDP is suppressed only when finer points fully cover that interval.
        A coarse CDP whose span is partially covered (the fine archive aged
        out of part of it) is returned for the uncovered part, timestamped
        at the uncovered sub-interval's end — deduplicating by exact
        end-timestamp instead would silently drop the only source for the
        early part of the coarse span.
        """
        points = [
            (sub_end, value)
            for _, sub_end, value in self.fetch_spans(begin, end, cf)
        ]
        points.sort()
        return [
            (ts, value) for ts, value in points
            if include_unknown or not math.isnan(value)
        ]

    def fetch_spans(
        self,
        begin: float,
        end: float,
        cf: ConsolidationFunction = ConsolidationFunction.AVERAGE,
    ) -> list[tuple[float, float, float]]:
        """Like :meth:`fetch`, but keeping each point's covered span.

        Returns ``(span_start, span_end, value)`` triples sorted by time:
        each is the sub-interval of ``(begin, end]`` that one CDP is the
        finest retained source for.  A fine PDP-resolution point spans one
        step; a coarse CDP surviving a long downtime spans up to its full
        resolution.  Span-aware consumers (the metrology calibrator's
        recovery path) use the span length to weight coarse averages by
        the step count they consolidated instead of treating them as
        single samples.  Unknown (NaN) values are included — their spans
        claim coverage exactly as :meth:`fetch` computes it.
        """
        if end < begin:
            raise RrdError(f"fetch with end < begin ({end} < {begin})")
        candidates = sorted(
            (a for a in self.archives if a.spec.cf is cf),
            key=lambda a: a.resolution,
        )
        if not candidates:
            raise RrdError(f"no archive with consolidation {cf.value}")
        tol = self.step * BOUNDARY_EPS
        with self._lock:
            covered: list[tuple[float, float]] = []  # merged (start, end]
            out: list[tuple[float, float, float]] = []
            for archive in candidates:
                res = archive.resolution
                spans: list[tuple[float, float]] = []
                for ts, value in archive.window(begin, end):
                    span = (max(ts - res, begin), ts)
                    if span[1] - span[0] <= tol:
                        continue
                    uncovered = _subtract_intervals(span, covered, tol)
                    for sub_start, sub_end in uncovered:
                        out.append((sub_start, sub_end, value))
                    if uncovered:
                        spans.append(span)
                if spans:
                    covered = _merge_intervals(covered + spans, tol)
        out.sort(key=lambda s: (s[1], s[0]))
        return out

    # -- introspection ------------------------------------------------------------

    def describe(self) -> dict:
        """JSON-able structural description (used by the REST service)."""
        return {
            "ds": {
                "name": self.ds.name,
                "kind": self.ds.kind,
                "heartbeat": self.ds.heartbeat,
            },
            "step": self.step,
            "last_update": self.last_update,
            "rras": [
                {
                    "cf": a.spec.cf.value,
                    "steps_per_row": a.spec.steps_per_row,
                    "rows": a.spec.rows,
                    "xff": a.spec.xff,
                    "resolution": a.resolution,
                    "retention": a.spec.retention(self.step),
                }
                for a in self.archives
            ],
        }
