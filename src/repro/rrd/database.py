"""The round-robin database: data source + primary data points + archives.

One :class:`RoundRobinDatabase` holds one data source (as Ganglia RRDs do)
and any number of archives.  Updates are timestamped samples; the database
normalises them onto its fixed primary step (rrdtool's PDP mechanism):

- **GAUGE** sources record the value as-is,
- **COUNTER**/**DERIVE** sources record the rate of change per second
  (COUNTER rejects negative rates — counter wrap is treated as unknown),
- gaps longer than the heartbeat yield *unknown* (NaN) PDPs.

:meth:`fetch` implements the paper's metrology-service contract (§IV-C1):
"for given lower and upper bound timestamps, the service will answer with
all metric values between these bounds, automatically gathering the most
accurate data from the different round-robin archives available".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.rrd.rra import ConsolidationFunction, RoundRobinArchive, RraSpec


class RrdError(Exception):
    """Invalid RRD construction, update or fetch."""


@dataclass(frozen=True)
class DataSourceSpec:
    """Definition of the stored metric."""

    name: str
    kind: str = "GAUGE"  # GAUGE | COUNTER | DERIVE
    heartbeat: float = 40.0
    minimum: float = -math.inf
    maximum: float = math.inf

    def __post_init__(self) -> None:
        if self.kind not in ("GAUGE", "COUNTER", "DERIVE"):
            raise RrdError(f"unknown data-source kind {self.kind!r}")
        if self.heartbeat <= 0:
            raise RrdError("heartbeat must be positive")


DEFAULT_RRAS = (
    RraSpec(ConsolidationFunction.AVERAGE, 1, 360),     # fine: step-resolution
    RraSpec(ConsolidationFunction.AVERAGE, 12, 360),    # medium
    RraSpec(ConsolidationFunction.AVERAGE, 144, 360),   # coarse
    RraSpec(ConsolidationFunction.MAX, 12, 360),
)


class RoundRobinDatabase:
    """An in-memory RRD with rrdtool-like update/fetch semantics."""

    def __init__(
        self,
        ds: DataSourceSpec,
        step: float = 15.0,
        rras: tuple[RraSpec, ...] = DEFAULT_RRAS,
        start_time: float = 0.0,
    ) -> None:
        if step <= 0:
            raise RrdError("step must be positive")
        if not rras:
            raise RrdError("at least one RRA is required")
        self.ds = ds
        self.step = float(step)
        self.archives = [RoundRobinArchive(spec, self.step) for spec in rras]
        #: timestamp of the last processed sample
        self.last_update: float = float(start_time)
        #: value (or rate) carried by the last sample, for interpolation
        self._last_sample_value: float = math.nan
        self._last_raw: float = math.nan
        #: end of the last completed PDP interval
        self._pdp_end: float = math.floor(start_time / self.step) * self.step
        #: accumulated (seconds, weighted value) inside the current PDP
        self._acc_seconds: float = 0.0
        self._acc_value: float = 0.0

    # -- update ----------------------------------------------------------------

    def update(self, timestamp: float, value: float) -> None:
        """Record one sample.  Timestamps must be strictly increasing."""
        if timestamp <= self.last_update:
            raise RrdError(
                f"illegal update time {timestamp} (last was {self.last_update})"
            )
        rate = self._to_rate(timestamp, value)
        elapsed = timestamp - self.last_update
        if elapsed > self.ds.heartbeat:
            rate = math.nan
        if not math.isnan(rate):
            if rate < self.ds.minimum or rate > self.ds.maximum:
                rate = math.nan
        self._fill(self.last_update, timestamp, rate)
        self.last_update = timestamp
        self._last_sample_value = rate

    def _to_rate(self, timestamp: float, value: float) -> float:
        if self.ds.kind == "GAUGE":
            return value
        prev = self._last_raw
        self._last_raw = value
        if math.isnan(prev):
            return math.nan
        dt = timestamp - self.last_update
        delta = value - prev
        if self.ds.kind == "COUNTER" and delta < 0:
            return math.nan  # counter wrap/reset: unknown
        return delta / dt

    def _fill(self, begin: float, end: float, rate: float) -> None:
        """Spread a sample's value across the PDP intervals it spans."""
        t = begin
        while t < end:
            pdp_boundary = self._pdp_end + self.step
            chunk_end = min(end, pdp_boundary)
            seconds = chunk_end - t
            if not math.isnan(rate):
                self._acc_seconds += seconds
                self._acc_value += rate * seconds
            t = chunk_end
            if t >= pdp_boundary - 1e-9:
                self._commit_pdp(pdp_boundary)

    def _commit_pdp(self, pdp_end: float) -> None:
        if self._acc_seconds >= self.step * 0.5:
            pdp = self._acc_value / self._acc_seconds
        else:
            pdp = math.nan
        for archive in self.archives:
            archive.push_pdp(pdp_end, pdp)
        self._acc_seconds = 0.0
        self._acc_value = 0.0
        self._pdp_end = pdp_end

    # -- fetch -----------------------------------------------------------------

    def fetch(
        self,
        begin: float,
        end: float,
        cf: ConsolidationFunction = ConsolidationFunction.AVERAGE,
        include_unknown: bool = False,
    ) -> list[tuple[float, float]]:
        """All metric values in ``(begin, end]``, best resolution first.

        Walks archives from finest to coarsest resolution; each time segment
        is served by the finest archive that still retains it, so a span
        reaching into old history returns fine recent points and coarse old
        ones — the behaviour the paper's service hides behind its API.
        """
        if end < begin:
            raise RrdError(f"fetch with end < begin ({end} < {begin})")
        candidates = sorted(
            (a for a in self.archives if a.spec.cf is cf),
            key=lambda a: a.resolution,
        )
        if not candidates:
            raise RrdError(f"no archive with consolidation {cf.value}")
        points: dict[float, tuple[float, float]] = {}
        for archive in candidates:
            for ts, value in archive.window(begin, end):
                # keep the finest-resolution value for any timestamp bucket
                bucket = ts
                if bucket not in points:
                    points[bucket] = (archive.resolution, value)
        out = []
        for ts in sorted(points):
            _, value = points[ts]
            if include_unknown or not math.isnan(value):
                out.append((ts, value))
        return out

    # -- introspection ------------------------------------------------------------

    def describe(self) -> dict:
        """JSON-able structural description (used by the REST service)."""
        return {
            "ds": {
                "name": self.ds.name,
                "kind": self.ds.kind,
                "heartbeat": self.ds.heartbeat,
            },
            "step": self.step,
            "last_update": self.last_update,
            "rras": [
                {
                    "cf": a.spec.cf.value,
                    "steps_per_row": a.spec.steps_per_row,
                    "rows": a.spec.rows,
                    "xff": a.spec.xff,
                    "resolution": a.resolution,
                    "retention": a.spec.retention(self.step),
                }
                for a in self.archives
            ],
        }
