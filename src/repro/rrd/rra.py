"""Round-robin archives: fixed-size rings of consolidated data points.

An archive stores ``rows`` consolidated data points (CDPs), each aggregating
``steps_per_row`` primary data points (PDPs) with a consolidation function.
The ``xff`` (x-files factor) is the maximum fraction of unknown PDPs a CDP
may aggregate and still be considered known — the same semantics as rrdtool.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

#: Absolute tolerance for timestamp comparisons on PDP/CDP grid boundaries.
#: Accumulated float drift from repeated step additions must not make a
#: sample that lands exactly on a boundary miss (or double-count) its
#: interval; shared by :meth:`RoundRobinArchive.window` and the database's
#: PDP fill loop (:meth:`repro.rrd.database.RoundRobinDatabase._fill`).
BOUNDARY_EPS = 1e-9


class ConsolidationFunction(enum.Enum):
    AVERAGE = "AVERAGE"
    MIN = "MIN"
    MAX = "MAX"
    LAST = "LAST"

    def consolidate(self, values: list[float]) -> float:
        """Aggregate known (non-NaN) values; caller handles xff."""
        known = [v for v in values if not math.isnan(v)]
        if not known:
            return math.nan
        if self is ConsolidationFunction.AVERAGE:
            return sum(known) / len(known)
        if self is ConsolidationFunction.MIN:
            return min(known)
        if self is ConsolidationFunction.MAX:
            return max(known)
        return known[-1]


@dataclass(frozen=True)
class RraSpec:
    """Definition of one archive."""

    cf: ConsolidationFunction
    steps_per_row: int
    rows: int
    xff: float = 0.5

    def __post_init__(self) -> None:
        if self.steps_per_row < 1:
            raise ValueError("steps_per_row must be >= 1")
        if self.rows < 1:
            raise ValueError("rows must be >= 1")
        if not 0.0 <= self.xff < 1.0:
            raise ValueError("xff must be in [0, 1)")

    def resolution(self, base_step: float) -> float:
        """Seconds per consolidated data point."""
        return base_step * self.steps_per_row

    def retention(self, base_step: float) -> float:
        """Total seconds of history the archive can hold."""
        return self.resolution(base_step) * self.rows


class RoundRobinArchive:
    """The ring buffer behind one :class:`RraSpec`."""

    def __init__(self, spec: RraSpec, base_step: float) -> None:
        self.spec = spec
        self.base_step = base_step
        self.values: list[float] = [math.nan] * spec.rows
        #: index of the CDP interval currently being accumulated
        self._pdp_buffer: list[float] = []
        #: end-timestamp of the most recently committed CDP (None = empty)
        self.last_cdp_end: Optional[float] = None

    @property
    def resolution(self) -> float:
        return self.spec.resolution(self.base_step)

    def push_pdp(self, pdp_end: float, value: float) -> None:
        """Feed one primary data point (ending at ``pdp_end``)."""
        self._pdp_buffer.append(value)
        if len(self._pdp_buffer) >= self.spec.steps_per_row:
            self._commit(pdp_end)

    def _commit(self, cdp_end: float) -> None:
        buffer, self._pdp_buffer = self._pdp_buffer, []
        unknown = sum(1 for v in buffer if math.isnan(v))
        if unknown / len(buffer) > self.spec.xff:
            cdp = math.nan
        else:
            cdp = self.spec.cf.consolidate(buffer)
        slot = int(round(cdp_end / self.resolution)) % self.spec.rows
        self.values[slot] = cdp
        self.last_cdp_end = cdp_end

    def window(self, begin: float, end: float) -> list[tuple[float, float]]:
        """Known and unknown CDPs with end-timestamps in ``(begin, end]``.

        Returns ``(timestamp, value)`` pairs (value may be NaN) for every CDP
        the ring currently retains in the window, oldest first.
        """
        if self.last_cdp_end is None:
            return []
        res = self.resolution
        newest = self.last_cdp_end
        oldest = newest - (self.spec.rows - 1) * res
        lo = max(begin, oldest - res / 2)
        out = []
        # iterate CDP end-times on the archive's grid
        first = math.ceil(max(lo, 0.0) / res) * res
        t = first
        while t <= min(end, newest) + BOUNDARY_EPS:
            if t > lo:
                slot = int(round(t / res)) % self.spec.rows
                out.append((t, self.values[slot]))
            t += res
        return out

    def covers(self, timestamp: float) -> bool:
        """True when ``timestamp`` is within the archive's retained history."""
        if self.last_cdp_end is None:
            return False
        oldest = self.last_cdp_end - (self.spec.rows - 1) * self.resolution
        return oldest - self.resolution <= timestamp <= self.last_cdp_end + self.resolution
