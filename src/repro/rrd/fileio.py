"""RRD persistence.

Real RRD files are an opaque binary format — precisely the paper's complaint
("their data is not easily accessible programmatically", §III-A).  We keep a
documented JSON representation so tests and users can inspect state, while
the REST layer continues to play the role of the *only* convenient remote
access path.
"""

from __future__ import annotations

import json
import math
from typing import Any

from repro.rrd.database import DataSourceSpec, RoundRobinDatabase, RrdError
from repro.rrd.rra import ConsolidationFunction, RraSpec

FORMAT_VERSION = 1


def _encode_value(v: float) -> Any:
    return None if math.isnan(v) else v


def _decode_value(v: Any) -> float:
    return math.nan if v is None else float(v)


def rrd_to_dict(rrd: RoundRobinDatabase) -> dict:
    return {
        "format": FORMAT_VERSION,
        "ds": {
            "name": rrd.ds.name,
            "kind": rrd.ds.kind,
            "heartbeat": rrd.ds.heartbeat,
            "minimum": None if math.isinf(rrd.ds.minimum) else rrd.ds.minimum,
            "maximum": None if math.isinf(rrd.ds.maximum) else rrd.ds.maximum,
        },
        "step": rrd.step,
        "last_update": rrd.last_update,
        "state": {
            "pdp_end": rrd._pdp_end,
            "acc_seconds": rrd._acc_seconds,
            "acc_value": rrd._acc_value,
            "last_raw": _encode_value(rrd._last_raw),
        },
        "archives": [
            {
                "cf": a.spec.cf.value,
                "steps_per_row": a.spec.steps_per_row,
                "rows": a.spec.rows,
                "xff": a.spec.xff,
                "last_cdp_end": a.last_cdp_end,
                "values": [_encode_value(v) for v in a.values],
                "pdp_buffer": [_encode_value(v) for v in a._pdp_buffer],
            }
            for a in rrd.archives
        ],
    }


def rrd_from_dict(data: dict) -> RoundRobinDatabase:
    if data.get("format") != FORMAT_VERSION:
        raise RrdError(f"unsupported RRD format {data.get('format')!r}")
    ds_data = data["ds"]
    ds = DataSourceSpec(
        name=ds_data["name"],
        kind=ds_data["kind"],
        heartbeat=ds_data["heartbeat"],
        minimum=-math.inf if ds_data["minimum"] is None else ds_data["minimum"],
        maximum=math.inf if ds_data["maximum"] is None else ds_data["maximum"],
    )
    rras = tuple(
        RraSpec(
            cf=ConsolidationFunction(a["cf"]),
            steps_per_row=a["steps_per_row"],
            rows=a["rows"],
            xff=a["xff"],
        )
        for a in data["archives"]
    )
    rrd = RoundRobinDatabase(ds, step=data["step"], rras=rras)
    rrd.last_update = data["last_update"]
    state = data["state"]
    rrd._pdp_end = state["pdp_end"]
    rrd._acc_seconds = state["acc_seconds"]
    rrd._acc_value = state["acc_value"]
    rrd._last_raw = _decode_value(state["last_raw"])
    for archive, a in zip(rrd.archives, data["archives"]):
        archive.last_cdp_end = a["last_cdp_end"]
        archive.values = [_decode_value(v) for v in a["values"]]
        archive._pdp_buffer = [_decode_value(v) for v in a["pdp_buffer"]]
    return rrd


def save_rrd(rrd: RoundRobinDatabase, path: str) -> None:
    """Serialise ``rrd`` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(rrd_to_dict(rrd), fh)


def load_rrd(path: str) -> RoundRobinDatabase:
    """Load an RRD previously written by :func:`save_rrd`."""
    with open(path, "r", encoding="utf-8") as fh:
        return rrd_from_dict(json.load(fh))
