"""NWS-style transfer-time forecasts.

The classic NWS consumer pattern (what FAST and schedulers did, §III-C):
``predicted duration = latency_forecast + size / bandwidth_forecast``, with
per-pair sensors.  Crucially the forecast for a *set* of transfers treats
each transfer independently — NWS has no notion of the contention the
request itself will create, unlike PNFS's simulation.
"""

from __future__ import annotations

from typing import Sequence

from repro.nws.sensors import BandwidthSensor, LatencySensor
from repro.testbed.fluid import TestbedNetwork


class NwsForecastService:
    """Per-pair sensor registry + independent transfer-time forecasts."""

    def __init__(self, network: TestbedNetwork, seed: int = 0,
                 warmup_probes: int = 10) -> None:
        self.network = network
        self.seed = seed
        self.warmup_probes = warmup_probes
        self._bandwidth: dict[tuple[str, str], BandwidthSensor] = {}
        self._latency: dict[tuple[str, str], LatencySensor] = {}

    def _sensors(self, src: str, dst: str) -> tuple[BandwidthSensor, LatencySensor]:
        key = (src, dst)
        if key not in self._bandwidth:
            bw = BandwidthSensor(self.network, src, dst, seed=self.seed)
            lat = LatencySensor(self.network, src, dst, seed=self.seed)
            bw.probe(self.warmup_probes)
            lat.probe(self.warmup_probes)
            self._bandwidth[key] = bw
            self._latency[key] = lat
        return self._bandwidth[key], self._latency[key]

    def predict_transfer(self, src: str, dst: str, size: float) -> float:
        """Forecast one transfer's duration from the pair's sensor state."""
        bw_sensor, lat_sensor = self._sensors(src, dst)
        bandwidth = bw_sensor.forecast_bandwidth()
        rtt = lat_sensor.forecast_rtt()
        return rtt / 2.0 + size / bandwidth

    def predict_transfers(
        self, transfers: Sequence[tuple[str, str, float]]
    ) -> list[float]:
        """Independent forecasts for a set of concurrent transfers —
        deliberately blind to their mutual contention."""
        return [self.predict_transfer(src, dst, size) for src, dst, size in transfers]
