"""NWS's adaptive best-predictor selection.

"Forecasts are obtained by using different predictors on each probe
time-series, and using an algorithm which continuously selects the best
among the set of available predictors" (§III-B).  Here *best* is the
predictor with the lowest mean absolute error over the postcasts it has
produced so far — NWS's published strategy.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.nws.predictors import PREDICTOR_FACTORIES, Predictor

#: Sentinel distinguishing "no default given" from ``default=None``.
_NO_DEFAULT = object()


class ColdSeriesError(ValueError):
    """Forecast requested before the series has any usable observation."""


class AdaptiveForecaster:
    """Runs the battery on one series; forecasts with the current winner.

    Cold-start contract: :attr:`ready` is False until at least one
    predictor can produce a forecast; until then :meth:`forecast` raises
    :class:`ColdSeriesError` — unless a ``default`` is supplied, which is
    returned instead.  Polling loops (the metrology calibrator) use
    ``forecast(default=None)`` and skip the series rather than crash."""

    def __init__(self, factories: Optional[Sequence] = None) -> None:
        self.predictors: list[Predictor] = [
            factory() for factory in (factories or PREDICTOR_FACTORIES)
        ]
        self._abs_error = [0.0] * len(self.predictors)
        self._error_count = [0] * len(self.predictors)
        self.observations = 0

    def update(self, value: float, weight: int = 1) -> None:
        """Feed one measurement; scores every predictor's postcast first.

        ``weight > 1`` replays the value that many times — how a
        consolidated archive point standing for ``weight`` primary samples
        at their mean is consumed (the metrology calibrator's
        coarse-archive recovery), so a downtime-spanning CDP moves the
        predictors' windows like the samples it aggregated would have,
        instead of counting as a single probe.
        """
        if weight < 1:
            raise ValueError(f"update weight must be >= 1, got {weight}")
        for _ in range(weight):
            for i, predictor in enumerate(self.predictors):
                postcast = predictor.predict()
                if postcast is not None:
                    self._abs_error[i] += abs(postcast - value)
                    self._error_count[i] += 1
                predictor.update(value)
            self.observations += 1

    def mean_errors(self) -> list[Optional[float]]:
        return [
            (err / cnt if cnt else None)
            for err, cnt in zip(self._abs_error, self._error_count)
        ]

    @property
    def ready(self) -> bool:
        """True once at least one predictor can produce a forecast."""
        return self.observations > 0 and any(
            p.predict() is not None for p in self.predictors
        )

    def best_predictor(self) -> Predictor:
        """The predictor with the lowest mean absolute error so far."""
        if self.observations == 0:
            raise ColdSeriesError("no observations yet")
        best_idx, best_err = 0, float("inf")
        for i, (err, cnt) in enumerate(zip(self._abs_error, self._error_count)):
            mean_err = err / cnt if cnt else float("inf")
            if mean_err < best_err:
                best_idx, best_err = i, mean_err
        return self.predictors[best_idx]

    def forecast(self, default: object = _NO_DEFAULT) -> Optional[float]:
        """One-step-ahead forecast from the current best predictor.

        On a cold series (no observation yet, or no predictor warm enough)
        returns ``default`` when one was given, otherwise raises
        :class:`ColdSeriesError`.
        """
        if self.observations == 0:
            if default is not _NO_DEFAULT:
                return default  # type: ignore[return-value]
            raise ColdSeriesError("no observations yet")
        prediction = self.best_predictor().predict()
        if prediction is None:
            if default is not _NO_DEFAULT:
                return default  # type: ignore[return-value]
            raise ColdSeriesError("not enough data to forecast")
        return prediction
