"""The NWS predictor battery.

Each predictor consumes a time-series incrementally (:meth:`Predictor.update`)
and produces a one-step-ahead forecast (:meth:`Predictor.predict`).  The set
follows Wolski et al. 1999: last measurement, running mean/median, sliding
window mean/median with several widths, and exponential smoothing with
several gains.
"""

from __future__ import annotations

import collections
from typing import Callable, Optional

from repro._util.stats import median


class Predictor:
    """Base incremental one-step-ahead predictor."""

    name = "base"

    def update(self, value: float) -> None:
        raise NotImplementedError

    def predict(self) -> Optional[float]:
        """Forecast of the next value; None until enough data arrived."""
        raise NotImplementedError


class LastValue(Predictor):
    name = "last"

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def update(self, value: float) -> None:
        self._last = value

    def predict(self) -> Optional[float]:
        return self._last


class RunningMean(Predictor):
    name = "running_mean"

    def __init__(self) -> None:
        self._sum = 0.0
        self._count = 0

    def update(self, value: float) -> None:
        self._sum += value
        self._count += 1

    def predict(self) -> Optional[float]:
        if self._count == 0:
            return None
        return self._sum / self._count


class RunningMedian(Predictor):
    name = "running_median"

    def __init__(self) -> None:
        self._values: list[float] = []

    def update(self, value: float) -> None:
        self._values.append(value)

    def predict(self) -> Optional[float]:
        if not self._values:
            return None
        return median(self._values)


class SlidingMean(Predictor):
    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.name = f"sliding_mean_{window}"
        self._window: collections.deque = collections.deque(maxlen=window)

    def update(self, value: float) -> None:
        self._window.append(value)

    def predict(self) -> Optional[float]:
        if not self._window:
            return None
        return sum(self._window) / len(self._window)


class SlidingMedian(Predictor):
    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.name = f"sliding_median_{window}"
        self._window: collections.deque = collections.deque(maxlen=window)

    def update(self, value: float) -> None:
        self._window.append(value)

    def predict(self) -> Optional[float]:
        if not self._window:
            return None
        return median(list(self._window))


class ExponentialSmoothing(Predictor):
    def __init__(self, gain: float) -> None:
        if not 0.0 < gain <= 1.0:
            raise ValueError("gain must be in (0, 1]")
        self.name = f"exp_smooth_{gain:g}"
        self.gain = gain
        self._state: Optional[float] = None

    def update(self, value: float) -> None:
        if self._state is None:
            self._state = value
        else:
            self._state = self.gain * value + (1.0 - self.gain) * self._state

    def predict(self) -> Optional[float]:
        return self._state


#: The default battery (mirrors NWS's mix of predictor families).
PREDICTOR_FACTORIES: tuple[Callable[[], Predictor], ...] = (
    LastValue,
    RunningMean,
    RunningMedian,
    lambda: SlidingMean(5),
    lambda: SlidingMean(20),
    lambda: SlidingMedian(5),
    lambda: SlidingMedian(20),
    lambda: ExponentialSmoothing(0.1),
    lambda: ExponentialSmoothing(0.3),
    lambda: ExponentialSmoothing(0.7),
)
