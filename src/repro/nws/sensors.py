"""NWS sensors: active bandwidth/latency probes over the testbed.

NWS "probes are active, though they strive to perturbate the platform as
little as possible" (§III-B): bandwidth sensors move a small payload and
record achieved throughput; latency sensors ping.  Each sensor feeds an
:class:`~repro.nws.forecaster.AdaptiveForecaster`.

Probes see the network in its *probed* state — idle, or with whatever
background happens to run — never with the contention a future transfer set
will create.  That asymmetry versus simulation is the point of the baseline.
"""

from __future__ import annotations

import math

from repro._util.rng import rng_for
from repro.nws.forecaster import _NO_DEFAULT, AdaptiveForecaster
from repro.testbed.fluid import FluidSimulator, TestbedNetwork


def run_bandwidth_probe(
    network: TestbedNetwork, src: str, dst: str, probe_bytes: float, seed: int
) -> float:
    """One probe transfer on ``network``; returns the raw elapsed seconds.

    Module-level and free of sensor state so probe cycles can fan out over
    pool workers (the parallel :class:`~repro.metrology.feed.MetrologyFeed`):
    given the same network state and seed the result is bit-identical
    wherever it runs.
    """
    sim = FluidSimulator(network, seed=seed)
    flow = sim.submit(src, dst, probe_bytes)
    sim.run()
    return flow.completion_time_raw


class BandwidthSensor:
    """Periodic small-transfer throughput probe on one (src, dst) pair.

    ``scale`` is a multiplicative measurement bias applied to every
    recorded throughput (1.0 = unbiased).  Drift scenarios mutate it over
    time to model a sensor whose readings slowly diverge from the truth —
    the recalibration loop's EWMA re-anchoring exists to absorb exactly
    that.
    """

    #: NWS default probe payload: small, to limit perturbation.
    PROBE_BYTES = 1_000_000.0

    def __init__(
        self,
        network: TestbedNetwork,
        src: str,
        dst: str,
        seed: int = 0,
        probe_bytes: float = PROBE_BYTES,
    ) -> None:
        self.network = network
        self.src = src
        self.dst = dst
        self.probe_bytes = probe_bytes
        self.seed = seed
        self.scale = 1.0
        self.forecaster = AdaptiveForecaster()
        self._probe_index = 0

    def flow_seed(self) -> int:
        """The deterministic probe-flow seed for the *next* probe."""
        return int(rng_for(self.seed, "bw-probe", self.src, self.dst,
                           self._probe_index).integers(2**31))

    def absorb(self, elapsed: float) -> float:
        """Turn one probe's raw elapsed time into the measured goodput.

        Advances the probe index and feeds the forecaster — the bookkeeping
        half of :meth:`probe_once`, split out so a parallel feed can run
        :func:`run_bandwidth_probe` elsewhere and absorb the result here.
        A degenerate probe (non-positive or non-finite completion time —
        a broken clock or an instantly-completing mock network) yields NaN
        and is *not* fed to the forecaster: an infinite throughput sample
        would poison every predictor in the battery.
        """
        self._probe_index += 1
        if not math.isfinite(elapsed) or elapsed <= 0.0:
            return math.nan
        throughput = self.scale * self.probe_bytes / elapsed
        self.forecaster.update(throughput)
        return throughput

    def probe_once(self) -> float:
        """One probe: measured goodput (bytes/s), fed to the forecaster."""
        # NWS measures payload/transfer-time of the probe itself, startup
        # overhead included — small probes under-estimate the achievable rate
        return self.absorb(run_bandwidth_probe(
            self.network, self.src, self.dst, self.probe_bytes,
            self.flow_seed(),
        ))

    def probe(self, count: int) -> list[float]:
        return [self.probe_once() for _ in range(count)]

    @property
    def ready(self) -> bool:
        """True once the forecaster has a usable probe history."""
        return self.forecaster.ready

    def forecast_bandwidth(self, default: object = _NO_DEFAULT) -> float:
        """Bandwidth forecast; ``default`` is the cold-series answer (without
        one a cold sensor raises
        :class:`~repro.nws.forecaster.ColdSeriesError`)."""
        return self.forecaster.forecast(default)


class LatencySensor:
    """Periodic RTT probe on one (src, dst) pair."""

    def __init__(self, network: TestbedNetwork, src: str, dst: str, seed: int = 0,
                 jitter: float = 0.03) -> None:
        self.network = network
        self.src = src
        self.dst = dst
        self.jitter = jitter
        self.forecaster = AdaptiveForecaster()
        self._rng = rng_for(seed, "lat-probe", src, dst)

    def probe_once(self) -> float:
        rtt = self.network.rtt(self.src, self.dst)
        measured = rtt * float(1.0 + self._rng.normal(0.0, self.jitter))
        self.forecaster.update(measured)
        return measured

    def probe(self, count: int) -> list[float]:
        return [self.probe_once() for _ in range(count)]

    @property
    def ready(self) -> bool:
        """True once the forecaster has a usable probe history."""
        return self.forecaster.ready

    def forecast_rtt(self, default: object = _NO_DEFAULT) -> float:
        """RTT forecast; ``default`` is the cold-series answer (without one
        a cold sensor raises
        :class:`~repro.nws.forecaster.ColdSeriesError`)."""
        return self.forecaster.forecast(default)
