"""Network Weather Service (NWS) style baseline forecaster.

The paper positions simulation-driven forecasting against NWS (§III-B),
"the reference for forecasting of computing resource availability in the
scheduling community": active probes produce time-series per resource, a
battery of simple predictors runs on each series, and "an algorithm […]
continuously selects the best among the set of available predictors".

This subpackage implements that baseline over the testbed:

- :mod:`repro.nws.predictors` — the predictor battery (last value, running
  and sliding means/medians, exponential smoothing),
- :mod:`repro.nws.forecaster` — the best-predictor meta-selection,
- :mod:`repro.nws.sensors` — bandwidth/latency probe sensors,
- :mod:`repro.nws.api` — transfer-time forecasts from the sensor forecasts.

Its structural blind spot — probes cannot see the contention a *planned* set
of concurrent transfers will create — is what the NWS-vs-PNFS bench
demonstrates.
"""

from repro.nws.forecaster import AdaptiveForecaster
from repro.nws.predictors import PREDICTOR_FACTORIES, Predictor
from repro.nws.sensors import BandwidthSensor, LatencySensor
from repro.nws.api import NwsForecastService

__all__ = [
    "AdaptiveForecaster",
    "PREDICTOR_FACTORIES",
    "Predictor",
    "BandwidthSensor",
    "LatencySensor",
    "NwsForecastService",
]
