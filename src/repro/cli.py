"""Command-line interface.

::

    python -m repro platforms
    python -m repro predict --platform g5k_test \\
        --transfer capricorne-36.lyon.grid5000.fr,griffon-50.nancy.grid5000.fr,5e8 \\
        --transfer capricorne-36.lyon.grid5000.fr,capricorne-1.lyon.grid5000.fr,5e8
    python -m repro serve --port 8080
    python -m repro experiment --figure fig8 --reps 3 --sizes 1e5,2.15e8,1e10
    python -m repro figures

The ``predict`` command prints the same JSON documents the REST service
answers (§IV-C2); ``experiment`` regenerates one paper figure on the
synthetic testbed and renders it as text.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pilgrim reproduction: dynamic network forecasting "
                    "(Imbert & Caron, CLUSTER 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("platforms", help="list the built-in platform descriptions")
    sub.add_parser("figures", help="list the reproducible paper figures")
    sub.add_parser("version", help="print the package version")

    predict = sub.add_parser("predict", help="predict concurrent transfer times")
    predict.add_argument("--platform", default="g5k_test",
                         choices=("g5k_test", "g5k_cabinets"))
    predict.add_argument("--transfer", action="append", required=True,
                         metavar="SRC,DST,SIZE",
                         help="repeatable: source,destination,bytes")
    predict.add_argument("--ongoing", action="append", default=[],
                         metavar="SRC,DST,REMAINING",
                         help="repeatable: in-flight transfers sharing bandwidth")
    predict.add_argument("--model", default="LV08",
                         help="registered sharing model name "
                              "(see `repro models list`)")
    predict.add_argument("--full-resolve", action="store_true",
                         help="rebuild the whole sharing system at every "
                              "simulation event (slow verification mode) "
                              "instead of incremental component re-solves")
    predict.add_argument("--scalar-solve", action="store_true",
                         help="route incremental re-solves through the "
                              "scalar arena path instead of the batched "
                              "numpy kernel (verification mode)")

    whatif = sub.add_parser(
        "what-if",
        help="forecast transfers under a hypothetical link-event schedule",
        description="Planning query: predict the given transfers while a "
                    "transient dynamics schedule plays out ('what if the "
                    "bottleneck degrades 50%% at t+30s?'), optionally under "
                    "the platform state projected --horizon steps ahead "
                    "from --observe'd link measurements.",
    )
    whatif.add_argument("--platform", default="g5k_test",
                        choices=("g5k_test", "g5k_cabinets"))
    whatif.add_argument("--transfer", action="append", required=True,
                        metavar="SRC,DST,SIZE",
                        help="repeatable: source,destination,bytes")
    whatif.add_argument("--ongoing", action="append", default=[],
                        metavar="SRC,DST,REMAINING",
                        help="repeatable: in-flight transfers sharing bandwidth")
    whatif.add_argument("--event", action="append", default=[],
                        metavar="TIME,LINK,ACTION[,FACTOR]",
                        help="repeatable: timed link mutation; ACTION is "
                             "degrade/fail/recover, LINK an fnmatch pattern, "
                             "FACTOR the degrade fraction of nominal")
    whatif.add_argument("--horizon", type=int, default=None, metavar="K",
                        help="project observed link series K steps ahead and "
                             "use the projection as the baseline state")
    whatif.add_argument("--observe", action="append", default=[],
                        metavar="LINK=V1,V2,...",
                        help="repeatable: feed a link's bandwidth series "
                             "(bytes/s) into the horizon forecaster")
    whatif.add_argument("--model", default="LV08",
                        help="registered sharing model name "
                             "(see `repro models list`)")
    whatif.add_argument("--full-resolve", action="store_true",
                        help="rebuild the whole sharing system at every "
                             "simulation event (slow verification mode)")
    whatif.add_argument("--scalar-solve", action="store_true",
                        help="route incremental re-solves through the "
                             "scalar arena path (verification mode)")

    serve = sub.add_parser("serve", help="run the Pilgrim HTTP services")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--shards", type=int, default=0,
                       help="shard processes behind the async gateway "
                            "(0 = the classic single-process threaded "
                            "server, the default); each shard owns its "
                            "own serving stack and cache")
    serve.add_argument("--max-inflight", type=int, default=256,
                       help="gateway admission: concurrently executing "
                            "request budget (with --shards)")
    serve.add_argument("--queue-depth", type=int, default=1024,
                       help="gateway admission: requests allowed to wait "
                            "beyond --max-inflight before load is shed "
                            "with 503 + Retry-After (with --shards)")
    serve.add_argument("--shard-threads", type=int, default=4,
                       help="handler threads per shard process "
                            "(with --shards)")
    serve.add_argument("--workers", type=int, default=0,
                       help="warm forecast worker processes (0 = answer "
                            "inline in the serving process, the default); "
                            "with --shards, per shard")
    serve.add_argument("--batch-window", type=float, default=0.005,
                       metavar="SECONDS",
                       help="micro-batching window: concurrent requests "
                            "arriving within it share one fan-out")
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="forecast cache entries (0 disables caching)")
    serve.add_argument("--max-requests", type=int, default=None,
                       help="recycle pool workers after this many forecasts")
    serve.add_argument("--no-serving", action="store_true",
                       help="skip the serving layer (cache, batching, warm "
                            "pool); every request simulates directly")
    serve.add_argument("--surrogate", default=None, metavar="MODEL_JSON",
                       help="arm the learned surrogate fast path with this "
                            "trained model document (`repro surrogate "
                            "train`); low-uncertainty queries answer in "
                            "microseconds, everything else simulates")
    serve.add_argument("--surrogate-bound", type=float, default=0.5,
                       help="maximum predicted uncertainty (log2 units) "
                            "the surrogate may answer under")
    serve.add_argument("--model", default=None,
                       help="default sharing model for every forecast "
                            "(a registered name, see `repro models list`); "
                            "per-request model= parameters still win")

    models = sub.add_parser(
        "models", help="pluggable network sharing models")
    models_sub = models.add_subparsers(dest="models_command", required=True)
    models_sub.add_parser(
        "list", help="list the registered sharing models, their "
                     "parameters and defaults")

    experiment = sub.add_parser("experiment",
                                help="regenerate one paper figure")
    experiment.add_argument("--figure", default="fig8")
    experiment.add_argument("--reps", type=int, default=3)
    experiment.add_argument("--seed", type=int, default=20120917)
    experiment.add_argument("--sizes", default=None,
                            help="comma-separated byte counts "
                                 "(default: the paper's 10-point sweep)")
    experiment.add_argument("--platform", default="g5k_test",
                            choices=("g5k_test", "g5k_cabinets"))

    scenarios = sub.add_parser(
        "scenarios", help="declarative scenario presets (topology × "
                          "workload × dynamics)")
    scen_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)
    scen_sub.add_parser("list", help="list the registered scenario presets")
    scen_run = scen_sub.add_parser("run", help="run one scenario preset")
    scen_run.add_argument("preset", help="preset name (see `scenarios list`)")
    scen_run.add_argument("--reps", type=int, default=1,
                          help="repetitions (stochastic workloads redraw "
                               "from spawned sibling streams)")
    scen_run.add_argument("--seed", type=int, default=None,
                          help="override the preset's root seed")
    scen_run.add_argument("--model", default=None,
                          help="override the preset's sharing model "
                               "(a registered name, see `repro models "
                               "list`)")
    scen_run.add_argument("--full-resolve", action="store_true",
                          help="verification mode: rebuild the sharing "
                               "system at every event")
    scen_run.add_argument("--scalar-solve", action="store_true",
                          help="verification mode: scalar arena re-solves "
                               "instead of the batched numpy kernel")
    scen_run.add_argument("--json", action="store_true",
                          help="emit the full result as JSON")

    metrology = sub.add_parser(
        "metrology", help="live metrology pipeline (probe → RRD → "
                          "forecast → recalibrate)")
    met_sub = metrology.add_subparsers(dest="metrology_command", required=True)

    met_record = met_sub.add_parser(
        "record", help="probe a degrading testbed and dump the RRD series "
                       "as a measured-trace JSON document")
    met_record.add_argument("--hosts", type=int, default=4)
    met_record.add_argument("--period", type=float, default=15.0,
                            help="probe period, metrology seconds")
    met_record.add_argument("--steps", type=int, default=10,
                            help="probe cycles after warm-up")
    met_record.add_argument("--warmup", type=int, default=3,
                            help="healthy probe cycles anchoring references")
    met_record.add_argument("--link", type=int, default=1,
                            help="1-based index of the degrading host link")
    met_record.add_argument("--factor", type=float, default=0.3,
                            help="degraded capacity as a fraction of nominal")
    met_record.add_argument("--latency-factor", type=float, default=1.0,
                            help="degraded latency as a multiple of nominal "
                                 "(bufferbloat; 1.0 = unchanged)")
    met_record.add_argument("--combined", action="store_true",
                            help="record latency traces alongside bandwidth "
                                 "(replay then calibrates both)")
    met_record.add_argument("--seed", type=int, default=3)
    met_record.add_argument("--output", default=None,
                            help="write the trace document here "
                                 "(default: stdout)")

    met_replay = met_sub.add_parser(
        "replay", help="replay a recorded trace document as measured "
                       "scenario dynamics")
    met_replay.add_argument("--input", required=True,
                            help="trace document from `metrology record`")
    met_replay.add_argument("--size", type=float, default=4e7,
                            help="per-transfer bytes of the replay workload")
    met_replay.add_argument("--time-scale", type=float, default=0.01,
                            help="simulated seconds per recorded metrology "
                                 "second (compresses probe periods onto the "
                                 "transfer timescale)")
    met_replay.add_argument("--reps", type=int, default=1)
    met_replay.add_argument("--full-resolve", action="store_true")
    met_replay.add_argument("--scalar-solve", action="store_true")
    met_replay.add_argument("--json", action="store_true",
                            help="emit the full scenario result as JSON")

    met_run = met_sub.add_parser(
        "run", help="run the live loop: probe → RRD → forecast → epoch "
                    "bump → re-predict, against a degrading link")
    met_run.add_argument("--hosts", type=int, default=4)
    met_run.add_argument("--period", type=float, default=15.0)
    met_run.add_argument("--steps", type=int, default=10)
    met_run.add_argument("--warmup", type=int, default=3)
    met_run.add_argument("--link", type=int, default=1)
    met_run.add_argument("--factor", type=float, default=0.3)
    met_run.add_argument("--size", type=float, default=2e8,
                         help="per-transfer bytes of the evaluation workload")
    met_run.add_argument("--seed", type=int, default=3)
    met_run.add_argument("--workers", type=int, default=0,
                         help="warm forecast worker processes (0 = serve "
                              "inline); exercises pool recycling under "
                              "live recalibration")
    met_run.add_argument("--feed-workers", type=int, default=0,
                         help="probe worker processes fanning each poll "
                              "cycle out (0 = serial probing)")
    met_run.add_argument("--drift", type=float, default=0.0,
                         help="per-cycle multiplicative bandwidth-sensor "
                              "drift in [0, 1) (0 = unbiased sensors)")
    met_run.add_argument("--anchor-alpha", type=float, default=0.0,
                         help="EWMA re-anchoring rate for reference "
                              "estimates (0 = frozen anchors)")
    met_run.add_argument("--anchor-band", type=float, default=0.1,
                         help="relative health gate for re-anchoring")
    met_run.add_argument("--anchor-weighting", default="hard",
                         choices=("hard", "gaussian"),
                         help="re-anchoring weighting: hard all-or-nothing "
                              "health band, or gaussian distance-weighted "
                              "steps (no cliff at the band edge)")

    surrogate = sub.add_parser(
        "surrogate", help="learned surrogate fast path (train from "
                          "campaign sweeps, evaluate, serve)")
    sur_sub = surrogate.add_subparsers(dest="surrogate_command",
                                       required=True)
    sur_train = sur_sub.add_parser(
        "train", help="run a seeded campaign sweep and fit the "
                      "ridge + k-NN surrogate")
    sur_train.add_argument("--output", required=True, metavar="MODEL_JSON",
                           help="write the trained model document here")
    sur_train.add_argument("--samples", type=int, default=48,
                           help="sweep samples (topology × workload × "
                                "size × link-degradation draws)")
    sur_train.add_argument("--seed", type=int, default=0)
    sur_train.add_argument("--model", default="LV08",
                           help="registered sharing model name "
                                "(see `repro models list`)")
    sur_train.add_argument("--workers", type=int, default=0,
                           help="sweep worker processes (bit-identical to "
                                "serial)")
    sur_train.add_argument("--holdout", type=float, default=0.25,
                           help="fraction of sweep samples held out for "
                                "validation (0 trains on everything)")
    sur_train.add_argument("--dataset", default=None, metavar="DATA_JSON",
                           help="also write the sweep dataset here")
    sur_eval = sur_sub.add_parser(
        "eval", help="evaluate a trained model on a fresh sweep")
    sur_eval.add_argument("--input", required=True, metavar="MODEL_JSON",
                          help="model document from `surrogate train`")
    sur_eval.add_argument("--samples", type=int, default=16)
    sur_eval.add_argument("--seed", type=int, default=1,
                          help="sweep seed (pick one differing from the "
                               "training seed for an honest held-out set)")
    sur_eval.add_argument("--workers", type=int, default=0)
    sur_eval.add_argument("--max-median-error", type=float, default=None,
                          help="exit 1 if the median |log2 error| exceeds "
                               "this floor (CI gate)")
    sur_eval.add_argument("--json", action="store_true",
                          help="emit the evaluation as JSON")
    sur_serve = sur_sub.add_parser(
        "serve", help="run the Pilgrim HTTP services with the surrogate "
                      "tier armed (shortcut for `serve --surrogate`)")
    sur_serve.add_argument("--input", required=True, metavar="MODEL_JSON")
    sur_serve.add_argument("--bound", type=float, default=0.5,
                           help="maximum predicted uncertainty (log2 "
                                "units) the surrogate may answer under")
    sur_serve.add_argument("--host", default="127.0.0.1")
    sur_serve.add_argument("--port", type=int, default=8080)
    sur_serve.add_argument("--shards", type=int, default=0)
    sur_serve.add_argument("--max-inflight", type=int, default=256)
    sur_serve.add_argument("--queue-depth", type=int, default=1024)
    sur_serve.add_argument("--shard-threads", type=int, default=4)
    sur_serve.add_argument("--workers", type=int, default=0)
    sur_serve.add_argument("--batch-window", type=float, default=0.005)
    sur_serve.add_argument("--cache-size", type=int, default=4096)
    sur_serve.add_argument("--max-requests", type=int, default=None)

    report = sub.add_parser(
        "report", help="run the full validation campaign, emit markdown")
    report.add_argument("--reps", type=int, default=3)
    report.add_argument("--seed", type=int, default=20120917)
    report.add_argument("--sizes", default=None,
                        help="comma-separated byte counts")
    report.add_argument("--figures", default=None,
                        help="comma-separated figure ids (default: all)")
    report.add_argument("--output", default=None,
                        help="write the report to this file (default: stdout)")
    return parser


def _cmd_platforms(out) -> int:
    from repro.experiments.environment import forecast_service

    service = forecast_service()
    for name in service.platform_names():
        platform = service.platform(name)
        out.write(f"{name}: {len(platform.hosts())} hosts, "
                  f"{len(platform.links())} links, "
                  f"{platform.total_route_table_entries()} route entries\n")
    return 0


def _cmd_figures(out) -> int:
    from repro.experiments.figures import FIGURES

    for fig_id, figure in FIGURES.items():
        out.write(f"{fig_id:18s} {figure.title}\n")
    return 0


def _cmd_version(out) -> int:
    import repro

    out.write(f"repro {repro.__version__}\n")
    return 0


def _cmd_predict(args, out) -> int:
    from repro.core.forecast import TransferSpec
    from repro.experiments.environment import forecast_service
    from repro.simgrid.models import model_by_name

    service = forecast_service()
    transfers = [TransferSpec.parse(t) for t in args.transfer]
    ongoing = [TransferSpec.parse(t) for t in args.ongoing]
    try:
        model = model_by_name(args.model)
    except ValueError as exc:
        out.write(f"{exc}\n")
        return 2
    forecasts = service.predict_transfers(
        args.platform, transfers, model=model,
        ongoing=ongoing, full_resolve=args.full_resolve,
        vectorized=not args.scalar_solve,
    )
    out.write(json.dumps([f.to_json() for f in forecasts], indent=1) + "\n")
    return 0


def _cmd_what_if(args, out) -> int:
    from repro.core.forecast import TransferSpec
    from repro.core.rest.errors import ApiError
    from repro.experiments.environment import forecast_service
    from repro.horizon.whatif import parse_event
    from repro.simgrid.models import model_by_name

    service = forecast_service()
    try:
        model = model_by_name(args.model)
    except ValueError as exc:
        out.write(f"{exc}\n")
        return 2
    try:
        transfers = [TransferSpec.parse(t) for t in args.transfer]
        ongoing = [TransferSpec.parse(t) for t in args.ongoing]
        events = [parse_event(e) for e in args.event]
        for observation in args.observe:
            link, _, series = observation.partition("=")
            if not series:
                raise ValueError(
                    f"--observe must be LINK=V1,V2,..., got {observation!r}")
            for value in series.split(","):
                service.observe_link(args.platform, link.strip(),
                                     float(value))
        result = service.predict_what_if(
            args.platform, transfers, events, model=model, ongoing=ongoing,
            horizon=args.horizon, full_resolve=args.full_resolve,
            vectorized=not args.scalar_solve,
        )
    except (ApiError, ValueError) as exc:
        out.write(f"{exc}\n")
        return 2
    out.write(json.dumps(result.to_json(), indent=1) + "\n")
    return 0


def _load_surrogate_tier(path, bound, out):
    """Build a SurrogateTier from a trained model document, or None."""
    if not path:
        return None
    from repro.surrogate import SurrogateModel, SurrogateTier

    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    tier = SurrogateTier(SurrogateModel.from_json(doc), bound=bound,
                         require_fresh_epoch=False)
    out.write(f"surrogate tier armed: model {tier.model.network_model}, "
              f"bound {bound:g} log2 units\n")
    return tier


def _cmd_serve(args, out) -> int:
    from repro.core.framework import Pilgrim
    from repro.simgrid.models import model_by_name

    # `surrogate serve` delegates here without defining --model
    model_name = getattr(args, "model", None)
    model = None
    if model_name:
        try:
            model = model_by_name(model_name)
        except ValueError as exc:
            out.write(f"{exc}\n")
            return 2
    if args.shards > 0:
        return _cmd_serve_gateway(args, out)
    out.write("loading Grid'5000 platforms...\n")
    pilgrim = Pilgrim.with_grid5000(model=model)
    if model is not None:
        out.write(f"default sharing model: {model_name}\n")
    if not args.no_serving:
        from repro.serving.factories import grid5000_forecast_service

        pilgrim.enable_serving(
            service_factory=grid5000_forecast_service,
            workers=max(0, args.workers),
            window=args.batch_window,
            cache_size=args.cache_size,
            max_requests=args.max_requests,
            surrogate=_load_surrogate_tier(args.surrogate,
                                           args.surrogate_bound, out),
        )
        mode = (f"{args.workers} warm workers" if args.workers > 0
                else "inline execution")
        out.write(f"serving layer: {mode}, "
                  f"window {args.batch_window * 1000:g} ms, "
                  f"cache {args.cache_size} entries\n")
    server = pilgrim.serve(host=args.host, port=args.port).start()
    out.write(f"Pilgrim serving at {server.url} (Ctrl-C to stop)\n")
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        out.write("stopping\n")
    finally:
        server.stop()
        pilgrim.disable_serving()
    return 0


def _cmd_serve_gateway(args, out) -> int:
    from repro.experiments.environment import forecast_service
    from repro.serving.factories import grid5000_forecast_service
    from repro.serving.gateway import GatewayConfig, ShardedGateway

    out.write("loading Grid'5000 platforms...\n")
    # the session-cached parent service is the epoch/mutation source; the
    # picklable module-level factory rebuilds the same service per shard
    service = forecast_service()
    surrogate_doc = None
    if getattr(args, "surrogate", None):
        with open(args.surrogate, "r", encoding="utf-8") as fh:
            surrogate_doc = json.load(fh)
        out.write(f"surrogate tier armed on every shard, bound "
                  f"{args.surrogate_bound:g} log2 units\n")
    config = GatewayConfig(
        shards=args.shards,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        shard_threads=args.shard_threads,
        window=args.batch_window,
        cache_size=args.cache_size,
        workers=max(0, args.workers),
        max_requests=args.max_requests,
        model_name=getattr(args, "model", None) or None,
        surrogate_doc=surrogate_doc,
        surrogate_bound=args.surrogate_bound,
    )
    gateway = ShardedGateway(grid5000_forecast_service, config,
                             service=service).start()
    out.write(f"gateway: {args.shards} shards x {args.shard_threads} "
              f"threads, admission {args.max_inflight} in-flight + "
              f"{args.queue_depth} queued, cache {args.cache_size} "
              f"entries/shard\n")
    out.write(f"Pilgrim gateway serving at {gateway.url} "
              f"(Ctrl-C to stop)\n")
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        out.write("stopping\n")
    finally:
        gateway.stop()
    return 0


def _cmd_experiment(args, out) -> int:
    from repro.analysis.asciiplot import render_error_plot
    from repro.experiments.environment import forecast_service, testbed
    from repro.experiments.figures import FIGURES, run_figure

    if args.figure not in FIGURES:
        out.write(f"unknown figure {args.figure!r}; "
                  f"available: {', '.join(FIGURES)}\n")
        return 2
    sizes = None
    if args.sizes:
        sizes = tuple(float(s) for s in args.sizes.split(","))
    out.write(f"running {FIGURES[args.figure].title} "
              f"({args.reps} repetitions)...\n")
    series, failures = run_figure(
        args.figure, forecast_service(), testbed(), seed=args.seed,
        repetitions=args.reps, sizes=sizes, platform_name=args.platform,
    )
    out.write(render_error_plot(series) + "\n")
    if failures:
        out.write("shape checks FAILED:\n")
        for failure in failures:
            out.write(f"  {failure}\n")
        return 1
    out.write("shape checks: PASS\n")
    return 0


def _cmd_scenarios(args, out) -> int:
    from repro.analysis.tables import render_table
    from repro.scenarios import DEFAULT_REGISTRY, run_scenario

    if args.scenarios_command == "list":
        rows = [
            (spec.name, spec.topology.family, spec.workload.kind,
             len(spec.dynamics), spec.description)
            for spec in DEFAULT_REGISTRY
        ]
        out.write(render_table(
            ["preset", "topology", "workload", "events", "description"], rows,
            title=f"{len(rows)} scenario presets",
        ) + "\n")
        return 0

    if args.preset not in DEFAULT_REGISTRY:
        out.write(f"unknown scenario {args.preset!r}; "
                  f"available: {', '.join(DEFAULT_REGISTRY.names())}\n")
        return 2
    spec = DEFAULT_REGISTRY.get(args.preset)
    if args.seed is not None:
        spec = spec.replace(seed=args.seed)
    if args.model is not None:
        spec = spec.replace(model=args.model)
    try:
        result = run_scenario(spec, repetitions=args.reps,
                              full_resolve=args.full_resolve,
                              vectorized=not args.scalar_solve)
    except ValueError as exc:
        out.write(f"{exc}\n")
        return 2
    if args.json:
        out.write(json.dumps(result.to_json(), indent=1) + "\n")
        return 0
    summary = result.summary()
    out.write(render_table(
        ["metric", "value"], list(summary.items()),
        title=f"{spec.name}: {spec.description or spec.topology.family}",
    ) + "\n")
    if result.events_applied:
        out.write(render_table(
            ["t (s)", "link", "action", "bandwidth (B/s)"],
            [(e.time, e.link, e.action, e.bandwidth)
             for e in result.events_applied],
            title="dynamics applied (first repetition)",
        ) + "\n")
    return 0


def _cmd_models(args, out) -> int:
    from repro.analysis.tables import render_table
    from repro.simgrid.models import registered_models

    if args.models_command == "list":
        rows = []
        for entry in registered_models():
            params = ", ".join(
                name if default is None else f"{name}={default!r}"
                for name, default in entry.parameters().items()
            )
            probe = entry.build()
            rows.append((entry.name,
                         "time-varying" if probe.time_varying else "static",
                         params, entry.description))
        out.write(render_table(
            ["model", "weights", "parameters", "description"], rows,
            title=f"{len(rows)} registered sharing models",
        ) + "\n")
        return 0
    raise AssertionError(
        f"unhandled models command {args.models_command!r}"
    )  # pragma: no cover


#: Version tag of the `metrology record` trace document.
TRACE_DOC_FORMAT = 1


def _cmd_metrology(args, out) -> int:
    if args.metrology_command == "record":
        return _cmd_metrology_record(args, out)
    if args.metrology_command == "replay":
        return _cmd_metrology_replay(args, out)
    return _cmd_metrology_run(args, out)


def _record_demo(args, **extra):
    from repro.metrology.demo import StarMetrologyDemo

    return StarMetrologyDemo.for_run(
        n_hosts=args.hosts, period=args.period, seed=args.seed,
        warmup=args.warmup, steps=args.steps,
        degrade_link=args.link, degrade_factor=args.factor,
        **extra,
    )


def _cmd_metrology_record(args, out) -> int:
    demo = _record_demo(args, degrade_latency_factor=args.latency_factor)
    demo.warmup(args.warmup)
    demo.run(args.steps)
    traces = (demo.combined_traces() if args.combined
              else demo.measured_traces())
    doc = {
        "format": TRACE_DOC_FORMAT,
        "topology": {"family": "star", "params": {"n_hosts": args.hosts}},
        "period": args.period,
        "duration": demo.feed.clock,
        "traces": [trace.to_json() for trace in traces],
    }
    text = json.dumps(doc, indent=1) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        out.write(f"recorded {len(doc['traces'])} link traces over "
                  f"{demo.feed.clock:g}s to {args.output}\n")
    else:
        out.write(text)
    return 0


def _cmd_metrology_replay(args, out) -> int:
    from repro.analysis.tables import render_table
    from repro.scenarios import run_scenario
    from repro.scenarios.spec import (
        MeasuredTrace,
        ScenarioSpec,
        TopologySpec,
        WorkloadSpec,
    )

    with open(args.input, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") != TRACE_DOC_FORMAT:
        out.write(f"unsupported trace document format {doc.get('format')!r}\n")
        return 2
    traces = [
        MeasuredTrace.from_json(trace_doc).rescaled(args.time_scale)
        for trace_doc in doc["traces"]
    ]
    spec = ScenarioSpec(
        name="measured-replay",
        description=f"replay of {args.input}",
        topology=TopologySpec.from_json(doc["topology"]),
        workload=WorkloadSpec("all_to_all", size=args.size),
        measured=tuple(traces),
    )
    result = run_scenario(spec, repetitions=args.reps,
                          full_resolve=args.full_resolve,
                          vectorized=not args.scalar_solve)
    if args.json:
        out.write(json.dumps(result.to_json(), indent=1) + "\n")
        return 0
    out.write(render_table(
        ["metric", "value"], list(result.summary().items()),
        title=f"measured replay of {args.input} "
              f"(time scale {args.time_scale:g})",
    ) + "\n")
    out.write(render_table(
        ["t (s)", "link", "metric", "value"],
        [(e.time, e.link,
          "latency (s)" if e.latency is not None else "bandwidth (B/s)",
          e.latency if e.latency is not None else e.bandwidth)
         for e in result.events_applied],
        title="measured mutations applied (first repetition)",
    ) + "\n")
    return 0


def _cmd_metrology_run(args, out) -> int:
    from repro._util.stats import median
    from repro.analysis.tables import render_table
    from repro.serving.service import ForecastServingService

    demo = _record_demo(args, sensor_drift=args.drift,
                        anchor_alpha=args.anchor_alpha,
                        anchor_health_band=args.anchor_band,
                        anchor_weighting=args.anchor_weighting,
                        feed_workers=args.feed_workers)
    demo.warmup(args.warmup)
    serving = ForecastServingService(
        demo.service,
        service_factory=(demo.service_factory() if args.workers else None),
        workers=args.workers,
    ).start()
    rows = []
    recalibrated_errors, static_errors = [], []
    try:
        for step in range(args.steps):
            demo.step()
            evaluation = demo.evaluate_step(
                serving, demo.workload(args.size), seed_salt=step)
            if evaluation.degraded:
                recalibrated_errors.append(evaluation.err_recalibrated)
                static_errors.append(evaluation.err_static)
            rows.append((
                f"{evaluation.time:g}",
                f"{evaluation.true_factor:g}",
                evaluation.epoch,
                f"{evaluation.err_recalibrated:.3f}",
                f"{evaluation.err_static:.3f}",
            ))
    finally:
        serving.stop()
        demo.close()
    out.write(render_table(
        ["t (s)", "true factor", "epoch", "|log2 err| recal",
         "|log2 err| static"],
        rows,
        title=f"live metrology loop: star({args.hosts}), "
              f"{demo.degraded_link} -> {args.factor:g}x at "
              f"t={demo.degrade_at:g}s",
    ) + "\n")
    stats = demo.loop.stats.to_json()
    out.write(f"loop: {stats['polls']} polls, "
              f"{stats['updates_applied']} updates applied, "
              f"{stats['updates_skipped']} skipped by hysteresis, "
              f"{stats['reanchors']} reference re-anchors\n")
    cache = serving.cache.info()
    out.write(f"serving cache: {cache['hits']} hits, {cache['misses']} "
              f"misses (epoch bumps invalidate implicitly)\n")
    if serving.pool is not None:
        pool = serving.pool.stats()
        out.write(f"warm pool: {pool['workers']} workers, "
                  f"{pool['requests']} requests, {pool['recycles']} "
                  f"recycles (epoch bumps re-fork the recalibrated "
                  f"platform)\n")
    if recalibrated_errors:
        recal, static = median(recalibrated_errors), median(static_errors)
        out.write(f"degraded phase: median |log2 err| "
                  f"recalibrated {recal:.3f} vs static {static:.3f}\n")
        if recal >= static:
            out.write("recalibration did NOT beat the static baseline\n")
            return 1
        out.write("recalibration beats the static baseline\n")
    return 0


def _cmd_surrogate(args, out) -> int:
    if args.surrogate_command == "train":
        return _cmd_surrogate_train(args, out)
    if args.surrogate_command == "eval":
        return _cmd_surrogate_eval(args, out)
    if args.surrogate_command == "serve":
        return _cmd_surrogate_serve(args, out)
    raise AssertionError(
        f"unhandled surrogate command {args.surrogate_command!r}"
    )  # pragma: no cover


def _format_evaluation(report: dict) -> str:
    return (f"{report['n']} rows: median |log2 err| "
            f"{report['median_abs_log2_error']:.4f}, p90 "
            f"{report['p90_abs_log2_error']:.4f}, max "
            f"{report['max_abs_log2_error']:.4f}; median uncertainty "
            f"{report['median_uncertainty']:.4f}, covered "
            f"{report['uncertainty_covers']:.0%}")


def _cmd_surrogate_train(args, out) -> int:
    from repro.surrogate import SurrogateModel, SurrogateSweep, run_sweep

    if not 0.0 <= args.holdout < 1.0:
        out.write(f"--holdout must be in [0, 1), got {args.holdout}\n")
        return 2
    sweep = SurrogateSweep(samples=args.samples, seed=args.seed,
                           model=args.model)
    out.write(f"sweeping {args.samples} samples (seed {args.seed}, "
              f"model {args.model})...\n")
    dataset = run_sweep(sweep, workers=args.workers or None)
    out.write(f"dataset: {len(dataset)} transfer rows from "
              f"{len(dataset.samples)} samples\n")
    if args.dataset:
        with open(args.dataset, "w", encoding="utf-8") as fh:
            json.dump(dataset.to_json(), fh)
        out.write(f"dataset written to {args.dataset}\n")
    if args.holdout > 0:
        train_set, holdout = dataset.split_by_sample(args.holdout,
                                                     seed=args.seed)
    else:
        train_set, holdout = dataset, None
    model = SurrogateModel.train(train_set)
    out.write("train     " +
              _format_evaluation(model.evaluate(train_set.features,
                                                train_set.targets)) + "\n")
    if holdout is not None:
        out.write("holdout   " +
                  _format_evaluation(model.evaluate(holdout.features,
                                                    holdout.targets)) + "\n")
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(model.to_json(), fh)
    out.write(f"model written to {args.output}\n")
    return 0


def _cmd_surrogate_eval(args, out) -> int:
    from repro.surrogate import SurrogateModel, SurrogateSweep, run_sweep

    with open(args.input, "r", encoding="utf-8") as fh:
        model = SurrogateModel.from_json(json.load(fh))
    if not model.fitted:
        out.write(f"{args.input} holds an unfitted model\n")
        return 2
    sweep = SurrogateSweep(samples=args.samples, seed=args.seed,
                           model=model.network_model)
    dataset = run_sweep(sweep, workers=args.workers or None)
    report = model.evaluate(dataset.features, dataset.targets)
    if args.json:
        out.write(json.dumps(report, indent=1) + "\n")
    else:
        out.write("eval      " + _format_evaluation(report) + "\n")
    if args.max_median_error is not None and \
            report["median_abs_log2_error"] > args.max_median_error:
        out.write(f"median |log2 error| "
                  f"{report['median_abs_log2_error']:.4f} exceeds the "
                  f"floor {args.max_median_error:g}\n")
        return 1
    return 0


def _cmd_surrogate_serve(args, out) -> int:
    # delegate to the serve path with the surrogate flags mapped over
    args.surrogate = args.input
    args.surrogate_bound = args.bound
    args.no_serving = False
    return _cmd_serve(args, out)


def _cmd_report(args, out) -> int:
    from repro.analysis.report import build_report
    from repro.experiments.environment import forecast_service, testbed
    from repro.experiments.figures import FIGURES, run_figure

    fig_ids = (args.figures.split(",") if args.figures else list(FIGURES))
    unknown = [f for f in fig_ids if f not in FIGURES]
    if unknown:
        out.write(f"unknown figures: {', '.join(unknown)}\n")
        return 2
    sizes = None
    if args.sizes:
        sizes = tuple(float(s) for s in args.sizes.split(","))
    results = {}
    for fig_id in fig_ids:
        out.write(f"running {fig_id} ({FIGURES[fig_id].title})...\n")
        results[fig_id] = run_figure(
            fig_id, forecast_service(), testbed(), seed=args.seed,
            repetitions=args.reps, sizes=sizes,
        )
    report = build_report(results, repetitions=args.reps, seed=args.seed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report)
        out.write(f"report written to {args.output}\n")
    else:
        out.write(report + "\n")
    return 0 if all(not fails for _, fails in results.values()) else 1


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "platforms":
        return _cmd_platforms(out)
    if args.command == "figures":
        return _cmd_figures(out)
    if args.command == "version":
        return _cmd_version(out)
    if args.command == "predict":
        return _cmd_predict(args, out)
    if args.command == "what-if":
        return _cmd_what_if(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "experiment":
        return _cmd_experiment(args, out)
    if args.command == "scenarios":
        return _cmd_scenarios(args, out)
    if args.command == "models":
        return _cmd_models(args, out)
    if args.command == "metrology":
        return _cmd_metrology(args, out)
    if args.command == "surrogate":
        return _cmd_surrogate(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
