"""Command-line interface.

::

    python -m repro platforms
    python -m repro predict --platform g5k_test \\
        --transfer capricorne-36.lyon.grid5000.fr,griffon-50.nancy.grid5000.fr,5e8 \\
        --transfer capricorne-36.lyon.grid5000.fr,capricorne-1.lyon.grid5000.fr,5e8
    python -m repro serve --port 8080
    python -m repro experiment --figure fig8 --reps 3 --sizes 1e5,2.15e8,1e10
    python -m repro figures

The ``predict`` command prints the same JSON documents the REST service
answers (§IV-C2); ``experiment`` regenerates one paper figure on the
synthetic testbed and renders it as text.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pilgrim reproduction: dynamic network forecasting "
                    "(Imbert & Caron, CLUSTER 2012)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("platforms", help="list the built-in platform descriptions")
    sub.add_parser("figures", help="list the reproducible paper figures")
    sub.add_parser("version", help="print the package version")

    predict = sub.add_parser("predict", help="predict concurrent transfer times")
    predict.add_argument("--platform", default="g5k_test",
                         choices=("g5k_test", "g5k_cabinets"))
    predict.add_argument("--transfer", action="append", required=True,
                         metavar="SRC,DST,SIZE",
                         help="repeatable: source,destination,bytes")
    predict.add_argument("--ongoing", action="append", default=[],
                         metavar="SRC,DST,REMAINING",
                         help="repeatable: in-flight transfers sharing bandwidth")
    predict.add_argument("--model", default="LV08", choices=("LV08", "CM02"))
    predict.add_argument("--full-resolve", action="store_true",
                         help="rebuild the whole sharing system at every "
                              "simulation event (slow verification mode) "
                              "instead of incremental component re-solves")

    serve = sub.add_parser("serve", help="run the Pilgrim HTTP services")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--workers", type=int, default=0,
                       help="warm forecast worker processes (0 = answer "
                            "inline in the serving process, the default)")
    serve.add_argument("--batch-window", type=float, default=0.005,
                       metavar="SECONDS",
                       help="micro-batching window: concurrent requests "
                            "arriving within it share one fan-out")
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="forecast cache entries (0 disables caching)")
    serve.add_argument("--max-requests", type=int, default=None,
                       help="recycle pool workers after this many forecasts")
    serve.add_argument("--no-serving", action="store_true",
                       help="skip the serving layer (cache, batching, warm "
                            "pool); every request simulates directly")

    experiment = sub.add_parser("experiment",
                                help="regenerate one paper figure")
    experiment.add_argument("--figure", default="fig8")
    experiment.add_argument("--reps", type=int, default=3)
    experiment.add_argument("--seed", type=int, default=20120917)
    experiment.add_argument("--sizes", default=None,
                            help="comma-separated byte counts "
                                 "(default: the paper's 10-point sweep)")
    experiment.add_argument("--platform", default="g5k_test",
                            choices=("g5k_test", "g5k_cabinets"))

    scenarios = sub.add_parser(
        "scenarios", help="declarative scenario presets (topology × "
                          "workload × dynamics)")
    scen_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)
    scen_sub.add_parser("list", help="list the registered scenario presets")
    scen_run = scen_sub.add_parser("run", help="run one scenario preset")
    scen_run.add_argument("preset", help="preset name (see `scenarios list`)")
    scen_run.add_argument("--reps", type=int, default=1,
                          help="repetitions (stochastic workloads redraw "
                               "from spawned sibling streams)")
    scen_run.add_argument("--seed", type=int, default=None,
                          help="override the preset's root seed")
    scen_run.add_argument("--full-resolve", action="store_true",
                          help="verification mode: rebuild the sharing "
                               "system at every event")
    scen_run.add_argument("--json", action="store_true",
                          help="emit the full result as JSON")

    report = sub.add_parser(
        "report", help="run the full validation campaign, emit markdown")
    report.add_argument("--reps", type=int, default=3)
    report.add_argument("--seed", type=int, default=20120917)
    report.add_argument("--sizes", default=None,
                        help="comma-separated byte counts")
    report.add_argument("--figures", default=None,
                        help="comma-separated figure ids (default: all)")
    report.add_argument("--output", default=None,
                        help="write the report to this file (default: stdout)")
    return parser


def _cmd_platforms(out) -> int:
    from repro.experiments.environment import forecast_service

    service = forecast_service()
    for name in service.platform_names():
        platform = service.platform(name)
        out.write(f"{name}: {len(platform.hosts())} hosts, "
                  f"{len(platform.links())} links, "
                  f"{platform.total_route_table_entries()} route entries\n")
    return 0


def _cmd_figures(out) -> int:
    from repro.experiments.figures import FIGURES

    for fig_id, figure in FIGURES.items():
        out.write(f"{fig_id:18s} {figure.title}\n")
    return 0


def _cmd_version(out) -> int:
    import repro

    out.write(f"repro {repro.__version__}\n")
    return 0


def _cmd_predict(args, out) -> int:
    from repro.core.forecast import TransferSpec
    from repro.experiments.environment import forecast_service
    from repro.simgrid.models import model_by_name

    service = forecast_service()
    transfers = [TransferSpec.parse(t) for t in args.transfer]
    ongoing = [TransferSpec.parse(t) for t in args.ongoing]
    forecasts = service.predict_transfers(
        args.platform, transfers, model=model_by_name(args.model),
        ongoing=ongoing, full_resolve=args.full_resolve,
    )
    out.write(json.dumps([f.to_json() for f in forecasts], indent=1) + "\n")
    return 0


def _cmd_serve(args, out) -> int:
    from repro.core.framework import Pilgrim

    out.write("loading Grid'5000 platforms...\n")
    pilgrim = Pilgrim.with_grid5000()
    if not args.no_serving:
        from repro.serving.factories import grid5000_forecast_service

        pilgrim.enable_serving(
            service_factory=grid5000_forecast_service,
            workers=max(0, args.workers),
            window=args.batch_window,
            cache_size=args.cache_size,
            max_requests=args.max_requests,
        )
        mode = (f"{args.workers} warm workers" if args.workers > 0
                else "inline execution")
        out.write(f"serving layer: {mode}, "
                  f"window {args.batch_window * 1000:g} ms, "
                  f"cache {args.cache_size} entries\n")
    server = pilgrim.serve(host=args.host, port=args.port).start()
    out.write(f"Pilgrim serving at {server.url} (Ctrl-C to stop)\n")
    try:
        import threading

        threading.Event().wait()
    except KeyboardInterrupt:
        out.write("stopping\n")
    finally:
        server.stop()
        pilgrim.disable_serving()
    return 0


def _cmd_experiment(args, out) -> int:
    from repro.analysis.asciiplot import render_error_plot
    from repro.experiments.environment import forecast_service, testbed
    from repro.experiments.figures import FIGURES, run_figure

    if args.figure not in FIGURES:
        out.write(f"unknown figure {args.figure!r}; "
                  f"available: {', '.join(FIGURES)}\n")
        return 2
    sizes = None
    if args.sizes:
        sizes = tuple(float(s) for s in args.sizes.split(","))
    out.write(f"running {FIGURES[args.figure].title} "
              f"({args.reps} repetitions)...\n")
    series, failures = run_figure(
        args.figure, forecast_service(), testbed(), seed=args.seed,
        repetitions=args.reps, sizes=sizes, platform_name=args.platform,
    )
    out.write(render_error_plot(series) + "\n")
    if failures:
        out.write("shape checks FAILED:\n")
        for failure in failures:
            out.write(f"  {failure}\n")
        return 1
    out.write("shape checks: PASS\n")
    return 0


def _cmd_scenarios(args, out) -> int:
    from repro.analysis.tables import render_table
    from repro.scenarios import DEFAULT_REGISTRY, run_scenario

    if args.scenarios_command == "list":
        rows = [
            (spec.name, spec.topology.family, spec.workload.kind,
             len(spec.dynamics), spec.description)
            for spec in DEFAULT_REGISTRY
        ]
        out.write(render_table(
            ["preset", "topology", "workload", "events", "description"], rows,
            title=f"{len(rows)} scenario presets",
        ) + "\n")
        return 0

    if args.preset not in DEFAULT_REGISTRY:
        out.write(f"unknown scenario {args.preset!r}; "
                  f"available: {', '.join(DEFAULT_REGISTRY.names())}\n")
        return 2
    spec = DEFAULT_REGISTRY.get(args.preset)
    if args.seed is not None:
        spec = spec.replace(seed=args.seed)
    result = run_scenario(spec, repetitions=args.reps,
                          full_resolve=args.full_resolve)
    if args.json:
        out.write(json.dumps(result.to_json(), indent=1) + "\n")
        return 0
    summary = result.summary()
    out.write(render_table(
        ["metric", "value"], list(summary.items()),
        title=f"{spec.name}: {spec.description or spec.topology.family}",
    ) + "\n")
    if result.events_applied:
        out.write(render_table(
            ["t (s)", "link", "action", "bandwidth (B/s)"],
            [(e.time, e.link, e.action, e.bandwidth)
             for e in result.events_applied],
            title="dynamics applied (first repetition)",
        ) + "\n")
    return 0


def _cmd_report(args, out) -> int:
    from repro.analysis.report import build_report
    from repro.experiments.environment import forecast_service, testbed
    from repro.experiments.figures import FIGURES, run_figure

    fig_ids = (args.figures.split(",") if args.figures else list(FIGURES))
    unknown = [f for f in fig_ids if f not in FIGURES]
    if unknown:
        out.write(f"unknown figures: {', '.join(unknown)}\n")
        return 2
    sizes = None
    if args.sizes:
        sizes = tuple(float(s) for s in args.sizes.split(","))
    results = {}
    for fig_id in fig_ids:
        out.write(f"running {fig_id} ({FIGURES[fig_id].title})...\n")
        results[fig_id] = run_figure(
            fig_id, forecast_service(), testbed(), seed=args.seed,
            repetitions=args.reps, sizes=sizes,
        )
    report = build_report(results, repetitions=args.reps, seed=args.seed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report)
        out.write(f"report written to {args.output}\n")
    else:
        out.write(report + "\n")
    return 0 if all(not fails for _, fails in results.values()) else 1


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "platforms":
        return _cmd_platforms(out)
    if args.command == "figures":
        return _cmd_figures(out)
    if args.command == "version":
        return _cmd_version(out)
    if args.command == "predict":
        return _cmd_predict(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "experiment":
        return _cmd_experiment(args, out)
    if args.command == "scenarios":
        return _cmd_scenarios(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
