"""Cached experiment environment.

Building ``g5k_test`` enumerates every intra-site host pair (§V-A's "less
optimized in size and loading time"), so tests and benches share one cached
instance of each platform and of the testbed.  ``REPRO_REPS`` and
``REPRO_SEED`` environment variables globally override repetition count and
root seed for the benches.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.core.forecast import NetworkForecastService
from repro.g5k.converter import to_simgrid_platform
from repro.g5k.sites import (
    build_grid5000_testbed,
    grid5000_dev_reference,
    grid5000_stable_reference,
)
from repro.simgrid.platform import Platform
from repro.testbed.fluid import TestbedNetwork


@lru_cache(maxsize=None)
def g5k_test_platform() -> Platform:
    return to_simgrid_platform(grid5000_dev_reference(), "g5k_test")


@lru_cache(maxsize=None)
def g5k_cabinets_platform() -> Platform:
    return to_simgrid_platform(grid5000_stable_reference(), "g5k_cabinets")


@lru_cache(maxsize=None)
def g5k_test_with_equipment_limits() -> Platform:
    return to_simgrid_platform(
        grid5000_dev_reference(), "g5k_test", include_equipment_limits=True
    )


@lru_cache(maxsize=None)
def testbed() -> TestbedNetwork:
    return build_grid5000_testbed()


@lru_cache(maxsize=None)
def forecast_service() -> NetworkForecastService:
    return NetworkForecastService(
        {
            "g5k_test": g5k_test_platform(),
            "g5k_cabinets": g5k_cabinets_platform(),
        }
    )


def default_repetitions(fallback: int = 5) -> int:
    """Benches' repetition count (paper used 10; 5 keeps wall-time sane)."""
    raw = os.environ.get("REPRO_REPS", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return fallback


def root_seed(fallback: int = 20120917) -> int:
    """Root seed for every stochastic draw (date of CLUSTER 2012 week)."""
    raw = os.environ.get("REPRO_SEED", "")
    try:
        return int(raw)
    except ValueError:
        return fallback
