"""The experimental parameter space of §V-A.

"Each experiment depends on a set of parameters:

- Transfer size: 10 values on a geometrical progression between 0.1 MByte
  and 10 GBytes.
- Number of transfer sources: 1, 10, 30, 50 or 60.
- Number of transfer destinations: 1, 10, 30, 50 or 60.
- When nsources < ndestinations, some will be source of more than one TCP
  transfer.  When nsources > ndestinations, some will be destination of more
  than one TCP transfer.
- Two Topologies: CLUSTER […] GRID_MULTI […]"
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro._util.rng import rng_for
from repro.g5k.sites import CLUSTERS, cluster_spec

#: The 10-point geometric progression 1e5 → 1e10 bytes.  These evaluate to
#: the paper's tick labels exactly (1.00e5, 3.59e5, 1.29e6, 4.64e6, 1.67e7,
#: 5.99e7, 2.15e8, 7.74e8, 2.78e9, 1.00e10).
TRANSFER_SIZES: tuple[float, ...] = tuple(
    float(v) for v in np.geomspace(1e5, 1e10, 10)
)

#: §V-B: "if we consider only results for transfer whose size > 1.67e7 bytes"
LARGE_SIZE_THRESHOLD: float = TRANSFER_SIZES[4]

#: §V-A endpoint counts.
ENDPOINT_COUNTS: tuple[int, ...] = (1, 10, 30, 50, 60)

#: Paper default: "each experiment is run 10 times and results are aggregated".
DEFAULT_REPETITIONS = 10


class Topology(enum.Enum):
    """§V-A experiment topologies."""

    #: all sources and destinations from a single cluster
    CLUSTER = "CLUSTER"
    #: endpoints from all clusters/sites, every transfer crossing sites
    GRID_MULTI = "GRID_MULTI"


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment configuration (one figure of the paper)."""

    name: str
    topology: Topology
    n_sources: int
    n_destinations: int
    #: cluster name for CLUSTER topology (ignored for GRID_MULTI)
    cluster: Optional[str] = None
    sizes: tuple[float, ...] = TRANSFER_SIZES
    repetitions: int = DEFAULT_REPETITIONS

    def __post_init__(self) -> None:
        if self.n_sources < 1 or self.n_destinations < 1:
            raise ValueError("endpoint counts must be >= 1")
        if self.topology is Topology.CLUSTER:
            if self.cluster is None:
                raise ValueError("CLUSTER topology requires a cluster name")
            spec = cluster_spec(self.cluster)
            if self.n_sources + self.n_destinations > spec.n_nodes:
                raise ValueError(
                    f"cluster {self.cluster!r} has only {spec.n_nodes} nodes, "
                    f"cannot draw {self.n_sources}+{self.n_destinations} disjoint endpoints"
                )

    @property
    def n_transfers(self) -> int:
        """max(nsources, ndestinations) — the §V-A pairing rule."""
        return max(self.n_sources, self.n_destinations)


def _pair_cyclic(sources: list[str], destinations: list[str]) -> list[tuple[str, str]]:
    """§V-A pairing: the smaller endpoint set is reused cyclically."""
    n = max(len(sources), len(destinations))
    return [
        (sources[i % len(sources)], destinations[i % len(destinations)])
        for i in range(n)
    ]


def draw_transfer_pairs(spec: ExperimentSpec, seed: int) -> list[tuple[str, str]]:
    """Draw the (source, destination) node pairs for one repetition.

    Endpoint sets are disjoint and drawn without replacement.  For
    GRID_MULTI, every pair crosses a site boundary (§V-A: "with the
    constraint that all transfers are across Grid'5000 site boundaries").
    """
    rng = rng_for(seed, "draw", spec.name)
    if spec.topology is Topology.CLUSTER:
        pool = cluster_spec(spec.cluster).node_uids()
        chosen = rng.choice(len(pool), size=spec.n_sources + spec.n_destinations,
                            replace=False)
        sources = [pool[i] for i in chosen[: spec.n_sources]]
        destinations = [pool[i] for i in chosen[spec.n_sources:]]
        return _pair_cyclic(sources, destinations)

    # GRID_MULTI
    site_of: dict[str, str] = {}
    pool = []
    for cluster in CLUSTERS:
        for uid in cluster.node_uids():
            pool.append(uid)
            site_of[uid] = cluster.site
    chosen = rng.choice(len(pool), size=spec.n_sources, replace=False)
    sources = [pool[i] for i in chosen]
    used = set(sources)
    destinations: list[str] = []
    # draw destinations so that, once paired cyclically, every transfer
    # crosses a site boundary: destination i pairs with source (i % nsrc)
    for i in range(spec.n_destinations):
        paired_source = sources[i % spec.n_sources]
        for _ in range(100000):
            candidate = pool[int(rng.integers(len(pool)))]
            if candidate in used:
                continue
            if site_of[candidate] == site_of[paired_source]:
                continue
            destinations.append(candidate)
            used.add(candidate)
            break
        else:  # pragma: no cover - pool is far larger than any draw
            raise RuntimeError("could not draw a cross-site destination")
    pairs = _pair_cyclic(sources, destinations)
    # when destinations are reused cyclically (nsrc > ndst) the pairing can
    # put a destination on the same site as a later source — redraw sources
    # for those transfers from another site
    fixed_pairs = []
    for src, dst in pairs:
        if site_of[src] == site_of[dst]:
            for _ in range(100000):
                candidate = pool[int(rng.integers(len(pool)))]
                if candidate not in used and site_of[candidate] != site_of[dst]:
                    used.add(candidate)
                    src = candidate
                    break
        fixed_pairs.append((src, dst))
    return fixed_pairs
