"""The full experimental campaign (§V-A's complete parameter space).

"The full set of our experiments (from which we have only showed a subset
in this article) validates the network model of SimGrid" — the paper swept
*all* combinations of topology × sources × destinations, not just the nine
published figures.  This module expresses that campaign as an orchestration
sweep (every feasible combination, with the infeasible ones excluded the
way a 79-node cluster forces) and runs it through the experiment engine.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.errors import ErrorSeries
from repro.core.forecast import NetworkForecastService
from repro.experiments.protocol import (
    ENDPOINT_COUNTS,
    ExperimentSpec,
    TRANSFER_SIZES,
    Topology,
)
from repro.experiments.runner import run_experiment
from repro.experiments.summary import SummaryStats, summarize
from repro.g5k.sites import cluster_spec
from repro.orchestration.engine import ExperimentEngine, combination_id
from repro.orchestration.sweep import ParamSweep
from repro.testbed.fluid import TestbedNetwork

#: The clusters the paper's CLUSTER experiments draw from (§V-B1).
CAMPAIGN_CLUSTERS: tuple[str, ...] = ("sagittaire", "graphene")


def _feasible(combination: dict) -> bool:
    """Can the combination draw disjoint endpoint sets?"""
    if combination["topology"] is Topology.GRID_MULTI:
        return True
    spec = cluster_spec(combination["cluster"])
    return combination["n_src"] + combination["n_dst"] <= spec.n_nodes


def campaign_sweep(
    counts: Sequence[int] = ENDPOINT_COUNTS,
    clusters: Sequence[str] = CAMPAIGN_CLUSTERS,
) -> ParamSweep:
    """Every (topology, cluster, n_src, n_dst) combination the paper's
    campaign covers, minus infeasible draws.

    GRID_MULTI combinations carry ``cluster=None``; CLUSTER ones are
    generated per cluster.  The sweep is deduplicated on the grid side
    (cluster is irrelevant there).
    """
    sweep = ParamSweep({
        "topology": [Topology.CLUSTER, Topology.GRID_MULTI],
        "cluster": list(clusters),
        "n_src": list(counts),
        "n_dst": list(counts),
    })
    sweep.exclude(lambda c: not _feasible(c))
    # grid combinations are cluster-independent: keep only the first cluster
    first = clusters[0]
    sweep.exclude(
        lambda c: c["topology"] is Topology.GRID_MULTI and c["cluster"] != first
    )
    # 1x1 exercises nothing the paper reports on
    sweep.exclude(lambda c: c["n_src"] == 1 and c["n_dst"] == 1)
    return sweep


def spec_for(combination: dict, sizes: Optional[tuple[float, ...]] = None,
             repetitions: int = 10) -> ExperimentSpec:
    """The :class:`ExperimentSpec` of one sweep combination."""
    topology = combination["topology"]
    cluster = combination["cluster"] if topology is Topology.CLUSTER else None
    name = (
        f"{topology.value}-{cluster or 'grid'}-"
        f"{combination['n_src']}x{combination['n_dst']}"
    )
    return ExperimentSpec(
        name=name, topology=topology, cluster=cluster,
        n_sources=combination["n_src"], n_destinations=combination["n_dst"],
        sizes=sizes or TRANSFER_SIZES, repetitions=repetitions,
    )


def run_campaign(
    forecast: NetworkForecastService,
    network: TestbedNetwork,
    sweep: Optional[ParamSweep] = None,
    seed: int = 0,
    repetitions: int = 3,
    sizes: Optional[tuple[float, ...]] = None,
    platform_name: str = "g5k_test",
    progress=None,
) -> dict[str, ErrorSeries]:
    """Run (a slice of) the campaign; returns series keyed by combination id.

    Per-combination seeds derive from the engine's, so any single
    combination can be re-run in isolation bit-for-bit.
    """
    sweep = sweep if sweep is not None else campaign_sweep()

    def body(combination: dict, comb_seed: int) -> ErrorSeries:
        spec = spec_for(combination, sizes=sizes, repetitions=repetitions)
        return run_experiment(
            spec, forecast, network, platform_name=platform_name,
            seed=comb_seed, repetitions=repetitions, sizes=sizes,
        )

    engine = ExperimentEngine(sweep, body, seed=seed, progress=progress)
    engine.run()
    if engine.failures:
        combination, error = engine.failures[0]
        raise RuntimeError(
            f"campaign combination {combination_id(combination)} failed: {error}"
        )
    return {
        combination_id(combination): series
        for combination, series in engine.results
    }


def campaign_summary(results: dict[str, ErrorSeries]) -> SummaryStats:
    """§V-B pooled statistics over the whole campaign."""
    return summarize(results.values())
