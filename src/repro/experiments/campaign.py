"""The full experimental campaign (§V-A's complete parameter space).

"The full set of our experiments (from which we have only showed a subset
in this article) validates the network model of SimGrid" — the paper swept
*all* combinations of topology × sources × destinations, not just the nine
published figures.  This module expresses that campaign as an orchestration
sweep (every feasible combination, with the infeasible ones excluded the
way a 79-node cluster forces) and runs it through the experiment engine.

``run_campaign(workers=N)`` fans the combinations out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Per-combination seeds
come from :meth:`ParamSweep.seeded_combinations` — the same chain the serial
engine uses — and results are aggregated in sweep order, so a parallel
campaign is **bit-identical** to a serial one (asserted by
``benchmarks/bench_campaign_parallel.py``).  Worker processes rebuild their
experiment environment through a module-level factory (pickled by
reference); the default factory reuses the session-cached
:mod:`repro.experiments.environment` builders, which a forked worker
inherits for free.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Optional, Sequence

from repro._util.rng import derive_seed
from repro.analysis.errors import ErrorSeries
from repro.core.forecast import NetworkForecastService
from repro.experiments.protocol import (
    ENDPOINT_COUNTS,
    ExperimentSpec,
    TRANSFER_SIZES,
    Topology,
)
from repro.experiments.runner import run_experiment
from repro.experiments.summary import SummaryStats, summarize
from repro.g5k.sites import cluster_spec
from repro.orchestration.engine import ExperimentEngine, combination_id
from repro.orchestration.sweep import ParamSweep
from repro.testbed.fluid import TestbedNetwork

#: The clusters the paper's CLUSTER experiments draw from (§V-B1).
CAMPAIGN_CLUSTERS: tuple[str, ...] = ("sagittaire", "graphene")


def _feasible(combination: dict) -> bool:
    """Can the combination draw disjoint endpoint sets?"""
    if combination["topology"] is Topology.GRID_MULTI:
        return True
    spec = cluster_spec(combination["cluster"])
    return combination["n_src"] + combination["n_dst"] <= spec.n_nodes


def campaign_sweep(
    counts: Sequence[int] = ENDPOINT_COUNTS,
    clusters: Sequence[str] = CAMPAIGN_CLUSTERS,
) -> ParamSweep:
    """Every (topology, cluster, n_src, n_dst) combination the paper's
    campaign covers, minus infeasible draws.

    GRID_MULTI combinations carry ``cluster=None``; CLUSTER ones are
    generated per cluster.  The sweep is deduplicated on the grid side
    (cluster is irrelevant there).
    """
    sweep = ParamSweep({
        "topology": [Topology.CLUSTER, Topology.GRID_MULTI],
        "cluster": list(clusters),
        "n_src": list(counts),
        "n_dst": list(counts),
    })
    sweep.exclude(lambda c: not _feasible(c))
    # grid combinations are cluster-independent: keep only the first cluster
    first = clusters[0]
    sweep.exclude(
        lambda c: c["topology"] is Topology.GRID_MULTI and c["cluster"] != first
    )
    # 1x1 exercises nothing the paper reports on
    sweep.exclude(lambda c: c["n_src"] == 1 and c["n_dst"] == 1)
    return sweep


def spec_for(combination: dict, sizes: Optional[tuple[float, ...]] = None,
             repetitions: int = 10) -> ExperimentSpec:
    """The :class:`ExperimentSpec` of one sweep combination."""
    topology = combination["topology"]
    cluster = combination["cluster"] if topology is Topology.CLUSTER else None
    name = (
        f"{topology.value}-{cluster or 'grid'}-"
        f"{combination['n_src']}x{combination['n_dst']}"
    )
    return ExperimentSpec(
        name=name, topology=topology, cluster=cluster,
        n_sources=combination["n_src"], n_destinations=combination["n_dst"],
        sizes=sizes or TRANSFER_SIZES, repetitions=repetitions,
    )


def default_campaign_environment() -> tuple[NetworkForecastService, TestbedNetwork]:
    """The standard campaign environment (session-cached g5k platforms and
    testbed).  Module-level so worker processes can receive it by reference."""
    from repro.experiments.environment import forecast_service, testbed

    return forecast_service(), testbed()


#: Worker-process cache: one rebuilt environment per factory per process.
_WORKER_ENVIRONMENTS: dict = {}


def _run_combination_task(payload: tuple) -> tuple[str, Optional[ErrorSeries], Optional[str]]:
    """Run one campaign combination inside a worker process.

    Mirrors the serial engine's body + bounded-retry loop exactly (same
    attempt-seed derivation), and returns ``(combination_id, series, error)``
    with errors stringified so they always cross the process boundary.
    """
    (combination, comb_seed, repetitions, sizes, platform_name,
     environment_factory, max_retries) = payload
    env = _WORKER_ENVIRONMENTS.get(environment_factory)
    if env is None:
        env = _WORKER_ENVIRONMENTS[environment_factory] = environment_factory()
    forecast, network = env
    last_error: Optional[str] = None
    for attempt in range(max_retries + 1):
        try:
            spec = spec_for(combination, sizes=sizes, repetitions=repetitions)
            series = run_experiment(
                spec, forecast, network, platform_name=platform_name,
                seed=derive_seed(comb_seed, attempt), repetitions=repetitions,
                sizes=sizes,
            )
            return combination_id(combination), series, None
        except Exception as exc:  # noqa: BLE001 - executor boundary
            last_error = f"{type(exc).__name__}: {exc}"
    return combination_id(combination), None, last_error


def run_campaign(
    forecast: NetworkForecastService,
    network: TestbedNetwork,
    sweep: Optional[ParamSweep] = None,
    seed: int = 0,
    repetitions: int = 3,
    sizes: Optional[tuple[float, ...]] = None,
    platform_name: str = "g5k_test",
    progress=None,
    workers: Optional[int] = None,
    environment_factory: Callable = default_campaign_environment,
    chunk_size: Optional[int] = None,
    max_retries: int = 1,
) -> dict[str, ErrorSeries]:
    """Run (a slice of) the campaign; returns series keyed by combination id.

    Per-combination seeds derive from the engine's, so any single
    combination can be re-run in isolation bit-for-bit.

    ``workers > 1`` runs combinations on a process pool.  In that mode each
    worker obtains its experiment environment from ``environment_factory``
    (a picklable module-level callable returning ``(forecast, network)``);
    the ``forecast``/``network`` arguments only serve the serial path, so
    callers with a custom environment must pass a matching factory.  Results
    are chunked (``chunk_size`` tasks per executor round-trip, auto-sized by
    default) and aggregated in sweep order — identical ordering, identical
    seeds, bit-identical statistics vs. the serial path.
    """
    sweep = sweep if sweep is not None else campaign_sweep()
    if workers is not None and workers > 1:
        if environment_factory is default_campaign_environment:
            # workers run against the factory's environment, not the
            # forecast/network arguments — refuse to silently discard a
            # custom environment (building the default here is free: forked
            # workers inherit the caches it warms)
            default_forecast, default_network = default_campaign_environment()
            if forecast is not default_forecast or network is not default_network:
                raise ValueError(
                    "run_campaign(workers > 1) executes combinations against "
                    "environment_factory(), which does not match the "
                    "forecast/network passed in; supply a module-level "
                    "environment_factory rebuilding your custom environment"
                )
        return _run_campaign_parallel(
            sweep, seed=seed, repetitions=repetitions, sizes=sizes,
            platform_name=platform_name, progress=progress, workers=workers,
            environment_factory=environment_factory, chunk_size=chunk_size,
            max_retries=max_retries,
        )

    def body(combination: dict, comb_seed: int) -> ErrorSeries:
        spec = spec_for(combination, sizes=sizes, repetitions=repetitions)
        return run_experiment(
            spec, forecast, network, platform_name=platform_name,
            seed=comb_seed, repetitions=repetitions, sizes=sizes,
        )

    engine = ExperimentEngine(sweep, body, seed=seed, progress=progress,
                              max_retries=max_retries)
    engine.run()
    if engine.failures:
        combination, error = engine.failures[0]
        raise RuntimeError(
            f"campaign combination {combination_id(combination)} failed: {error}"
        )
    return {
        combination_id(combination): series
        for combination, series in engine.results
    }


def _run_campaign_parallel(
    sweep: ParamSweep,
    seed: int,
    repetitions: int,
    sizes: Optional[tuple[float, ...]],
    platform_name: str,
    progress,
    workers: int,
    environment_factory: Callable,
    chunk_size: Optional[int],
    max_retries: int,
) -> dict[str, ErrorSeries]:
    seeded = sweep.seeded_combinations(seed)
    payloads = [
        (combination, comb_seed, repetitions, sizes, platform_name,
         environment_factory, max_retries)
        for combination, comb_seed in seeded
    ]
    if not payloads:
        return {}
    chunk = chunk_size or ParamSweep.chunk_size(len(payloads), workers)
    results: dict[str, ErrorSeries] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # executor.map preserves input order: aggregation happens in sweep
        # order no matter which worker finishes first
        outcomes = pool.map(_run_combination_task, payloads, chunksize=chunk)
        for (combination, _), (cid, series, error) in zip(seeded, outcomes):
            if error is not None:
                raise RuntimeError(
                    f"campaign combination {cid} failed: {error}"
                )
            results[cid] = series
            if progress is not None:
                progress(combination, series)
    return results


def campaign_summary(results: dict[str, ErrorSeries]) -> SummaryStats:
    """§V-B pooled statistics over the whole campaign."""
    return summarize(results.values())
