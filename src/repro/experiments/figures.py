"""Per-figure experiment specs with asserted shape checks.

One :class:`FigureSpec` per paper figure (3–11), plus the §V-B1 asymmetric
graphene cases.  Checks encode the *shape* of each result — signs, rough
factors, crossovers — not the paper's absolute error values (our testbed is
a calibrated emulator, not the 2012 hardware; see EXPERIMENTS.md for the
paper-vs-measured record).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.analysis.errors import ErrorSeries
from repro.experiments.protocol import (
    LARGE_SIZE_THRESHOLD,
    ExperimentSpec,
    Topology,
)

Check = Callable[[ErrorSeries], Optional[str]]


def small_size_error_at_most(threshold: float) -> Check:
    """Median error at the smallest size must be <= threshold (optimistic
    flow model: real small transfers are slower than predicted)."""

    def check(series: ErrorSeries) -> Optional[str]:
        err = series.points[0].median_error
        if err > threshold:
            return (
                f"median error at size {series.points[0].size:.2e} is "
                f"{err:+.2f}, expected <= {threshold:+.2f}"
            )
        return None

    check.__name__ = f"small_size_error_at_most({threshold})"
    return check


def small_size_error_at_least(threshold: float) -> Check:
    """Median error at the smallest size must be >= threshold (hierarchical
    latency inflation: graphene small transfers are over-predicted)."""

    def check(series: ErrorSeries) -> Optional[str]:
        err = series.points[0].median_error
        if err < threshold:
            return (
                f"median error at size {series.points[0].size:.2e} is "
                f"{err:+.2f}, expected >= {threshold:+.2f}"
            )
        return None

    check.__name__ = f"small_size_error_at_least({threshold})"
    return check


def plateau_within(lo: float, hi: float) -> Check:
    """Median error over sizes > 1.67e7 must fall in [lo, hi]."""

    def check(series: ErrorSeries) -> Optional[str]:
        plateau = series.plateau_error(LARGE_SIZE_THRESHOLD)
        if not lo <= plateau <= hi:
            return (
                f"large-size plateau error {plateau:+.3f} outside "
                f"[{lo:+.2f}, {hi:+.2f}]"
            )
        return None

    check.__name__ = f"plateau_within({lo}, {hi})"
    return check


def converges_with_size(min_improvement: float = 1.0) -> Check:
    """|median error| must shrink from the smallest size to the plateau —
    the paper's universal observation that the model is good for large
    transfers and bad for small ones."""

    def check(series: ErrorSeries) -> Optional[str]:
        small = abs(series.points[0].median_error)
        plateau = abs(series.plateau_error(LARGE_SIZE_THRESHOLD))
        if small - plateau < min_improvement:
            return (
                f"|error| only improved {small - plateau:.2f} from smallest "
                f"size ({small:.2f}) to plateau ({plateau:.2f}); "
                f"expected >= {min_improvement}"
            )
        return None

    check.__name__ = f"converges_with_size({min_improvement})"
    return check


@dataclass(frozen=True)
class FigureSpec:
    """One reproducible figure: experiment + shape assertions."""

    fig_id: str
    title: str
    spec: ExperimentSpec
    checks: tuple[Check, ...]

    def verify(self, series: ErrorSeries) -> list[str]:
        """All failed-check messages (empty = shape reproduced)."""
        failures = []
        for check in self.checks:
            message = check(series)
            if message is not None:
                failures.append(f"{self.fig_id}/{check.__name__}: {message}")
        return failures


def _cluster(name: str, cluster: str, n_src: int, n_dst: int) -> ExperimentSpec:
    return ExperimentSpec(name=name, topology=Topology.CLUSTER, cluster=cluster,
                          n_sources=n_src, n_destinations=n_dst)


def _grid(name: str, n_src: int, n_dst: int) -> ExperimentSpec:
    return ExperimentSpec(name=name, topology=Topology.GRID_MULTI,
                          n_sources=n_src, n_destinations=n_dst)


FIGURES: dict[str, FigureSpec] = {
    "fig3": FigureSpec(
        "fig3", "sagittaire / CLUSTER / 1 source / 10 destinations",
        _cluster("sagittaire-1x10", "sagittaire", 1, 10),
        (small_size_error_at_most(-2.0), plateau_within(-0.5, 0.5),
         converges_with_size(1.5)),
    ),
    "fig4": FigureSpec(
        "fig4", "sagittaire / CLUSTER / 10 sources / 10 destinations",
        _cluster("sagittaire-10x10", "sagittaire", 10, 10),
        (small_size_error_at_most(-2.0), plateau_within(-0.5, 0.5),
         converges_with_size(1.5)),
    ),
    "fig5": FigureSpec(
        "fig5", "sagittaire / CLUSTER / 30 sources / 30 destinations",
        _cluster("sagittaire-30x30", "sagittaire", 30, 30),
        (small_size_error_at_most(-2.0), plateau_within(-0.5, 0.5),
         converges_with_size(1.5)),
    ),
    "fig6": FigureSpec(
        "fig6", "graphene / CLUSTER / 1 source / 10 destinations",
        _cluster("graphene-1x10", "graphene", 1, 10),
        (small_size_error_at_least(0.05), plateau_within(-0.5, 0.5)),
    ),
    "fig7": FigureSpec(
        "fig7", "graphene / CLUSTER / 10 sources / 10 destinations",
        _cluster("graphene-10x10", "graphene", 10, 10),
        (small_size_error_at_least(0.5), plateau_within(-0.5, 0.5)),
    ),
    "fig8": FigureSpec(
        "fig8", "graphene / CLUSTER / 30 sources / 30 destinations",
        _cluster("graphene-30x30", "graphene", 30, 30),
        # the unexplained ×~1.25 over-prediction (log2 1.25 ≈ +0.32)
        (small_size_error_at_least(0.5), plateau_within(0.02, 0.65)),
    ),
    "fig9": FigureSpec(
        "fig9", "graphene / CLUSTER / 50 sources / 50 destinations",
        _cluster("graphene-50x50", "graphene", 50, 50),
        # ×~1.7 over-prediction (log2 1.7 ≈ +0.77)
        (small_size_error_at_least(0.5), plateau_within(0.35, 1.15)),
    ),
    "fig10": FigureSpec(
        "fig10", "GRID_MULTI / 10 sources / 30 destinations",
        _grid("grid-10x30", 10, 30),
        (small_size_error_at_most(-1.0), plateau_within(-0.6, 0.4),
         converges_with_size(0.8)),
    ),
    "fig11": FigureSpec(
        "fig11", "GRID_MULTI / 60 sources / 60 destinations",
        _grid("grid-60x60", 60, 60),
        (small_size_error_at_most(-1.0), plateau_within(-0.6, 0.6),
         converges_with_size(0.8)),
    ),
    # §V-B1 second bullet: 30→50 and 50→30 "converge more nicely" than the
    # symmetric cases — their plateaus must stay below fig9's band
    "fig9-asym-30x50": FigureSpec(
        "fig9-asym-30x50", "graphene / CLUSTER / 30 sources / 50 destinations",
        _cluster("graphene-30x50", "graphene", 30, 50),
        (plateau_within(-0.35, 0.45),),
    ),
    "fig9-asym-50x30": FigureSpec(
        "fig9-asym-50x30", "graphene / CLUSTER / 50 sources / 30 destinations",
        _cluster("graphene-50x30", "graphene", 50, 30),
        (plateau_within(-0.35, 0.45),),
    ),
}


def run_figure(
    fig_id: str,
    forecast,
    network,
    seed: int = 0,
    repetitions: Optional[int] = None,
    sizes: Optional[tuple[float, ...]] = None,
    platform_name: str = "g5k_test",
) -> tuple[ErrorSeries, list[str]]:
    """Run one figure's experiment; returns (series, check failures)."""
    from repro.experiments.runner import run_experiment

    figure = FIGURES[fig_id]
    series = run_experiment(
        figure.spec, forecast, network, platform_name=platform_name,
        seed=seed, repetitions=repetitions, sizes=sizes,
    )
    return series, figure.verify(series)
