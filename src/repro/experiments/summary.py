"""The §V-B headline statistics.

"Globally, if we consider all the results presented here, both in cluster
and grid topologies, and if we consider only results for transfer whose
size > 1.67e7 bytes, the median of the absolute value of all the errors is
0.149, with a standard deviation of 0.532.  […] 74% of the predictions have
an absolute error less than 0.575."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro._util.stats import median, stddev
from repro.analysis.errors import ErrorSeries
from repro.experiments.protocol import LARGE_SIZE_THRESHOLD

#: The paper's reported values, for side-by-side reporting.
PAPER_MEDIAN_ABS_ERROR = 0.149
PAPER_ERROR_STDDEV = 0.532
PAPER_FRACTION_BELOW = 0.74
PAPER_FRACTION_THRESHOLD = 0.575


@dataclass(frozen=True)
class SummaryStats:
    """Pooled large-transfer accuracy over a set of experiments."""

    n_observations: int
    median_abs_error: float
    error_stddev: float
    fraction_below_0575: float

    def rows(self) -> list[tuple[str, float, float]]:
        """(metric, paper value, measured value) rows for the bench table."""
        return [
            ("median |log2 error|, size > 1.67e7",
             PAPER_MEDIAN_ABS_ERROR, self.median_abs_error),
            ("stddev of |log2 error|", PAPER_ERROR_STDDEV, self.error_stddev),
            ("fraction with |error| < 0.575",
             PAPER_FRACTION_BELOW, self.fraction_below_0575),
        ]


def summarize(
    series_list: Iterable[ErrorSeries],
    size_threshold: float = LARGE_SIZE_THRESHOLD,
) -> SummaryStats:
    """Pool all per-transfer errors above the size threshold."""
    errors: list[float] = []
    for series in series_list:
        errors.extend(series.errors_above(size_threshold))
    if not errors:
        raise ValueError("no large-transfer observations to summarize")
    abs_errors = [abs(e) for e in errors]
    below = sum(1 for e in abs_errors if e < PAPER_FRACTION_THRESHOLD)
    return SummaryStats(
        n_observations=len(errors),
        median_abs_error=median(abs_errors),
        error_stddev=stddev(abs_errors),
        fraction_below_0575=below / len(abs_errors),
    )


def verify_summary(stats: SummaryStats) -> list[str]:
    """Shape checks on the pooled statistics (bands, not point values)."""
    failures = []
    if not 0.02 <= stats.median_abs_error <= 0.35:
        failures.append(
            f"median |error| {stats.median_abs_error:.3f} outside [0.02, 0.35] "
            f"(paper: {PAPER_MEDIAN_ABS_ERROR})"
        )
    if stats.fraction_below_0575 < 0.60:
        failures.append(
            f"only {stats.fraction_below_0575:.0%} of predictions within "
            f"|error| < 0.575 (paper: {PAPER_FRACTION_BELOW:.0%})"
        )
    if stats.error_stddev > 1.0:
        failures.append(
            f"error stddev {stats.error_stddev:.3f} > 1.0 "
            f"(paper: {PAPER_ERROR_STDDEV})"
        )
    return failures
