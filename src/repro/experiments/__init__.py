"""The paper's validation campaign (§V): protocol, runner, figures, summary.

- :mod:`repro.experiments.protocol` — the parameter space: 10 transfer sizes
  on a geometric progression 0.1 MB → 10 GB, source/destination counts,
  CLUSTER and GRID_MULTI topologies, endpoint drawing rules,
- :mod:`repro.experiments.environment` — cached experiment environment
  (g5k platforms, testbed, forecast service),
- :mod:`repro.experiments.runner` — runs one experiment: measured transfers
  on the testbed (via the orchestration + iperf layers) versus Pilgrim
  predictions, aggregated into an :class:`~repro.analysis.errors.ErrorSeries`,
- :mod:`repro.experiments.figures` — one spec per paper figure (3–11) plus
  the §V-B1 asymmetric graphene cases, each with asserted shape checks,
- :mod:`repro.experiments.summary` — the §V-B headline statistics.
"""

from repro.experiments.protocol import (
    TRANSFER_SIZES,
    LARGE_SIZE_THRESHOLD,
    Topology,
    ExperimentSpec,
    draw_transfer_pairs,
)
from repro.experiments.runner import run_experiment
from repro.experiments.figures import FIGURES, FigureSpec, run_figure

__all__ = [
    "TRANSFER_SIZES",
    "LARGE_SIZE_THRESHOLD",
    "Topology",
    "ExperimentSpec",
    "draw_transfer_pairs",
    "run_experiment",
    "FIGURES",
    "FigureSpec",
    "run_figure",
]
