"""Running one experiment: measured reality vs Pilgrim predictions.

Follows §V-A's step list through the orchestration layer:

1. "TCP iperf servers (receivers) are started on all destination nodes" —
   a :class:`~repro.orchestration.actions.Remote` action,
2. "TCP iperf clients (senders) are simultaneously started on all source
   nodes" and 3. "wait the end of the client transfers, record the
   completion time of all actual transfers" — one measurement run on the
   fluid testbed,
4. "Record the Pilgrim predictions" — one PNFS request per repetition.

Each (repetition) redraws the endpoint sets, and each size runs with a
repetition-specific measurement seed, so the dispersion boxes aggregate
genuine run-to-run variability like the paper's 10-run averaging.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro._util.rng import derive_seed
from repro.analysis.errors import ErrorSeries
from repro.core.forecast import NetworkForecastService, TransferSpec
from repro.experiments.protocol import ExperimentSpec, draw_transfer_pairs
from repro.orchestration.actions import FunctionAction, Remote, SequentialActions
from repro.testbed.fluid import TestbedNetwork
from repro.testbed.iperf import IperfClient, IperfServer
from repro.testbed.measurement import run_transfers


def run_experiment(
    spec: ExperimentSpec,
    forecast: NetworkForecastService,
    network: TestbedNetwork,
    platform_name: str = "g5k_test",
    seed: int = 0,
    repetitions: Optional[int] = None,
    sizes: Optional[tuple[float, ...]] = None,
    progress: Optional[Callable[[int, float], None]] = None,
) -> ErrorSeries:
    """Measure and predict the full size sweep; returns the error series."""
    series = ErrorSeries(name=spec.name)
    reps = repetitions if repetitions is not None else spec.repetitions
    size_list = sizes if sizes is not None else spec.sizes
    for rep in range(reps):
        rep_seed = derive_seed(seed, spec.name, "rep", rep)
        pairs = draw_transfer_pairs(spec, rep_seed)
        # prediction is deterministic per draw: one PNFS request per size
        for size in size_list:
            transfers = [(src, dst, size) for src, dst in pairs]
            measured = _measure(network, transfers,
                                seed=derive_seed(rep_seed, "measure", size))
            forecasts = forecast.predict_transfers(
                platform_name, [TransferSpec(s, d, z) for s, d, z in transfers]
            )
            point = series.point(size)
            for fc, ms in zip(forecasts, measured):
                point.add(prediction=fc.duration, measure=ms.duration)
            if progress is not None:
                progress(rep, size)
    return series


def _measure(network: TestbedNetwork, transfers: list[tuple[str, str, float]],
             seed: int) -> list:
    """The §V-A measurement steps as orchestration actions."""
    destinations = sorted({dst for _, dst, _ in transfers})
    servers: dict[str, IperfServer] = {}

    def start_server(host: str) -> IperfServer:
        server = IperfServer(host).start()
        servers[host] = server
        return server

    results: list = []

    def run_clients() -> int:
        clients = [
            IperfClient(src, servers[dst], size) for src, dst, size in transfers
        ]
        # validity check mirrors iperf: a client needs its started server
        for client in clients:
            client.transfer_tuple()
        results.extend(run_transfers(network, transfers, seed=seed))
        return len(results)

    def stop_servers() -> int:
        for server in servers.values():
            server.stop()
        return len(servers)

    protocol = SequentialActions(
        [
            Remote(start_server, destinations, name="start iperf servers"),
            FunctionAction(run_clients, name="run iperf clients"),
            FunctionAction(stop_servers, name="stop iperf servers"),
        ],
        name="experiment",
    )
    protocol.run()
    return results
