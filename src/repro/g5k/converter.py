"""Reference-API → SimGrid-platform converter.

Implements the paper's §IV-C2/§V-A tooling: "We developed a tool which is
able to process this Grid'5000 self-description, and convert it to a SimGrid
platform description […] one SimGrid autonomous system per Grid'5000 site."

Two variants, as evaluated in §V-A:

- ``g5k_test`` — built from the *development* Reference API: enumerates every
  host with its own link, keeps the aggregation-switch structure, is "less
  optimized (in size and loading time) […] but conforms more to the reality".
  Every intra-site host pair gets an explicit route (quadratic tables — the
  cost the paper mentions).  **Faithful artifact**: all intra-site links are
  emitted with the XML-default ``SHARED`` policy, so each 10G aggregation
  uplink is one half-duplex constraint; backbone links come from the stable
  API's directed pairs and are emitted full-duplex.  This is the documented
  mechanism behind the graphene ≥30-flow over-prediction (DESIGN.md §3).
- ``g5k_cabinets`` — built from the *stable* API: each cluster is abstracted
  to a "cabinet" (SimGrid ``<cluster>`` semantics): per-host links plus one
  shared cluster-backbone link crossed by all of the cluster's traffic.
  Smaller and faster to build, but intra-cluster contention is badly
  over-modeled for ≥30 concurrent flows.

Latencies are **not** in the Reference API; following §IV-C2 the converter
hardcodes 1e-4 s for intra-site links and 2.25e-3 s for the backbone ("In the
future, we will get these latencies from periodic measures" — see
:mod:`repro.core.latency_feed` for that future-work feature).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.g5k.refapi import Grid5000Reference, NodeDoc, SiteDoc
from repro.simgrid.platform import (
    AutonomousSystem,
    Direction,
    Link,
    LinkUse,
    Platform,
    SharingPolicy,
)

#: §IV-C2: hardcoded intra-site link latency, seconds.
INTRA_SITE_LATENCY = 1.0e-4
#: §IV-C2: hardcoded backbone latency, seconds.
BACKBONE_LATENCY = 2.25e-3


class ConverterError(Exception):
    """Raised on unsupported variant/reference combinations."""


def to_simgrid_platform(
    ref: Grid5000Reference,
    variant: str = "g5k_test",
    include_equipment_limits: bool = False,
    intra_site_latency: float = INTRA_SITE_LATENCY,
    backbone_latency: float = BACKBONE_LATENCY,
    sites: Optional[Sequence[str]] = None,
) -> Platform:
    """Convert a Reference-API snapshot into a simulator platform.

    ``sites`` restricts the build to a subset of site uids (useful for
    cluster-only experiments).  ``include_equipment_limits`` adds the
    documented switch backplane capacities as extra shared links — the
    ablation the paper reasons about in §V-B1 (off by default, matching the
    generated platforms of the paper).
    """
    if variant == "g5k_test":
        return _build_test(ref, include_equipment_limits,
                           intra_site_latency, backbone_latency, sites)
    if variant == "g5k_cabinets":
        if include_equipment_limits:
            raise ConverterError("equipment limits are a g5k_test-only option")
        return _build_cabinets(ref, intra_site_latency, backbone_latency, sites)
    raise ConverterError(f"unknown platform variant {variant!r}")


def _selected_sites(ref: Grid5000Reference, sites: Optional[Sequence[str]]) -> list[SiteDoc]:
    if sites is None:
        return list(ref.sites)
    chosen = []
    for uid in sites:
        chosen.append(ref.site(uid))
    return chosen


# ---------------------------------------------------------------------------
# g5k_test
# ---------------------------------------------------------------------------

def _build_test(
    ref: Grid5000Reference,
    equipment_limits: bool,
    intra_latency: float,
    bb_latency: float,
    sites: Optional[Sequence[str]],
) -> Platform:
    platform = Platform("g5k_test", routing="Full")
    site_docs = _selected_sites(ref, sites)
    for site in site_docs:
        _build_test_site(platform, site, equipment_limits, intra_latency)
    _add_backbone(platform, ref, site_docs, bb_latency)
    return platform


def _build_test_site(
    platform: Platform,
    site: SiteDoc,
    equipment_limits: bool,
    latency: float,
) -> None:
    as_ = AutonomousSystem(f"AS_{site.uid}", routing="Full")
    platform.root.add_child(as_, gateway=site.gateway)
    as_.add_router(site.gateway)

    # backplane links (optional ablation)
    backplanes: dict[str, Link] = {}
    if equipment_limits:
        for eq in site.network_equipments:
            if eq.backplane_bps > 0:
                backplanes[eq.uid] = as_.add_link(
                    f"{eq.uid}-backplane", eq.backplane_bps / 8.0, 0.0,
                    policy=SharingPolicy.SHARED,
                )

    # aggregation switches and their uplinks
    uplinks: dict[str, Link] = {}
    for eq in site.network_equipments:
        if eq.kind != "switch":
            continue
        as_.add_router(eq.uid)
        uplink_ports = [p for p in eq.ports() if p.kind in ("router", "switch")]
        if not uplink_ports:
            raise ConverterError(f"switch {eq.uid!r} has no uplink port")
        # XML-default policy: SHARED — the faithful half-duplex artifact
        uplinks[eq.uid] = as_.add_link(
            f"{eq.uid}-uplink", uplink_ports[0].rate / 8.0, latency,
            policy=SharingPolicy.SHARED,
        )
        route = [LinkUse(uplinks[eq.uid], Direction.UP)]
        if equipment_limits and site.gateway in backplanes:
            route.append(LinkUse(backplanes[site.gateway], Direction.UP))
        as_.add_route(eq.uid, site.gateway, route)

    # hosts, their private links, and host->gateway routes
    host_up: dict[str, LinkUse] = {}
    host_down: dict[str, LinkUse] = {}
    node_switch: dict[str, str] = {}
    for node in site.nodes():
        adapter = node.primary_adapter
        host = as_.add_host(node.uid, speed=1e9)
        link = as_.add_link(f"{node.uid}-link", adapter.rate / 8.0, latency,
                            policy=SharingPolicy.SHARED)
        host_up[node.uid] = LinkUse(link, Direction.UP)
        host_down[node.uid] = LinkUse(link, Direction.DOWN)
        node_switch[node.uid] = adapter.switch
        to_gw = [host_up[node.uid]]
        if adapter.switch != site.gateway:
            if equipment_limits and adapter.switch in backplanes:
                to_gw.append(LinkUse(backplanes[adapter.switch], Direction.UP))
            to_gw.append(LinkUse(uplinks[adapter.switch], Direction.UP))
            as_.add_route(node.uid, adapter.switch, [host_up[node.uid]])
        if equipment_limits and site.gateway in backplanes:
            to_gw.append(LinkUse(backplanes[site.gateway], Direction.UP))
        as_.add_route(node.uid, site.gateway, to_gw)

    # exhaustive host-pair routes — "it does not abstract clusters and
    # instead it enumerates all hosts" (§V-A)
    nodes = [n.uid for n in site.nodes()]
    for i, a in enumerate(nodes):
        sw_a = node_switch[a]
        for b in nodes[i + 1:]:
            sw_b = node_switch[b]
            route = [host_up[a]]
            if sw_a == sw_b:
                if equipment_limits and sw_a in backplanes:
                    route.append(LinkUse(backplanes[sw_a], Direction.UP))
            else:
                if sw_a != site.gateway:
                    if equipment_limits and sw_a in backplanes:
                        route.append(LinkUse(backplanes[sw_a], Direction.UP))
                    route.append(LinkUse(uplinks[sw_a], Direction.UP))
                if equipment_limits and site.gateway in backplanes:
                    route.append(LinkUse(backplanes[site.gateway], Direction.UP))
                if sw_b != site.gateway:
                    route.append(LinkUse(uplinks[sw_b], Direction.DOWN))
                    if equipment_limits and sw_b in backplanes:
                        route.append(LinkUse(backplanes[sw_b], Direction.DOWN))
            route.append(host_down[b])
            as_.add_route(a, b, route)


# ---------------------------------------------------------------------------
# g5k_cabinets
# ---------------------------------------------------------------------------

def _build_cabinets(
    ref: Grid5000Reference,
    intra_latency: float,
    bb_latency: float,
    sites: Optional[Sequence[str]],
) -> Platform:
    platform = Platform("g5k_cabinets", routing="Full")
    site_docs = _selected_sites(ref, sites)
    for site in site_docs:
        site_as = AutonomousSystem(f"AS_{site.uid}", routing="Full")
        platform.root.add_child(site_as, gateway=site.gateway)
        site_as.add_router(site.gateway)
        for cluster in site.clusters:
            cab_router = f"{cluster.uid}-cab"
            cluster_as = AutonomousSystem(f"AS_{cluster.uid}", routing="Full")
            site_as.add_child(cluster_as, gateway=cab_router)
            cluster_as.add_router(cab_router)
            cab_link = cluster_as.add_link(
                f"{cluster.uid}-cab-link", 1.25e9, intra_latency,
                policy=SharingPolicy.SHARED,
            )
            cab_up = LinkUse(cab_link, Direction.UP)
            cab_down = LinkUse(cab_link, Direction.DOWN)
            ups, downs = {}, {}
            for node in cluster.nodes:
                cluster_as.add_host(node.uid, speed=1e9)
                link = cluster_as.add_link(
                    f"{node.uid}-link", node.primary_adapter.rate / 8.0,
                    intra_latency, policy=SharingPolicy.SHARED,
                )
                ups[node.uid] = LinkUse(link, Direction.UP)
                downs[node.uid] = LinkUse(link, Direction.DOWN)
                cluster_as.add_route(node.uid, cab_router, [ups[node.uid], cab_up])
            # intra-cluster pairs: up + cluster backbone + down (the
            # SimGrid <cluster> tag semantics)
            uids = [n.uid for n in cluster.nodes]
            for i, a in enumerate(uids):
                for b in uids[i + 1:]:
                    cluster_as.add_route(a, b, [ups[a], cab_up, downs[b]])
            site_as.add_route(f"AS_{cluster.uid}", site.gateway, [])
        # cluster <-> cluster inside the site: through the site router
        cluster_names = [c.uid for c in site.clusters]
        for i, a in enumerate(cluster_names):
            for b in cluster_names[i + 1:]:
                site_as.add_route(f"AS_{a}", f"AS_{b}", [])
    _add_backbone(platform, ref, site_docs, bb_latency)
    return platform


# ---------------------------------------------------------------------------
# shared pieces
# ---------------------------------------------------------------------------

def _add_backbone(
    platform: Platform,
    ref: Grid5000Reference,
    site_docs: list[SiteDoc],
    bb_latency: float,
) -> None:
    selected = {site.uid for site in site_docs}
    gateway_site = {site.gateway: site.uid for site in site_docs}
    for bb in ref.backbone:
        ends = [gateway_site.get(e) for e in bb.endpoints]
        if None in ends or not set(ends) <= selected:
            continue  # backbone link touches a non-selected site
        a, b = ends
        # directed pairs in the stable API => full-duplex in the model
        link = platform.root.add_link(
            bb.uid, bb.rate / 8.0, bb_latency, policy=SharingPolicy.FULLDUPLEX
        )
        platform.root.add_route(
            f"AS_{a}", f"AS_{b}", [link],
            gw_src=bb.endpoints[0], gw_dst=bb.endpoints[1],
        )
