"""Grid'5000 substrate: reference API, synthetic sites, platform converter.

The paper's forecast service needs "a model of the simulated platform"
(§IV-C2) obtained by converting the Grid'5000 Reference API's
self-description into a SimGrid platform.  This subpackage provides:

- :mod:`repro.g5k.refapi` — the document model of the Reference API
  (sites → clusters → nodes with network adapters; network equipments with
  linecards and ports; backbone links),
- :mod:`repro.g5k.sites` — the synthetic description of the three sites used
  in the paper's experiments (Lyon, Nancy, Lille — §V-A), in both the
  *stable* (coarse) and *development* (detailed) API versions, plus the
  builder of the physical-truth testbed,
- :mod:`repro.g5k.converter` — the Reference-API → platform converter with
  its two variants ``g5k_test`` and ``g5k_cabinets`` (§V-A),
- :mod:`repro.g5k.api_server` — the Reference API served over Pilgrim's REST
  layer.
"""

from repro.g5k.refapi import Grid5000Reference
from repro.g5k.sites import (
    grid5000_dev_reference,
    grid5000_stable_reference,
    build_grid5000_testbed,
)
from repro.g5k.converter import to_simgrid_platform

__all__ = [
    "Grid5000Reference",
    "grid5000_dev_reference",
    "grid5000_stable_reference",
    "build_grid5000_testbed",
    "to_simgrid_platform",
]
