"""Synthetic description of the three Grid'5000 sites the paper uses.

Provides three views of the same physical platform (DESIGN.md §3):

1. :func:`grid5000_dev_reference` — the *development* Reference API: detailed
   network topology (graphene's four aggregation switches and 10G uplinks,
   Figure 2 of the paper), only available for Lille, Lyon and Nancy (§V-A).
   Feeds the converter's ``g5k_test`` platform.
2. :func:`grid5000_stable_reference` — the *stable* Reference API: coarse
   topology (every node attaches to the site gateway).  Feeds
   ``g5k_cabinets``.
3. :func:`build_grid5000_testbed` — the physical truth: a
   :class:`~repro.testbed.fluid.TestbedNetwork` with full-duplex links, real
   latencies and per-cluster hardware profiles.  This is what "running the
   experiment on Grid'5000" means in this reproduction.

Node counts follow the paper (sagittaire 79, graphene 144 in groups of
39/35/30/40); the other clusters are sized to the 2012 Grid'5000 inventory.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.g5k.refapi import (
    AdapterDoc,
    BackboneLinkDoc,
    ClusterDoc,
    EquipmentDoc,
    Grid5000Reference,
    LinecardDoc,
    NodeDoc,
    PortDoc,
    SiteDoc,
)
from repro.testbed.fluid import Hop, TestbedNetwork
from repro.testbed.profiles import PROFILES


@dataclass(frozen=True)
class ClusterSpec:
    """Inventory entry for one cluster."""

    name: str
    site: str
    n_nodes: int
    model: str
    #: Aggregation-switch group sizes (None = nodes attach to the site
    #: gateway directly).  graphene: 1-39 / 40-74 / 75-104 / 105-144 (Fig. 2).
    groups: Optional[tuple[int, ...]] = None
    agg_prefix: str = ""
    #: Physical one-way latency of a node's link, seconds.
    host_link_latency: float = 2.5e-5

    def node_uid(self, index: int) -> str:
        return f"{self.name}-{index}.{self.site}.grid5000.fr"

    def node_uids(self) -> list[str]:
        return [self.node_uid(i) for i in range(1, self.n_nodes + 1)]

    def group_of(self, index: int) -> Optional[int]:
        """1-based aggregation group of node ``index`` (None when flat)."""
        if self.groups is None:
            return None
        start = 1
        for g, size in enumerate(self.groups, start=1):
            if start <= index < start + size:
                return g
            start += size
        raise ValueError(f"node index {index} out of range for {self.name}")


CLUSTERS: tuple[ClusterSpec, ...] = (
    ClusterSpec("sagittaire", "lyon", 79, "Sun Fire V20z (2x Opteron 250)",
                host_link_latency=3.0e-5),
    ClusterSpec("capricorne", "lyon", 56, "IBM eServer 325 (2x Opteron 246)",
                host_link_latency=3.0e-5),
    ClusterSpec("graphene", "nancy", 144, "Carri System (Xeon X3440)",
                groups=(39, 35, 30, 40), agg_prefix="sgraphene",
                host_link_latency=2.0e-5),
    ClusterSpec("griffon", "nancy", 92, "Carri System (2x Xeon L5420)",
                host_link_latency=2.2e-5),
    ClusterSpec("chti", "lille", 20, "IBM eServer 325 (2x Opteron 252)",
                host_link_latency=2.8e-5),
    ClusterSpec("chicon", "lille", 26, "IBM eServer 326m (2x Opteron 285)",
                host_link_latency=2.8e-5),
    ClusterSpec("chinqchint", "lille", 46, "SGI Altix ICE (2x Xeon E5440)",
                host_link_latency=2.5e-5),
)

SITES: tuple[str, ...] = ("lille", "lyon", "nancy")

#: Site gateway equipment uids (Figure 2 calls them gw.lyon / gw.nancy).
GATEWAYS: dict[str, str] = {site: f"gw-{site}" for site in SITES}

#: NIC rate of every compute node, bits/s (all clusters are GbE).
NODE_RATE_BPS = 1e9
#: Aggregation uplink and backbone rate, bits/s.
UPLINK_RATE_BPS = 1e10
BACKBONE_RATE_BPS = 1e10

#: Physical one-way latency of aggregation uplinks, seconds.
UPLINK_LATENCY = 1.0e-5

#: Physical one-way backbone latencies, seconds (RENATER L2VPN overlay; the
#: tunnels are far from geographic shortest paths, hence the multi-ms values —
#: the paper's model hardcodes 2.25 ms instead, which is one source of its
#: small-transfer error at grid scale).
BACKBONE_LATENCY: dict[frozenset, float] = {
    frozenset(("lyon", "nancy")): 9.5e-3,
    frozenset(("lyon", "lille")): 10.5e-3,
    frozenset(("nancy", "lille")): 8.5e-3,
}

#: Documented equipment capacities, bits/s (used only by the optional
#: equipment-limits ablation; the paper's platforms omit them).
BACKPLANE_BPS = {
    "gw-lyon": 3.84e12,   # ExtremeNetworks BlackDiamond 8810
    "gw-nancy": 1.92e12,
    "gw-lille": 1.92e12,
    "sgraphene1": 1.76e11,
    "sgraphene2": 1.76e11,
    "sgraphene3": 1.76e11,
    "sgraphene4": 1.76e11,
}
LINECARD_RATE_BPS = 4.8e10


def cluster_spec(name: str) -> ClusterSpec:
    for spec in CLUSTERS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown cluster {name!r}")


def site_clusters(site: str) -> list[ClusterSpec]:
    return [spec for spec in CLUSTERS if spec.site == site]


# ---------------------------------------------------------------------------
# reference API documents
# ---------------------------------------------------------------------------

def _node_docs(spec: ClusterSpec, detailed: bool) -> tuple[NodeDoc, ...]:
    nodes = []
    for i in range(1, spec.n_nodes + 1):
        if detailed and spec.groups is not None:
            switch = f"{spec.agg_prefix}{spec.group_of(i)}"
        else:
            switch = GATEWAYS[spec.site]
        nodes.append(
            NodeDoc(
                uid=spec.node_uid(i),
                cluster=spec.name,
                site=spec.site,
                adapters=(AdapterDoc(interface="eth0", rate=NODE_RATE_BPS,
                                     switch=switch, switch_port=f"port-{i}"),),
            )
        )
    return tuple(nodes)


def _site_doc(site: str, detailed: bool) -> SiteDoc:
    specs = site_clusters(site)
    clusters = tuple(
        ClusterDoc(uid=spec.name, site=site, model=spec.model,
                   nodes=_node_docs(spec, detailed))
        for spec in specs
    )
    gateway = GATEWAYS[site]
    equipments: list[EquipmentDoc] = []
    gw_ports: list[PortDoc] = []
    for spec in specs:
        if detailed and spec.groups is not None:
            for g, size in enumerate(spec.groups, start=1):
                agg_uid = f"{spec.agg_prefix}{g}"
                start = 1 + sum(spec.groups[: g - 1])
                node_ports = tuple(
                    PortDoc(uid=spec.node_uid(i), kind="node", rate=NODE_RATE_BPS)
                    for i in range(start, start + size)
                )
                equipments.append(
                    EquipmentDoc(
                        uid=agg_uid, site=site, kind="switch",
                        backplane_bps=BACKPLANE_BPS.get(agg_uid, 0.0),
                        linecards=(
                            LinecardDoc(rate=LINECARD_RATE_BPS, ports=node_ports),
                            LinecardDoc(
                                rate=UPLINK_RATE_BPS,
                                ports=(PortDoc(uid=gateway, kind="router",
                                               rate=UPLINK_RATE_BPS),),
                            ),
                        ),
                    )
                )
                gw_ports.append(PortDoc(uid=agg_uid, kind="switch",
                                        rate=UPLINK_RATE_BPS))
        else:
            gw_ports.extend(
                PortDoc(uid=spec.node_uid(i), kind="node", rate=NODE_RATE_BPS)
                for i in range(1, spec.n_nodes + 1)
            )
    gw_ports.extend(
        PortDoc(uid=GATEWAYS[other], kind="backbone", rate=BACKBONE_RATE_BPS)
        for other in SITES if other != site
    )
    equipments.append(
        EquipmentDoc(
            uid=gateway, site=site, kind="router",
            backplane_bps=BACKPLANE_BPS.get(gateway, 0.0),
            linecards=(LinecardDoc(rate=LINECARD_RATE_BPS, ports=tuple(gw_ports)),),
        )
    )
    return SiteDoc(uid=site, clusters=clusters,
                   network_equipments=tuple(equipments), gateway=gateway)


def _backbone_docs() -> tuple[BackboneLinkDoc, ...]:
    docs = []
    for i, a in enumerate(SITES):
        for b in SITES[i + 1:]:
            docs.append(
                BackboneLinkDoc(
                    uid=f"renater-{a}-{b}",
                    endpoints=(GATEWAYS[a], GATEWAYS[b]),
                    rate=BACKBONE_RATE_BPS,
                )
            )
    return tuple(docs)


@lru_cache(maxsize=None)
def grid5000_dev_reference() -> Grid5000Reference:
    """The development Reference API (detailed topology, 3 sites)."""
    ref = Grid5000Reference(
        version="dev",
        sites=tuple(_site_doc(site, detailed=True) for site in SITES),
        backbone=_backbone_docs(),
    )
    ref.validate()
    return ref


@lru_cache(maxsize=None)
def grid5000_stable_reference() -> Grid5000Reference:
    """The stable Reference API (coarse topology)."""
    ref = Grid5000Reference(
        version="stable",
        sites=tuple(_site_doc(site, detailed=False) for site in SITES),
        backbone=_backbone_docs(),
    )
    ref.validate()
    return ref


# ---------------------------------------------------------------------------
# the physical truth
# ---------------------------------------------------------------------------

def build_grid5000_testbed() -> TestbedNetwork:
    """Construct the physical-truth testbed of the three sites.

    Full-duplex 1G node links (per-cluster latencies), graphene's four 10G
    aggregation uplinks, 10G full-duplex backbone with the RENATER overlay
    latencies, Ethernet goodput efficiency on every link, per-cluster host
    profiles.  Routes are resolved lazily from the structural maps.
    """
    net = TestbedNetwork("grid5000-testbed")
    node_cluster: dict[str, ClusterSpec] = {}
    node_group: dict[str, Optional[int]] = {}
    for spec in CLUSTERS:
        profile = PROFILES[spec.name]
        for i in range(1, spec.n_nodes + 1):
            uid = spec.node_uid(i)
            net.add_node(uid, profile)
            net.add_link(f"tb-{uid}", capacity=NODE_RATE_BPS / 8.0,
                         latency=spec.host_link_latency,
                         efficiency=profile.nic_efficiency)
            node_cluster[uid] = spec
            node_group[uid] = spec.group_of(i)
        if spec.groups is not None:
            for g in range(1, len(spec.groups) + 1):
                net.add_link(f"tb-{spec.agg_prefix}{g}-uplink",
                             capacity=UPLINK_RATE_BPS / 8.0,
                             latency=UPLINK_LATENCY,
                             efficiency=PROFILES[spec.name].nic_efficiency)
    for pair, latency in BACKBONE_LATENCY.items():
        a, b = sorted(pair)
        net.add_link(f"tb-bb-{a}-{b}", capacity=BACKBONE_RATE_BPS / 8.0,
                     latency=latency, efficiency=0.97)

    def resolver(src: str, dst: str) -> list[Hop]:
        if src == dst:
            raise ValueError(f"no loopback route for {src!r}")
        spec_a, spec_b = node_cluster[src], node_cluster[dst]
        hops = [Hop(net.links[f"tb-{src}"], 0)]
        # climb out of the source aggregation group, if any
        group_a, group_b = node_group[src], node_group[dst]
        same_agg = (
            spec_a.name == spec_b.name
            and group_a is not None
            and group_a == group_b
        )
        if group_a is not None and not same_agg:
            hops.append(Hop(net.links[f"tb-{spec_a.agg_prefix}{group_a}-uplink"], 0))
        if spec_a.site != spec_b.site:
            a, b = sorted((spec_a.site, spec_b.site))
            direction = 0 if spec_a.site == a else 1
            hops.append(Hop(net.links[f"tb-bb-{a}-{b}"], direction))
        if group_b is not None and not same_agg:
            hops.append(Hop(net.links[f"tb-{spec_b.agg_prefix}{group_b}-uplink"], 1))
        hops.append(Hop(net.links[f"tb-{dst}"], 1))
        return hops

    net.set_route_resolver(resolver)
    return net


def all_node_uids() -> list[str]:
    """Every node FQDN across the three sites."""
    return [uid for spec in CLUSTERS for uid in spec.node_uids()]
