"""The Grid'5000 Reference API served over the REST layer.

"Grid'5000 provides a set of introspective API which allow to query both its
static (resources, network topology) and dynamic characteristics" (§IV-B).
This module exposes the synthetic reference documents the same way, so the
converter can be exercised end-to-end over HTTP like the paper's tooling.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.core.rest.errors import NotFound
from repro.core.rest.router import Request, Router
from repro.core.rest.server import PilgrimHTTPServer
from repro.g5k.refapi import Grid5000Reference, RefApiError


def build_refapi_router(ref: Grid5000Reference) -> Router:
    """Router exposing the reference documents under ``/g5k/…``."""
    router = Router()

    @router.get("/g5k")
    def describe(request: Request):
        return {
            "version": ref.version,
            "sites": [site.uid for site in ref.sites],
            "backbone": [bb.uid for bb in ref.backbone],
        }

    @router.get("/g5k/sites")
    def sites(request: Request):
        return {"items": [site.uid for site in ref.sites]}

    @router.get("/g5k/sites/{site}")
    def site_doc(request: Request, site: str):
        try:
            return asdict(ref.site(site))
        except RefApiError as exc:
            raise NotFound(str(exc)) from None

    @router.get("/g5k/sites/{site}/clusters")
    def clusters(request: Request, site: str):
        try:
            doc = ref.site(site)
        except RefApiError as exc:
            raise NotFound(str(exc)) from None
        return {"items": [c.uid for c in doc.clusters]}

    @router.get("/g5k/sites/{site}/clusters/{cluster}")
    def cluster_doc(request: Request, site: str, cluster: str):
        try:
            doc = ref.site(site)
        except RefApiError as exc:
            raise NotFound(str(exc)) from None
        for c in doc.clusters:
            if c.uid == cluster:
                return asdict(c)
        raise NotFound(f"no cluster {cluster!r} in site {site!r}")

    @router.get("/g5k/backbone")
    def backbone(request: Request):
        return {"items": [asdict(bb) for bb in ref.backbone]}

    return router


def serve_refapi(
    ref: Grid5000Reference, host: str = "127.0.0.1", port: int = 0
) -> PilgrimHTTPServer:
    """An HTTP server (not yet started) for the reference API."""
    return PilgrimHTTPServer(build_refapi_router(ref), host=host, port=port)


def fetch_reference(base_url: str) -> Grid5000Reference:
    """Rebuild a :class:`Grid5000Reference` from a served API — what the
    paper's converter scripts do against the real API."""
    from repro.core.rest.client import RestClient

    client = RestClient(base_url)
    top = client.get("/g5k")
    sites = [client.get(f"/g5k/sites/{uid}") for uid in top["sites"]]  # type: ignore[index]
    backbone = client.get("/g5k/backbone")["items"]  # type: ignore[index]
    return Grid5000Reference.from_json(
        {"version": top["version"], "sites": sites, "backbone": backbone}  # type: ignore[index]
    )
