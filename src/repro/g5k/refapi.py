"""Grid'5000 Reference API document model.

The real Reference API serves JSON documents describing every site, cluster,
node, network adapter and network equipment, "semi-automatically gathered by
scripts" (§IV-C2).  This module defines the same document shapes as typed
records with lossless JSON round-trips, so the converter and the REST server
operate on realistic inputs.

Rates in these documents are in **bits per second** (as in the real API);
the converter converts to bytes/s for the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Optional


class RefApiError(Exception):
    """Malformed or inconsistent reference documents."""


@dataclass(frozen=True)
class AdapterDoc:
    """One network adapter of a node: where it plugs into the fabric."""

    interface: str
    rate: float  # bits/s
    switch: str  # uid of the network equipment this NIC connects to
    switch_port: str = ""

    def validate(self) -> None:
        if self.rate <= 0:
            raise RefApiError(f"adapter {self.interface!r}: rate must be positive")


@dataclass(frozen=True)
class NodeDoc:
    """One compute node."""

    uid: str  # FQDN, e.g. "sagittaire-1.lyon.grid5000.fr"
    cluster: str
    site: str
    adapters: tuple[AdapterDoc, ...] = ()

    def validate(self) -> None:
        if not self.adapters:
            raise RefApiError(f"node {self.uid!r} has no network adapter")
        for adapter in self.adapters:
            adapter.validate()

    @property
    def primary_adapter(self) -> AdapterDoc:
        return self.adapters[0]


@dataclass(frozen=True)
class ClusterDoc:
    """One homogeneous cluster of a site."""

    uid: str
    site: str
    model: str = ""
    nodes: tuple[NodeDoc, ...] = ()

    def validate(self) -> None:
        if not self.nodes:
            raise RefApiError(f"cluster {self.uid!r} has no nodes")
        for node in self.nodes:
            node.validate()


@dataclass(frozen=True)
class PortDoc:
    """One port of a network equipment linecard: what is attached to it."""

    uid: str  # uid of the attached element (node FQDN or equipment uid)
    kind: str  # "node" | "switch" | "router" | "backbone"
    rate: float  # bits/s


@dataclass(frozen=True)
class LinecardDoc:
    """A linecard: a group of ports with an aggregate rate limit."""

    rate: float  # bits/s aggregate capacity of the card
    ports: tuple[PortDoc, ...] = ()


@dataclass(frozen=True)
class EquipmentDoc:
    """A switch or router of a site."""

    uid: str
    site: str
    kind: str  # "switch" | "router"
    backplane_bps: float = 0.0  # 0 = not documented
    linecards: tuple[LinecardDoc, ...] = ()

    def validate(self) -> None:
        if self.kind not in ("switch", "router"):
            raise RefApiError(f"equipment {self.uid!r}: bad kind {self.kind!r}")

    def ports(self) -> list[PortDoc]:
        return [port for card in self.linecards for port in card.ports]


@dataclass(frozen=True)
class SiteDoc:
    """One Grid'5000 site."""

    uid: str
    clusters: tuple[ClusterDoc, ...] = ()
    network_equipments: tuple[EquipmentDoc, ...] = ()
    #: uid of the equipment acting as the site's gateway/router.
    gateway: str = ""

    def validate(self) -> None:
        for cluster in self.clusters:
            cluster.validate()
        for equipment in self.network_equipments:
            equipment.validate()
        uids = [e.uid for e in self.network_equipments]
        if self.gateway and self.gateway not in uids:
            raise RefApiError(f"site {self.uid!r}: gateway {self.gateway!r} unknown")

    def equipment(self, uid: str) -> EquipmentDoc:
        for eq in self.network_equipments:
            if eq.uid == uid:
                return eq
        raise RefApiError(f"site {self.uid!r}: no equipment {uid!r}")

    def nodes(self) -> list[NodeDoc]:
        return [node for cluster in self.clusters for node in cluster.nodes]


@dataclass(frozen=True)
class BackboneLinkDoc:
    """A RENATER backbone adjacency between two site gateways.

    The real API lists backbone links as *directed pairs*; we keep one record
    per adjacency and the converter emits a full-duplex link, which is
    equivalent (see DESIGN.md §3)."""

    uid: str
    endpoints: tuple[str, str]  # gateway equipment uids
    rate: float  # bits/s per direction


@dataclass(frozen=True)
class Grid5000Reference:
    """A full Reference-API snapshot.

    ``version`` records which flavour of the network description this is:
    ``"stable"`` (coarse topology: nodes attach to the site gateway) or
    ``"dev"`` (detailed: aggregation switches and uplinks present — only
    available for Lille, Lyon and Nancy at the time of the paper, §V-A).
    """

    version: str
    sites: tuple[SiteDoc, ...] = ()
    backbone: tuple[BackboneLinkDoc, ...] = ()

    def validate(self) -> None:
        if self.version not in ("stable", "dev"):
            raise RefApiError(f"bad reference version {self.version!r}")
        for site in self.sites:
            site.validate()
        gateway_uids = {s.gateway for s in self.sites}
        for bb in self.backbone:
            for end in bb.endpoints:
                if end not in gateway_uids:
                    raise RefApiError(f"backbone {bb.uid!r}: unknown endpoint {end!r}")

    def site(self, uid: str) -> SiteDoc:
        for site in self.sites:
            if site.uid == uid:
                return site
        raise RefApiError(f"no site {uid!r}")

    def all_nodes(self) -> list[NodeDoc]:
        return [node for site in self.sites for node in site.nodes()]

    # -- JSON round-trip -----------------------------------------------------

    def to_json(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_json(data: dict) -> "Grid5000Reference":
        def adapters(items):
            return tuple(AdapterDoc(**a) for a in items)

        def nodes(items):
            return tuple(
                NodeDoc(uid=n["uid"], cluster=n["cluster"], site=n["site"],
                        adapters=adapters(n["adapters"]))
                for n in items
            )

        def clusters(items):
            return tuple(
                ClusterDoc(uid=c["uid"], site=c["site"], model=c.get("model", ""),
                           nodes=nodes(c["nodes"]))
                for c in items
            )

        def equipments(items):
            return tuple(
                EquipmentDoc(
                    uid=e["uid"], site=e["site"], kind=e["kind"],
                    backplane_bps=e.get("backplane_bps", 0.0),
                    linecards=tuple(
                        LinecardDoc(
                            rate=lc["rate"],
                            ports=tuple(PortDoc(**p) for p in lc["ports"]),
                        )
                        for lc in e.get("linecards", ())
                    ),
                )
                for e in items
            )

        sites = tuple(
            SiteDoc(
                uid=s["uid"],
                clusters=clusters(s["clusters"]),
                network_equipments=equipments(s["network_equipments"]),
                gateway=s.get("gateway", ""),
            )
            for s in data["sites"]
        )
        backbone = tuple(
            BackboneLinkDoc(uid=b["uid"], endpoints=tuple(b["endpoints"]),
                            rate=b["rate"])
            for b in data.get("backbone", ())
        )
        ref = Grid5000Reference(version=data["version"], sites=sites, backbone=backbone)
        ref.validate()
        return ref
