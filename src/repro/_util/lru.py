"""One bounded-LRU implementation for every cache in the codebase.

Both the kernel's route cache (:class:`repro.simgrid.platform.RouteCache`)
and the serving layer's forecast cache derive from this: a dict in
insertion order, recency refreshed on hit, oldest entry evicted on
overflow, with hit/miss/eviction counters for benches and tests.

``maxsize=0`` builds a *disabled* cache: every lookup is a counted miss
and ``put`` is a no-op, so callers can turn caching off without changing
their control flow or losing counter consistency.
"""

from __future__ import annotations

from typing import Optional

#: Module-level miss sentinel: distinguishes "key absent" from a cached
#: ``None`` value, so storing ``None`` counts as a hit instead of silently
#: recomputing and inflating the miss counter.
_MISS = object()


class BoundedLRU:
    """A bounded least-recently-used mapping with observability counters."""

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_entries")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 0:
            raise ValueError(f"cache size must be >= 0, got {maxsize}")
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: dict = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key, default: Optional[object] = None) -> Optional[object]:
        """The cached value, or ``default`` on a miss.

        Any stored value — including ``None`` — is a counted hit; only an
        absent key is a miss.  Callers that cache ``None`` legitimately can
        pass their own sentinel as ``default`` to tell the two apart.
        """
        entry = self._entries.get(key, _MISS)
        if entry is _MISS:
            self.misses += 1
            return default
        # refresh recency (dicts iterate in insertion order)
        del self._entries[key]
        self._entries[key] = entry
        self.hits += 1
        return entry

    def put(self, key, value) -> None:
        if self.maxsize == 0:
            return
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.maxsize:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1
        self._entries[key] = value

    def clear(self) -> None:
        self._entries.clear()

    def info(self) -> dict:
        """Counters snapshot: hits, misses, evictions, size, maxsize."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
            "maxsize": self.maxsize,
        }
