"""Small shared utilities: seeded RNG derivation and descriptive statistics."""

from repro._util.rng import derive_seed, rng_for
from repro._util.stats import BoxStats, box_stats, median, quantile

__all__ = ["derive_seed", "rng_for", "BoxStats", "box_stats", "median", "quantile"]
