"""Deterministic RNG derivation.

Every stochastic component of the reproduction (testbed noise, random node
draws, cross-traffic) derives its generator from a root seed plus a string
label, so experiments are reproducible bit-for-bit while independent
components stay decorrelated.

Two derivation layers coexist:

- :func:`derive_seed` / :func:`rng_for` — the historical SHA-256 label
  derivation.  Its values are **frozen**: the figure goldens
  (``tests/experiments/goldens/``) pin experiment results produced with these
  exact seeds, so the mapping must never change.
- :func:`seed_sequence` / :func:`spawn_seeds` / :func:`spawn_rngs` — child
  streams via :meth:`numpy.random.SeedSequence.spawn`.  This is the correct
  way to hand out *sibling* streams to parallel workers: spawned children are
  guaranteed-independent by construction, whereas seeding workers with
  ``root``, ``root + 1``, … (or any ad-hoc arithmetic on integer seeds) risks
  correlated streams.  All new fan-out code (the scenario workload
  generators, the parallel campaign executor) derives per-worker streams
  through this API.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root: int, *labels: object) -> int:
    """Derive a child seed from ``root`` and a sequence of labels.

    Uses SHA-256 over the root and the ``repr`` of each label, so any hashable
    or printable object (strings, ints, tuples) can participate.  The result
    fits in 63 bits (always non-negative).
    """
    h = hashlib.sha256()
    h.update(str(int(root)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest()[:8], "big") & (2**63 - 1)


def rng_for(root: int, *labels: object) -> np.random.Generator:
    """A :class:`numpy.random.Generator` seeded from ``root`` and ``labels``."""
    return np.random.default_rng(derive_seed(root, *labels))


def seed_sequence(root: int, *labels: object) -> np.random.SeedSequence:
    """The :class:`numpy.random.SeedSequence` at ``root`` + ``labels``.

    The label path is folded into the entropy through :func:`derive_seed`, so
    the sequence is reproducible and label-decorrelated; children must be
    created through :meth:`~numpy.random.SeedSequence.spawn` (or the
    :func:`spawn_seeds` / :func:`spawn_rngs` helpers below).
    """
    return np.random.SeedSequence(derive_seed(root, *labels))


def spawn_seeds(root: int, n: int, *labels: object) -> list[int]:
    """``n`` independent 63-bit child seeds via ``SeedSequence.spawn``.

    Deterministic in ``(root, labels, n)``: the first ``k`` children of a
    larger spawn equal the children of a smaller one, so growing a worker
    pool never reshuffles the streams already handed out.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seeds")
    children = seed_sequence(root, *labels).spawn(n)
    return [int(child.generate_state(1, np.uint64)[0] >> 1) for child in children]


def spawn_rngs(root: int, n: int, *labels: object) -> list[np.random.Generator]:
    """``n`` independent generators via ``SeedSequence.spawn`` (see
    :func:`spawn_seeds`)."""
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    children = seed_sequence(root, *labels).spawn(n)
    return [np.random.default_rng(child) for child in children]
