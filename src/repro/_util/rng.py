"""Deterministic RNG derivation.

Every stochastic component of the reproduction (testbed noise, random node
draws, cross-traffic) derives its generator from a root seed plus a string
label, so experiments are reproducible bit-for-bit while independent
components stay decorrelated.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root: int, *labels: object) -> int:
    """Derive a child seed from ``root`` and a sequence of labels.

    Uses SHA-256 over the root and the ``repr`` of each label, so any hashable
    or printable object (strings, ints, tuples) can participate.  The result
    fits in 63 bits (always non-negative).
    """
    h = hashlib.sha256()
    h.update(str(int(root)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest()[:8], "big") & (2**63 - 1)


def rng_for(root: int, *labels: object) -> np.random.Generator:
    """A :class:`numpy.random.Generator` seeded from ``root`` and ``labels``."""
    return np.random.default_rng(derive_seed(root, *labels))
