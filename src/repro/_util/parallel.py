"""Shared process-pool helpers."""

from __future__ import annotations


def pool_chunk_size(n_items: int, workers: int, per_worker_waves: int = 4) -> int:
    """A map chunksize giving each worker ~``per_worker_waves`` chunks —
    small enough to balance uneven task costs, large enough to amortize
    per-task process round-trips."""
    if n_items <= 0 or workers <= 1:
        return 1
    return max(1, n_items // (workers * per_worker_waves))
