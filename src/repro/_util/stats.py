"""Descriptive statistics used by the analysis layer and the benches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import math


def median(values: Sequence[float]) -> float:
    """Median of ``values``; raises :class:`ValueError` when empty."""
    if not values:
        raise ValueError("median of empty sequence")
    data = sorted(values)
    n = len(data)
    mid = n // 2
    if n % 2:
        return float(data[mid])
    return (data[mid - 1] + data[mid]) / 2.0


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (same convention as numpy's default)."""
    if not values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile fraction out of range: {q}")
    data = sorted(values)
    if len(data) == 1:
        return float(data[0])
    pos = q * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation (ddof=0), 0.0 for singletons."""
    if not values:
        raise ValueError("stddev of empty sequence")
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(var)


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary used to render the paper's box plots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    count: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def box_stats(values: Sequence[float]) -> BoxStats:
    """Five-number summary of ``values``."""
    if not values:
        raise ValueError("box_stats of empty sequence")
    return BoxStats(
        minimum=float(min(values)),
        q1=quantile(values, 0.25),
        median=median(values),
        q3=quantile(values, 0.75),
        maximum=float(max(values)),
        count=len(values),
    )
