"""Workflow forecasting (§VI future work, implemented).

Forecasts a small scatter/compute/gather workflow across two Grid'5000
sites: input data on a Lyon node is scattered to three Nancy workers, each
computes, and results return to Lyon.  The forecast reports per-task start
and finish times plus the makespan — "not only network transfers but also
full workflows involving computations and network transfers".

Run:  python examples/workflow_forecast.py
"""

from repro import Pilgrim
from repro.simgrid.tasks import Task, TaskGraph

LYON = "sagittaire-1.lyon.grid5000.fr"
WORKERS = [f"graphene-{i}.nancy.grid5000.fr" for i in (1, 2, 3)]


def main() -> None:
    pilgrim = Pilgrim.with_grid5000(include_cabinets=False)

    graph = TaskGraph()
    graph.add_task(Task("split", flops=2e9, output_bytes=2e9), LYON)
    for i, worker in enumerate(WORKERS, start=1):
        graph.add_task(Task(f"work-{i}", flops=5e10, output_bytes=2e8), worker)
        graph.add_edge("split", f"work-{i}")
    graph.add_task(Task("gather", flops=1e9), LYON)
    for i in range(1, len(WORKERS) + 1):
        graph.add_edge(f"work-{i}", "gather")

    forecast = pilgrim.workflows.predict_workflow("g5k_test", graph)

    print("workflow forecast (scatter 2 GB -> 3 Nancy workers -> gather):")
    for name, (start, finish) in sorted(forecast.task_times.items(),
                                        key=lambda kv: kv[1][0]):
        print(f"  {name:8s} start {start:8.2f} s   finish {finish:8.2f} s")
    print(f"\n  makespan: {forecast.makespan:.2f} s")

    print("\ndata-arrival times (edge transfers):")
    for (producer, consumer), t in sorted(forecast.transfer_times.items(),
                                          key=lambda kv: kv[1]):
        print(f"  {producer:8s} -> {consumer:8s} arrives at {t:8.2f} s")


if __name__ == "__main__":
    main()
