"""A miniature §V validation run: predictions vs "actual" transfers.

Runs the paper's experimental protocol on the synthetic testbed for one
configuration (graphene, 10 sources x 10 destinations) over a reduced size
sweep, and renders the error figure the way the paper's plots read: error
boxes per transfer size, measured durations on the right.

Run:  python examples/grid_experiment.py            (about 20 s)
"""

from repro.analysis.asciiplot import render_error_plot
from repro.experiments.environment import forecast_service, testbed
from repro.experiments.figures import FIGURES
from repro.experiments.runner import run_experiment

SIZES = (1e5, 1.29e6, 1.67e7, 2.15e8, 2.78e9)
REPS = 3


def main() -> None:
    print("building platforms and testbed (cached after first use)...")
    forecast = forecast_service()
    network = testbed()

    for fig_id in ("fig4", "fig7"):
        figure = FIGURES[fig_id]
        print(f"\nrunning {figure.title} "
              f"({REPS} repetitions x {len(SIZES)} sizes)...")
        series = run_experiment(
            figure.spec, forecast, network,
            seed=42, repetitions=REPS, sizes=SIZES,
        )
        print(render_error_plot(series))
        failures = figure.verify(series)
        print("shape checks:", "PASS" if not failures else failures)


if __name__ == "__main__":
    main()
