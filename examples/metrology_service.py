"""The Pilgrim metrology service (§IV-C1).

Plays the role of a Ganglia deployment recording the power consumption of
``sagittaire-1`` into an RRD, then serves it over HTTP and issues the
paper's example request::

    GET /pilgrim/rrd/ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd/
        ?begin=...&end=...

Run:  python examples/metrology_service.py
"""

import math

from repro.core.framework import Pilgrim
from repro.core.rest.client import RestClient
from repro.metrology.collectors import GangliaCollector, MetricKey


def main() -> None:
    pilgrim = Pilgrim()  # metrology only; no platforms needed

    # a synthetic PDU: ~168.9 W with a slow sinusoidal drift, 15 s period
    collector = GangliaCollector(pilgrim.registry, period=15.0)
    key = MetricKey("ganglia", "Lyon", "sagittaire-1.lyon.grid5000.fr", "pdu")
    collector.register(
        key, lambda t: 168.9 + 0.8 * math.sin(t / 300.0), kind="GAUGE"
    )
    cycles = collector.collect_until(3600.0)  # one hour of samples
    print(f"collected {cycles} samples into {key.path()}")

    with pilgrim.serve() as server:
        client = RestClient(server.url)
        print(f"\nGET {server.url}/pilgrim/rrd/ganglia/Lyon/"
              f"sagittaire-1.lyon.grid5000.fr/pdu.rrd/?begin=3000&end=3060")
        rows = client.fetch_metric(
            "ganglia", "Lyon", "sagittaire-1.lyon.grid5000.fr", "pdu",
            begin=3000, end=3060,
        )
        # the paper's answer format: [[timestamp, value], ...]
        for timestamp, value in rows:
            print(f"  [{timestamp:.0f}, {value:.5f}]")

        info = client.get(
            "/pilgrim/rrd/ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd/info"
        )
        print("\narchives in this RRD (multiple precisions, §IV-C1):")
        for rra in info["rras"]:
            print(f"  {rra['cf']:8s} resolution {rra['resolution']:6.0f}s  "
                  f"retention {rra['retention'] / 3600:5.1f}h")


if __name__ == "__main__":
    main()
