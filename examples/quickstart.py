"""Quickstart: predict completion times of concurrent TCP transfers.

Reproduces the paper's §IV-C2 example request: two concurrent 500 MB
transfers from ``capricorne-36`` in Lyon — one to ``griffon-50`` in Nancy
(crossing the RENATER backbone), one to ``capricorne-1`` next door.  Both
share the sender's gigabit NIC, and the prediction accounts for it.

Run:  python examples/quickstart.py
"""

from repro import Pilgrim, TransferSpec


def main() -> None:
    print("building Pilgrim with the Grid'5000 platform descriptions...")
    pilgrim = Pilgrim.with_grid5000()

    transfers = [
        TransferSpec("capricorne-36.lyon.grid5000.fr",
                     "griffon-50.nancy.grid5000.fr", "500MB"),
        TransferSpec("capricorne-36.lyon.grid5000.fr",
                     "capricorne-1.lyon.grid5000.fr", "500MB"),
    ]
    forecasts = pilgrim.predict_transfers("g5k_test", transfers)

    print("\npredicted completion times (transfers start simultaneously):")
    for fc in forecasts:
        print(f"  {fc.src:40s} -> {fc.dst:40s} "
              f"{fc.size / 1e6:6.0f} MB   {fc.duration:8.3f} s")

    # the same transfers alone, for contrast: contention matters
    print("\nthe same transfers, each running alone:")
    for spec in transfers:
        fc = pilgrim.predict_transfers("g5k_test", [spec])[0]
        print(f"  {fc.src:40s} -> {fc.dst:40s} "
              f"{fc.size / 1e6:6.0f} MB   {fc.duration:8.3f} s")


if __name__ == "__main__":
    main()
