"""The paper's motivating scheduling question (§I):

  "is it relevant to move 1TB of data to a more powerful cluster in order
   to decrease the computing time of 2 hours?  If the data transfer will
   take more than 2 hours, the answer is no."

We model the job as a two-node workflow — move the input data, then
compute — and compare staying on the slow cluster against moving to the
fast one, using the workflow forecast service (§VI).  A second round uses
the hypothesis planner to pick the best destination among several.

Run:  python examples/scheduling_decision.py
"""

from repro.core.forecast import NetworkForecastService, TransferSpec
from repro.core.planner import Hypothesis, TransferPlanner
from repro.core.workflow import WorkflowForecastService
from repro.simgrid.builder import build_two_level_grid
from repro.simgrid.models import LV08
from repro.simgrid.tasks import Task, TaskGraph

TB = 1e12
COMPUTE_FLOPS = 7.2e13  # 2 hours on the slow site's 10 Gf nodes


def main() -> None:
    platform = build_two_level_grid(
        {"slowsite": 4, "fastsite": 4},
        backbone_bandwidth="10Gbps", backbone_latency="2.25ms",
    )
    for i in range(1, 5):
        platform.host(f"slowsite-{i}").speed = 1e10   # 10 Gf
        platform.host(f"fastsite-{i}").speed = 4e10   # 4x faster
    forecast = NetworkForecastService({"grid": platform}, model=LV08())
    workflows = WorkflowForecastService(forecast)

    def plan(move_to: str) -> float:
        graph = TaskGraph()
        graph.add_task(Task("data", flops=0.0, output_bytes=TB), "slowsite-1")
        graph.add_task(Task("compute", flops=COMPUTE_FLOPS), move_to)
        graph.add_edge("data", "compute")
        return workflows.predict_workflow("grid", graph).makespan

    stay = plan("slowsite-1")
    move = plan("fastsite-1")
    print(f"input data: 1 TB on slowsite-1; job: {COMPUTE_FLOPS:.1e} flops")
    print(f"  stay on slow cluster : {stay / 3600:6.2f} h "
          f"(no transfer, slow compute)")
    print(f"  move to fast cluster : {move / 3600:6.2f} h "
          f"(1 TB over the backbone, then 4x compute)")
    print(f"  decision             : {'MOVE' if move < stay else 'STAY'}")

    # §VI: given n transfer hypotheses, select the fastest — here, which
    # fast node should receive the data if several jobs run concurrently
    planner = TransferPlanner(forecast, "grid")
    hypotheses = [
        Hypothesis("all-to-fast-1", (
            TransferSpec("slowsite-1", "fastsite-1", TB / 2),
            TransferSpec("slowsite-2", "fastsite-1", TB / 2),
        )),
        Hypothesis("spread", (
            TransferSpec("slowsite-1", "fastsite-1", TB / 2),
            TransferSpec("slowsite-2", "fastsite-2", TB / 2),
        )),
    ]
    result = planner.select_fastest(hypotheses)
    print("\nplacing two 0.5 TB input sets on the fast site:")
    for score in result.scores:
        note = "" if score.simulated else " (pruned, lower bound)"
        print(f"  {score.name:15s} makespan {score.makespan / 60:7.1f} min{note}")
    print(f"  best: {result.best}")


if __name__ == "__main__":
    main()
