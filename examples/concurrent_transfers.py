"""PNFS over HTTP: the REST deployment of §IV-C.

Starts a local Pilgrim server, then issues the exact style of request the
paper shows with curl::

    GET /pilgrim/predict_transfers/g5k_test?transfer=src,dst,size&transfer=...

and prints how predictions change as concurrency on a destination NIC grows
— the contention-awareness that motivates simulation-based forecasting.

Run:  python examples/concurrent_transfers.py
"""

from repro import Pilgrim
from repro.core.rest.client import RestClient

DEST = "graphene-1.nancy.grid5000.fr"
SOURCES = [f"graphene-{i}.nancy.grid5000.fr" for i in range(2, 10)]
SIZE = 5e8


def main() -> None:
    pilgrim = Pilgrim.with_grid5000(include_cabinets=False)
    with pilgrim.serve() as server:
        print(f"Pilgrim serving at {server.url}")
        client = RestClient(server.url)

        print(f"\n{SIZE / 1e6:.0f} MB transfers into {DEST}:")
        print(f"{'concurrent flows':>18s}  {'per-flow prediction':>20s}")
        for n in (1, 2, 4, 8):
            transfers = [(src, DEST, SIZE) for src in SOURCES[:n]]
            answers = client.predict_transfers("g5k_test", transfers)
            durations = sorted(a["duration"] for a in answers)
            print(f"{n:>18d}  {durations[-1]:>18.3f} s")

        print("\nraw JSON answer for two concurrent transfers "
              "(the paper's §IV-C2 format):")
        answers = client.predict_transfers(
            "g5k_test", [(SOURCES[0], DEST, SIZE), (SOURCES[1], DEST, SIZE)]
        )
        for answer in answers:
            print(f"  {answer}")


if __name__ == "__main__":
    main()
