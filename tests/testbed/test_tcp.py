"""TCP window dynamics: slow start, CUBIC, closed forms."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.testbed.tcp import (
    TcpFlowState,
    TcpParams,
    TcpPhase,
    slow_start_bytes,
    slow_start_rounds_for,
)


class TestParams:
    def test_paper_defaults(self):
        params = TcpParams()
        assert params.max_window_bytes == 4194304.0  # the paper's 4 MiB tuning
        assert params.initial_window_bytes == pytest.approx(3 * 1448.0)

    def test_initial_state(self):
        state = TcpFlowState()
        assert state.phase is TcpPhase.SLOW_START
        assert state.cwnd == pytest.approx(3 * 1448.0)
        assert math.isinf(state.ssthresh)


class TestSlowStart:
    def test_growth_factor_per_round(self):
        state = TcpFlowState()
        w0 = state.cwnd
        state.on_round(rtt=0.01)
        assert state.cwnd == pytest.approx(w0 * 1.5)

    def test_window_capped_at_maximum(self):
        state = TcpFlowState()
        for _ in range(100):
            state.on_round(rtt=0.01)
        assert state.cwnd == pytest.approx(state.params.max_window_bytes)

    def test_rejects_nonpositive_rtt(self):
        state = TcpFlowState()
        with pytest.raises(ValueError):
            state.on_round(rtt=0.0)

    def test_ssthresh_transition_to_avoidance(self):
        state = TcpFlowState()
        state.ssthresh = 10_000.0
        for _ in range(10):
            state.on_round(rtt=0.01)
            if state.phase is TcpPhase.CONGESTION_AVOIDANCE:
                break
        assert state.phase is TcpPhase.CONGESTION_AVOIDANCE


class TestLoss:
    def test_multiplicative_decrease(self):
        state = TcpFlowState()
        for _ in range(8):
            state.on_round(rtt=0.01)
        before = state.cwnd
        state.on_loss()
        assert state.cwnd == pytest.approx(before * 0.7)
        assert state.phase is TcpPhase.CONGESTION_AVOIDANCE
        assert state.w_max == pytest.approx(before)

    def test_floor_at_one_mss(self):
        state = TcpFlowState()
        state.cwnd = 1000.0
        state.on_loss()
        assert state.cwnd >= state.params.mss


class TestCubic:
    def test_k_formula(self):
        state = TcpFlowState()
        state.w_max = 100 * 1448.0
        expected = ((100 * 0.3) / 0.4) ** (1 / 3)
        assert state.cubic_k() == pytest.approx(expected)

    def test_window_regains_wmax_at_k(self):
        state = TcpFlowState()
        for _ in range(8):
            state.on_round(rtt=0.01)
        state.on_loss()
        k = state.cubic_k()
        assert state.cubic_window(k) == pytest.approx(state.w_max, rel=1e-9)

    def test_concave_then_convex_growth(self):
        state = TcpFlowState()
        state.w_max = 200 * 1448.0
        k = state.cubic_k()
        w_before = state.cubic_window(k * 0.5)
        w_at_k = state.cubic_window(k)
        w_after = state.cubic_window(k * 1.5)
        assert w_before < w_at_k < w_after

    def test_avoidance_rounds_advance_cubic_clock(self):
        state = TcpFlowState()
        for _ in range(8):
            state.on_round(rtt=0.01)
        state.on_loss()
        w0 = state.cwnd
        for _ in range(50):
            state.on_round(rtt=0.01)
        assert state.cwnd > w0

    @given(st.floats(min_value=1448.0, max_value=4194304.0),
           st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=200, deadline=None)
    def test_cubic_window_at_least_one_mss(self, w_max, t):
        state = TcpFlowState()
        state.w_max = w_max
        assert state.cubic_window(t) >= state.params.mss

    def test_monotone_growth_between_losses(self):
        state = TcpFlowState()
        state.w_max = 500 * 1448.0
        state.phase = TcpPhase.CONGESTION_AVOIDANCE
        state.t_since_loss = 0.0
        state.cwnd = state.w_max * 0.7
        windows = []
        for _ in range(200):
            state.on_round(rtt=0.02)
            windows.append(state.cwnd)
        assert windows == sorted(windows)


class TestClosedForms:
    def test_slow_start_bytes_geometric_series(self):
        params = TcpParams()
        iw = params.initial_window_bytes
        g = params.slow_start_growth
        assert slow_start_bytes(params, 0) == 0.0
        assert slow_start_bytes(params, 1) == pytest.approx(iw)
        assert slow_start_bytes(params, 3) == pytest.approx(iw * (1 + g + g * g))

    def test_rounds_for_inverts_bytes(self):
        params = TcpParams()
        for rounds in (1, 3, 7, 12):
            size = slow_start_bytes(params, rounds)
            assert slow_start_rounds_for(params, size) == rounds

    @given(st.floats(min_value=1.0, max_value=1e9))
    @settings(max_examples=100, deadline=None)
    def test_rounds_for_is_sufficient(self, size):
        params = TcpParams()
        rounds = slow_start_rounds_for(params, size)
        assert slow_start_bytes(params, rounds) >= size * (1 - 1e-9)
        if rounds > 0:
            assert slow_start_bytes(params, rounds - 1) < size

    def test_rejects_negative_rounds(self):
        with pytest.raises(ValueError):
            slow_start_bytes(TcpParams(), -1)

    def test_window_rate(self):
        state = TcpFlowState()
        assert state.window_rate(0.01) == pytest.approx(state.cwnd / 0.01)

    def test_max_rate(self):
        state = TcpFlowState()
        assert state.max_rate(0.016) == pytest.approx(4194304.0 / 0.016)
