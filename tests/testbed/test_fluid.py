"""Fluid engine: topology rules, water-filling, flow lifecycle."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.testbed.fluid import (
    DuplexLink,
    FluidSimulator,
    Hop,
    TestbedError,
    TestbedNetwork,
    water_fill,
    _water_level,
)
from repro.testbed.profiles import DEFAULT, HostProfile


def two_node_net(capacity=1.25e8, latency=5e-5, efficiency=1.0):
    net = TestbedNetwork()
    quiet = HostProfile(name="quiet", startup_median=0.0, startup_sigma=0.0,
                        stack_latency=0.0)
    net.add_node("a", quiet)
    net.add_node("b", quiet)
    net.add_node("c", quiet)
    la = net.add_link("la", capacity, latency, efficiency)
    lb = net.add_link("lb", capacity, latency, efficiency)
    lc = net.add_link("lc", capacity, latency, efficiency)
    links = {"a": la, "b": lb, "c": lc}
    for x in "abc":
        for y in "abc":
            if x != y:
                net.add_route(x, y, [Hop(links[x], 0), Hop(links[y], 1)],
                              symmetrical=False)
    return net


class TestTopology:
    def test_duplicate_node_rejected(self):
        net = TestbedNetwork()
        net.add_node("a")
        with pytest.raises(TestbedError):
            net.add_node("a")

    def test_link_validation(self):
        with pytest.raises(TestbedError):
            DuplexLink("l", capacity=0.0, latency=1e-5)
        with pytest.raises(TestbedError):
            DuplexLink("l", capacity=1e8, latency=-1.0)
        with pytest.raises(TestbedError):
            DuplexLink("l", capacity=1e8, latency=1e-5, efficiency=1.5)

    def test_hop_direction_validation(self):
        link = DuplexLink("l", 1e8, 1e-5)
        with pytest.raises(TestbedError):
            Hop(link, 2)

    def test_symmetrical_route_reverses_hops(self):
        net = TestbedNetwork()
        net.add_node("a")
        net.add_node("b")
        link = net.add_link("l", 1e8, 1e-5)
        net.add_route("a", "b", [Hop(link, 0)])
        back = net.route("b", "a")
        assert back == [Hop(link, 1)]

    def test_missing_route_without_resolver_raises(self):
        net = TestbedNetwork()
        net.add_node("a")
        net.add_node("b")
        with pytest.raises(TestbedError, match="no route"):
            net.route("a", "b")

    def test_resolver_results_are_cached(self):
        net = TestbedNetwork()
        net.add_node("a")
        net.add_node("b")
        link = net.add_link("l", 1e8, 1e-5)
        calls = []

        def resolver(src, dst):
            calls.append((src, dst))
            return [Hop(link, 0)]

        net.set_route_resolver(resolver)
        net.route("a", "b")
        net.route("a", "b")
        assert calls == [("a", "b")]

    def test_rtt_includes_stacks_and_path(self):
        net = TestbedNetwork()
        profile = HostProfile(name="p", startup_median=0.0, startup_sigma=0.0,
                              stack_latency=1e-5)
        net.add_node("a", profile)
        net.add_node("b", profile)
        link = net.add_link("l", 1e8, 1e-4)
        net.add_route("a", "b", [Hop(link, 0)])
        assert net.rtt("a", "b") == pytest.approx(2e-4 + 2e-5)


class TestWaterLevel:
    def test_equal_weights(self):
        theta = _water_level([100.0, 100.0], [1.0, 1.0], 60.0)
        assert theta == pytest.approx(30.0)

    def test_demand_limited_flow_frees_capacity(self):
        theta = _water_level([10.0, 1000.0], [1.0, 1.0], 60.0)
        # first flow takes its 10, second gets theta = 50
        assert theta == pytest.approx(50.0)

    def test_all_demands_fit(self):
        assert _water_level([10.0, 10.0], [1.0, 1.0], 100.0) == math.inf

    def test_weighted_level(self):
        # rates = theta * w: with w = (1, 3) and cap 80: theta*4 = 80
        theta = _water_level([1e9, 1e9], [1.0, 3.0], 80.0)
        assert theta == pytest.approx(20.0)


class TestWaterFill:
    def test_single_bottleneck_equal_split(self):
        rates = water_fill(
            demands=[1e9, 1e9], weights=[1.0, 1.0],
            routes=[["l"], ["l"]], capacities={"l": 100.0},
        )
        assert rates == pytest.approx([50.0, 50.0])

    def test_rtt_weighted_split(self):
        rates = water_fill(
            demands=[1e9, 1e9], weights=[2.0, 1.0],
            routes=[["l"], ["l"]], capacities={"l": 90.0},
        )
        assert rates == pytest.approx([60.0, 30.0])

    def test_demand_cap_respected(self):
        rates = water_fill(
            demands=[10.0, 1e9], weights=[1.0, 1.0],
            routes=[["l"], ["l"]], capacities={"l": 100.0},
        )
        assert rates == pytest.approx([10.0, 90.0])

    def test_uncongested_flows_get_demand(self):
        rates = water_fill(
            demands=[10.0, 20.0], weights=[1.0, 1.0],
            routes=[["l"], ["m"]], capacities={"l": 100.0, "m": 100.0},
        )
        assert rates == pytest.approx([10.0, 20.0])

    def test_multi_bottleneck_progressive(self):
        # flow0: l only; flow1: l+m; flow2: m only; l=100, m=40
        rates = water_fill(
            demands=[1e9] * 3, weights=[1.0] * 3,
            routes=[["l"], ["l", "m"], ["m"]],
            capacities={"l": 100.0, "m": 40.0},
        )
        assert rates[1] == pytest.approx(20.0)
        assert rates[2] == pytest.approx(20.0)
        assert rates[0] == pytest.approx(80.0)

    @given(
        st.integers(1, 8).flatmap(
            lambda n: st.tuples(
                st.lists(st.floats(1.0, 1e6), min_size=n, max_size=n),
                st.lists(st.floats(0.1, 10.0), min_size=n, max_size=n),
                st.lists(st.lists(st.sampled_from(["l1", "l2", "l3"]),
                                  min_size=1, max_size=3, unique=True),
                         min_size=n, max_size=n),
            )
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_feasibility_and_demand_caps(self, case):
        demands, weights, routes = case
        capacities = {"l1": 100.0, "l2": 50.0, "l3": 200.0}
        rates = water_fill(demands, weights, routes, capacities)
        for rate, demand in zip(rates, demands):
            assert 0.0 <= rate <= demand * (1 + 1e-9)
        usage = {key: 0.0 for key in capacities}
        for rate, route in zip(rates, routes):
            for key in route:
                usage[key] += rate
        for key in capacities:
            assert usage[key] <= capacities[key] * (1 + 1e-6)


class TestFlowLifecycle:
    def test_single_flow_rate_is_nic_capacity(self):
        net = two_node_net()
        sim = FluidSimulator(net, seed=1)
        flow = sim.submit("a", "b", 1e9)
        sim.run()
        transfer_time = flow.finish_time - flow.data_start
        assert transfer_time == pytest.approx(1e9 / 1.25e8, rel=0.05)

    def test_efficiency_reduces_goodput(self):
        net = two_node_net(efficiency=0.941)
        sim = FluidSimulator(net, seed=1)
        flow = sim.submit("a", "b", 1e9)
        sim.run()
        transfer_time = flow.finish_time - flow.data_start
        assert transfer_time == pytest.approx(1e9 / (0.941 * 1.25e8), rel=0.05)

    def test_two_flows_share_destination(self):
        net = two_node_net()
        sim = FluidSimulator(net, seed=1)
        f1 = sim.submit("a", "c", 1e9)
        f2 = sim.submit("b", "c", 1e9)
        sim.run()
        for flow in (f1, f2):
            assert flow.completion_time_raw == pytest.approx(16.0, rel=0.08)

    def test_small_transfer_pays_slow_start(self):
        # over a high-BDP path, a small transfer takes several RTTs
        net = TestbedNetwork()
        quiet = HostProfile(name="q", startup_median=0.0, startup_sigma=0.0,
                            stack_latency=0.0)
        net.add_node("a", quiet)
        net.add_node("b", quiet)
        link = net.add_link("wan", 1.25e9, 10e-3)  # RTT 20ms
        net.add_route("a", "b", [Hop(link, 0)])
        sim = FluidSimulator(net, seed=1)
        flow = sim.submit("a", "b", 1e5)
        sim.run()
        # 1e5 bytes needs ~5 slow-start rounds (growth 1.5): >= 4 RTTs total
        assert flow.completion_time_raw >= 4 * 0.02
        # and the fluid steady rate would have finished in well under 1 RTT
        assert 1e5 / 1.25e9 < 0.001

    def test_startup_overhead_included_and_seeded(self):
        net = two_node_net()
        slow_profile = HostProfile(name="slow", startup_median=0.5,
                                   startup_sigma=0.1)
        net.add_node("s", slow_profile)
        net.add_route("s", "b", net.route("a", "b"))
        sim1 = FluidSimulator(net, seed=7)
        f1 = sim1.submit("s", "b", 1e6)
        sim1.run()
        sim2 = FluidSimulator(net, seed=7)
        f2 = sim2.submit("s", "b", 1e6)
        sim2.run()
        assert f1.startup_overhead > 0.2
        assert f1.startup_overhead == pytest.approx(f2.startup_overhead)
        assert f1.completion_time_raw == pytest.approx(f2.completion_time_raw)

    def test_different_seeds_differ(self):
        net = two_node_net()
        slow_profile = HostProfile(name="slow", startup_median=0.5,
                                   startup_sigma=0.3)
        net.add_node("s", slow_profile)
        net.add_route("s", "b", net.route("a", "b"))
        overheads = set()
        for seed in range(5):
            sim = FluidSimulator(net, seed=seed)
            flow = sim.submit("s", "b", 1e6)
            sim.run()
            overheads.add(round(flow.startup_overhead, 9))
        assert len(overheads) > 1

    def test_staggered_submission(self):
        net = two_node_net()
        sim = FluidSimulator(net, seed=1)
        f1 = sim.submit("a", "b", 1e9, t=0.0)
        f2 = sim.submit("a", "b", 1e9, t=20.0)  # after f1 finished
        sim.run()
        assert f1.completion_time_raw == pytest.approx(8.0, rel=0.08)
        assert f2.completion_time_raw == pytest.approx(8.0, rel=0.08)

    def test_rejects_nonpositive_size(self):
        net = two_node_net()
        sim = FluidSimulator(net, seed=1)
        with pytest.raises(TestbedError):
            sim.submit("a", "b", 0.0)

    def test_window_cap_limits_high_bdp_path(self):
        net = TestbedNetwork()
        quiet = HostProfile(name="q", startup_median=0.0, startup_sigma=0.0,
                            stack_latency=0.0)
        net.add_node("a", quiet)
        net.add_node("b", quiet)
        link = net.add_link("wan", 1.25e9, 25e-3)  # RTT 50ms, BDP 62.5MB
        net.add_route("a", "b", [Hop(link, 0)])
        sim = FluidSimulator(net, seed=1)
        flow = sim.submit("a", "b", 1e9)
        sim.run()
        window_rate = 4194304.0 / 0.05
        transfer_time = flow.finish_time - flow.data_start
        assert transfer_time >= 1e9 / window_rate * 0.9

    def test_all_flows_complete(self):
        net = two_node_net()
        sim = FluidSimulator(net, seed=3)
        flows = [sim.submit("a", "b", 10 ** (4 + i)) for i in range(5)]
        sim.run()
        for flow in flows:
            assert flow.state == "done"
            assert not math.isnan(flow.finish_time)
