"""Testbed-level invariants over randomized workloads."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.testbed.fluid import FluidSimulator, Hop, TestbedNetwork
from repro.testbed.profiles import HostProfile

N_NODES = 5


def fresh_net():
    net = TestbedNetwork()
    profile = HostProfile(name="p", startup_median=0.001, startup_sigma=0.2)
    links = {}
    for i in range(N_NODES):
        name = f"n{i}"
        net.add_node(name, profile)
        links[name] = net.add_link(f"l-{name}", 1.25e8, 4e-5, efficiency=0.941)
    net.set_route_resolver(
        lambda src, dst: [Hop(links[src], 0), Hop(links[dst], 1)]
    )
    return net


@st.composite
def workloads(draw):
    n = draw(st.integers(1, 8))
    out = []
    for _ in range(n):
        src = draw(st.integers(0, N_NODES - 1))
        dst = draw(st.integers(0, N_NODES - 1).filter(lambda x: x != src))
        size = draw(st.floats(1e4, 3e9))
        out.append((f"n{src}", f"n{dst}", size))
    return out


class TestInvariants:
    @given(workloads(), st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_all_flows_finish_with_positive_durations(self, transfers, seed):
        sim = FluidSimulator(fresh_net(), seed=seed)
        flows = [sim.submit(s, d, z) for s, d, z in transfers]
        sim.run()
        for flow in flows:
            assert flow.state == "done"
            assert flow.completion_time_raw > 0
            assert math.isfinite(flow.finish_time)

    @given(workloads(), st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_no_flow_beats_its_goodput_bottleneck(self, transfers, seed):
        net = fresh_net()
        sim = FluidSimulator(net, seed=seed)
        flows = [sim.submit(s, d, z) for s, d, z in transfers]
        sim.run()
        for flow in flows:
            bottleneck = min(h.link.goodput_capacity for h in flow.route)
            data_time = flow.finish_time - flow.data_start
            assert data_time >= flow.size / bottleneck * (1 - 1e-6)

    @given(workloads(), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_average_rates_feasible_per_direction(self, transfers, seed):
        # over the busiest interval, total bytes through any link direction
        # cannot exceed capacity x makespan
        net = fresh_net()
        sim = FluidSimulator(net, seed=seed)
        flows = [sim.submit(s, d, z) for s, d, z in transfers]
        sim.run()
        start = min(f.data_start for f in flows)
        end = max(f.finish_time for f in flows)
        span = max(end - start, 1e-9)
        through: dict = {}
        for flow in flows:
            for hop in flow.route:
                through[hop.key] = through.get(hop.key, 0.0) + flow.size
        for key, total_bytes in through.items():
            capacity = net.links[key[0]].goodput_capacity
            assert total_bytes <= capacity * span * (1 + 1e-6)

    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_deterministic_per_seed(self, transfers):
        def run(seed):
            sim = FluidSimulator(fresh_net(), seed=seed)
            flows = [sim.submit(s, d, z) for s, d, z in transfers]
            sim.run()
            return [f.finish_time for f in flows]

        assert run(3) == run(3)

    @given(st.floats(1e5, 1e9), st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_size(self, size, seed):
        def duration(z):
            sim = FluidSimulator(fresh_net(), seed=seed)
            flow = sim.submit("n0", "n1", z)
            sim.run()
            return flow.finish_time - flow.data_start

        assert duration(size * 2) > duration(size) * (1 + 1e-9)
