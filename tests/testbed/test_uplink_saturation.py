"""Testbed-side mechanisms behind the graphene figures."""

import pytest

from repro.g5k.sites import build_grid5000_testbed, cluster_spec
from repro.testbed.fluid import FluidSimulator


def graphene(i):
    return f"graphene-{i}.nancy.grid5000.fr"


class TestGrapheneTruth:
    def test_uplinks_full_duplex_no_contention_at_moderate_load(self, g5k_testbed):
        # 6 inter-group flows each way: full-duplex 10G uplinks don't bind,
        # every flow is NIC-limited — this is why reality is FASTER than the
        # SHARED-uplink model for >=30 flows
        sim = FluidSimulator(g5k_testbed, seed=1)
        flows = []
        for i in range(1, 7):
            flows.append(sim.submit(graphene(i), graphene(100 + i), 1e9))
            flows.append(sim.submit(graphene(110 + i), graphene(10 + i), 1e9))
        sim.run()
        nic_time = 1e9 / (0.941 * 1.25e8)
        for flow in flows:
            data_time = flow.finish_time - flow.data_start
            assert data_time == pytest.approx(nic_time, rel=0.08)

    def test_destination_collision_halves_real_rate(self, g5k_testbed):
        # the §V-B1 asymmetric-case mechanism: two flows into one node
        sim = FluidSimulator(g5k_testbed, seed=2)
        f1 = sim.submit(graphene(1), graphene(100), 1e9)
        f2 = sim.submit(graphene(2), graphene(100), 1e9)
        sim.run()
        nic_time = 1e9 / (0.941 * 1.25e8)
        for flow in (f1, f2):
            data_time = flow.finish_time - flow.data_start
            assert data_time == pytest.approx(2 * nic_time, rel=0.10)

    def test_many_sources_saturate_an_uplink_direction(self, g5k_testbed):
        # 12 concurrent senders from group 1 (39 hosts) toward group 4:
        # 12 Gbps of demand against the 10G uplink direction — the real
        # saturation that trims the 50x50 factor toward the paper's 1.7
        sim = FluidSimulator(g5k_testbed, seed=3)
        flows = [sim.submit(graphene(i), graphene(105 + i), 1e9)
                 for i in range(1, 13)]
        sim.run()
        nic_time = 1e9 / (0.941 * 1.25e8)
        slowest = max(f.finish_time - f.data_start for f in flows)
        assert slowest > nic_time * 1.1  # uplink bound, not NIC bound

    def test_intra_group_flows_skip_uplinks(self, g5k_testbed):
        route = g5k_testbed.route(graphene(1), graphene(20))
        assert all("uplink" not in hop.link.name for hop in route)

    def test_group_boundaries_match_figure2(self):
        spec = cluster_spec("graphene")
        # figure 2: sgraphene1 carries 39 links, sgraphene4 carries 40
        assert spec.groups[0] == 39
        assert spec.groups[3] == 40
