"""Measurement wrapper, iperf application, cross-traffic."""

import math

import pytest

from repro.testbed.crosstraffic import CrossTrafficSpec, inject_background
from repro.testbed.fluid import FluidSimulator, Hop, TestbedNetwork
from repro.testbed.iperf import (
    IperfClient,
    IperfError,
    IperfServer,
    format_report,
    run_iperf_session,
)
from repro.testbed.measurement import MeasuredTransfer, run_transfers
from repro.testbed.profiles import DEFAULT, PROFILES, HostProfile


def small_net(n=4):
    net = TestbedNetwork()
    quiet = HostProfile(name="quiet", startup_median=0.001, startup_sigma=0.1)
    links = {}
    for i in range(n):
        name = f"n{i}"
        net.add_node(name, quiet)
        links[name] = net.add_link(f"l-{name}", 1.25e8, 5e-5)

    def resolver(src, dst):
        return [Hop(links[src], 0), Hop(links[dst], 1)]

    net.set_route_resolver(resolver)
    return net


class TestRunTransfers:
    def test_returns_one_record_per_transfer_in_order(self):
        net = small_net()
        transfers = [("n0", "n1", 1e7), ("n2", "n3", 1e8)]
        results = run_transfers(net, transfers, seed=0)
        assert [(r.src, r.dst, r.size) for r in results] == transfers

    def test_durations_positive_and_size_ordered(self):
        net = small_net()
        results = run_transfers(
            net, [("n0", "n1", 1e6), ("n0", "n2", 1e9)], seed=0
        )
        assert 0 < results[0].duration < results[1].duration

    def test_deterministic_given_seed(self):
        net = small_net()
        transfers = [("n0", "n1", 1e8)]
        r1 = run_transfers(net, transfers, seed=5)
        r2 = run_transfers(net, transfers, seed=5)
        assert r1[0].duration == pytest.approx(r2[0].duration)

    def test_noise_multiplies_raw_duration(self):
        net = small_net()
        results = run_transfers(net, [("n0", "n1", 1e8)], seed=1,
                                measurement_noise_sigma=0.05)
        r = results[0]
        assert r.duration != r.raw_duration
        assert r.duration == pytest.approx(r.raw_duration, rel=0.3)

    def test_zero_noise_equals_raw(self):
        net = small_net()
        results = run_transfers(net, [("n0", "n1", 1e8)], seed=1,
                                measurement_noise_sigma=0.0)
        assert results[0].duration == pytest.approx(results[0].raw_duration)

    def test_measured_transfer_rejects_nan(self):
        with pytest.raises(ValueError):
            MeasuredTransfer("a", "b", 1.0, duration=math.nan,
                             raw_duration=1.0, startup_overhead=0.0)

    def test_background_traffic_slows_foreground(self):
        net = small_net(4)
        transfers = [("n0", "n1", 5e8)]
        clean = run_transfers(net, transfers, seed=2,
                              measurement_noise_sigma=0.0)
        heavy = CrossTrafficSpec(arrival_rate=30.0, duration=10.0,
                                 size_log_mean=18.0, size_log_sigma=0.5)
        noisy = run_transfers(net, transfers, seed=2,
                              measurement_noise_sigma=0.0, background=heavy)
        assert noisy[0].duration > clean[0].duration


class TestIperf:
    def test_session_runs_all_clients(self):
        net = small_net()
        server = IperfServer("n1").start()
        clients = [IperfClient("n0", server, 1e7), IperfClient("n2", server, 1e7)]
        flows = run_iperf_session(net, clients, seed=0)
        assert all(f.state == "done" for f in flows)
        assert clients[0].flow is flows[0]

    def test_client_requires_started_server(self):
        net = small_net()
        server = IperfServer("n1")  # not started
        client = IperfClient("n0", server, 1e7)
        with pytest.raises(IperfError):
            client.transfer_tuple()

    def test_stopped_server_rejects(self):
        server = IperfServer("n1").start()
        server.stop()
        client = IperfClient("n0", server, 1e7)
        with pytest.raises(IperfError):
            client.transfer_tuple()

    def test_unique_ports(self):
        s1, s2 = IperfServer("n1"), IperfServer("n2")
        assert s1.port != s2.port

    def test_report_format(self):
        net = small_net()
        server = IperfServer("n1").start()
        client = IperfClient("n0", server, 1e7)
        run_iperf_session(net, [client], seed=0)
        report = format_report(client.flow)
        assert "MBytes" in report and "Mbits/sec" in report

    def test_report_requires_finished_flow(self):
        net = small_net()
        sim = FluidSimulator(net, seed=0)
        flow = sim.submit("n0", "n1", 1e7)
        with pytest.raises(IperfError):
            format_report(flow)


class TestCrossTraffic:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CrossTrafficSpec(arrival_rate=-1.0)
        with pytest.raises(ValueError):
            CrossTrafficSpec(duration=0.0)

    def test_injection_count_scales_with_rate(self):
        net = small_net(4)
        low = FluidSimulator(net, seed=3)
        high = FluidSimulator(net, seed=3)
        n_low = inject_background(low, CrossTrafficSpec(arrival_rate=1.0,
                                                        duration=20.0), seed=3)
        n_high = inject_background(high, CrossTrafficSpec(arrival_rate=10.0,
                                                          duration=20.0), seed=3)
        assert n_high > n_low

    def test_zero_rate_injects_nothing(self):
        net = small_net()
        sim = FluidSimulator(net, seed=0)
        assert inject_background(sim, CrossTrafficSpec(arrival_rate=0.0), 0) == 0

    def test_background_flows_flagged(self):
        net = small_net()
        sim = FluidSimulator(net, seed=0)
        inject_background(sim, CrossTrafficSpec(arrival_rate=5.0, duration=5.0),
                          seed=0)
        assert all(f.is_background for f in sim._flows)

    def test_needs_two_nodes(self):
        net = TestbedNetwork()
        net.add_node("only")
        sim = FluidSimulator(net, seed=0)
        with pytest.raises(ValueError):
            inject_background(sim, CrossTrafficSpec(), seed=0)


class TestProfiles:
    def test_registry_contains_paper_clusters(self):
        for name in ("sagittaire", "graphene", "capricorne", "griffon"):
            assert name in PROFILES

    def test_sagittaire_much_slower_startup_than_graphene(self):
        # the mechanism behind figures 3-5 vs 6-9 (DESIGN.md §6)
        assert PROFILES["sagittaire"].startup_median > \
            50 * PROFILES["graphene"].startup_median

    def test_efficiency_is_ethernet_goodput(self):
        assert PROFILES["graphene"].nic_efficiency == pytest.approx(
            1448.0 / 1538.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            HostProfile(name="bad", startup_median=-1.0, startup_sigma=0.1)
        with pytest.raises(ValueError):
            HostProfile(name="bad", startup_median=0.1, startup_sigma=0.1,
                        nic_efficiency=0.0)
