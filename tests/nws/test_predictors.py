"""NWS predictor battery."""

import pytest

from repro.nws.predictors import (
    PREDICTOR_FACTORIES,
    ExponentialSmoothing,
    LastValue,
    RunningMean,
    RunningMedian,
    SlidingMean,
    SlidingMedian,
)


class TestIndividualPredictors:
    def test_last_value(self):
        p = LastValue()
        assert p.predict() is None
        p.update(3.0)
        p.update(7.0)
        assert p.predict() == 7.0

    def test_running_mean(self):
        p = RunningMean()
        for v in (2.0, 4.0, 6.0):
            p.update(v)
        assert p.predict() == pytest.approx(4.0)

    def test_running_median_robust_to_outlier(self):
        p = RunningMedian()
        for v in (10.0, 10.0, 10.0, 1000.0):
            p.update(v)
        assert p.predict() == pytest.approx(10.0)

    def test_sliding_mean_window(self):
        p = SlidingMean(window=2)
        for v in (100.0, 1.0, 3.0):
            p.update(v)
        assert p.predict() == pytest.approx(2.0)

    def test_sliding_median(self):
        p = SlidingMedian(window=3)
        for v in (5.0, 100.0, 1.0, 3.0):
            p.update(v)
        assert p.predict() == pytest.approx(3.0)

    def test_sliding_window_validation(self):
        with pytest.raises(ValueError):
            SlidingMean(0)
        with pytest.raises(ValueError):
            SlidingMedian(-1)

    def test_exponential_smoothing(self):
        p = ExponentialSmoothing(gain=0.5)
        p.update(10.0)
        p.update(20.0)
        assert p.predict() == pytest.approx(15.0)

    def test_exponential_gain_validation(self):
        with pytest.raises(ValueError):
            ExponentialSmoothing(0.0)
        with pytest.raises(ValueError):
            ExponentialSmoothing(1.5)

    def test_battery_has_distinct_names(self):
        names = [factory().name for factory in PREDICTOR_FACTORIES]
        assert len(names) == len(set(names))
        assert len(names) >= 8


class TestConstantSeries:
    @pytest.mark.parametrize("factory", PREDICTOR_FACTORIES)
    def test_constant_series_predicted_exactly(self, factory):
        p = factory()
        for _ in range(20):
            p.update(42.0)
        assert p.predict() == pytest.approx(42.0)
