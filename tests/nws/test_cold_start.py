"""Cold-start contract: ready/forecast(default=...) and degenerate probes."""

import math

import pytest

from repro.nws.forecaster import AdaptiveForecaster, ColdSeriesError
from repro.nws.sensors import BandwidthSensor, LatencySensor
from repro.testbed.fluid import TestbedNetwork


def tiny_network():
    net = TestbedNetwork("cold")
    net.add_node("a")
    net.add_node("b")
    link = net.add_link("ab", capacity=1.25e8, latency=1e-4)
    from repro.testbed.fluid import Hop

    net.add_route("a", "b", [Hop(link, 0)])
    return net


class TestForecasterColdStart:
    def test_not_ready_without_observations(self):
        forecaster = AdaptiveForecaster()
        assert not forecaster.ready

    def test_cold_forecast_raises_cold_series_error(self):
        forecaster = AdaptiveForecaster()
        with pytest.raises(ColdSeriesError):
            forecaster.forecast()
        # ColdSeriesError subclasses ValueError: pre-contract callers that
        # caught ValueError keep working
        with pytest.raises(ValueError):
            forecaster.forecast()

    def test_cold_forecast_returns_default(self):
        forecaster = AdaptiveForecaster()
        assert forecaster.forecast(default=None) is None
        assert forecaster.forecast(default=42.0) == 42.0

    def test_ready_after_one_observation(self):
        forecaster = AdaptiveForecaster()
        forecaster.update(10.0)
        assert forecaster.ready
        assert forecaster.forecast() == pytest.approx(10.0)
        # the default is ignored once the series is warm
        assert forecaster.forecast(default=None) == pytest.approx(10.0)


class TestSensorColdStart:
    def test_bandwidth_sensor_cold_contract(self):
        sensor = BandwidthSensor(tiny_network(), "a", "b")
        assert not sensor.ready
        with pytest.raises(ColdSeriesError):
            sensor.forecast_bandwidth()
        assert sensor.forecast_bandwidth(default=None) is None
        sensor.probe_once()
        assert sensor.ready
        assert sensor.forecast_bandwidth() > 0

    def test_latency_sensor_cold_contract(self):
        sensor = LatencySensor(tiny_network(), "a", "b")
        assert not sensor.ready
        with pytest.raises(ColdSeriesError):
            sensor.forecast_rtt()
        assert sensor.forecast_rtt(default=1.0) == 1.0
        sensor.probe_once()
        assert sensor.ready

    def test_degenerate_probe_yields_nan_and_stays_cold(self, monkeypatch):
        sensor = BandwidthSensor(tiny_network(), "a", "b")

        class InstantFlow:
            completion_time_raw = 0.0

        class InstantSim:
            def __init__(self, *args, **kwargs):
                pass

            def submit(self, *args, **kwargs):
                return InstantFlow()

            def run(self):
                return []

        monkeypatch.setattr("repro.nws.sensors.FluidSimulator", InstantSim)
        assert math.isnan(sensor.probe_once())
        # the poisoned sample must not have reached the forecaster
        assert not sensor.ready
        assert sensor.forecaster.observations == 0
