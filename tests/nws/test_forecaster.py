"""NWS adaptive best-predictor selection."""

import math

import pytest

from repro._util.rng import rng_for
from repro.nws.forecaster import AdaptiveForecaster
from repro.nws.predictors import LastValue, RunningMean


class TestSelection:
    def test_requires_observations(self):
        forecaster = AdaptiveForecaster()
        with pytest.raises(ValueError):
            forecaster.best_predictor()

    def test_forecast_on_constant_series(self):
        forecaster = AdaptiveForecaster()
        for _ in range(10):
            forecaster.update(5.0)
        assert forecaster.forecast() == pytest.approx(5.0)

    def test_mean_wins_on_noisy_stationary_series(self):
        forecaster = AdaptiveForecaster([LastValue, RunningMean])
        rng = rng_for(0, "nws-test")
        for _ in range(200):
            forecaster.update(100.0 + rng.normal(0, 10.0))
        best = forecaster.best_predictor()
        assert best.name == "running_mean"

    def test_last_value_wins_on_trending_series(self):
        forecaster = AdaptiveForecaster([LastValue, RunningMean])
        for i in range(100):
            forecaster.update(float(i))
        assert forecaster.best_predictor().name == "last"

    def test_mean_errors_reported(self):
        forecaster = AdaptiveForecaster([LastValue, RunningMean])
        for v in (1.0, 2.0, 3.0):
            forecaster.update(v)
        errors = forecaster.mean_errors()
        assert len(errors) == 2
        assert all(e is not None and e >= 0 for e in errors)

    def test_forecast_tracks_series_scale(self):
        forecaster = AdaptiveForecaster()
        rng = rng_for(1, "nws-scale")
        for _ in range(100):
            forecaster.update(1e8 * (1.0 + 0.05 * rng.normal()))
        assert forecaster.forecast() == pytest.approx(1e8, rel=0.1)
