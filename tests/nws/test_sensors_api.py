"""NWS sensors and the transfer-forecast API — including the baseline's
structural blind spot that motivates the paper."""

import pytest

from repro.nws.api import NwsForecastService
from repro.nws.sensors import BandwidthSensor, LatencySensor
from repro.testbed.fluid import Hop, TestbedNetwork
from repro.testbed.measurement import run_transfers
from repro.testbed.profiles import HostProfile


def small_net(n=4):
    net = TestbedNetwork()
    quiet = HostProfile(name="q", startup_median=0.0005, startup_sigma=0.05)
    links = {}
    for i in range(n):
        name = f"n{i}"
        net.add_node(name, quiet)
        links[name] = net.add_link(f"l-{name}", 1.25e8, 5e-5, efficiency=0.941)
    net.set_route_resolver(
        lambda src, dst: [Hop(links[src], 0), Hop(links[dst], 1)]
    )
    return net


class TestSensors:
    def test_bandwidth_probe_below_line_rate(self):
        net = small_net()
        sensor = BandwidthSensor(net, "n0", "n1", seed=0)
        throughput = sensor.probe_once()
        assert 0 < throughput < 0.941 * 1.25e8

    def test_bandwidth_forecast_stabilizes(self):
        net = small_net()
        sensor = BandwidthSensor(net, "n0", "n1", seed=0)
        sensor.probe(15)
        forecast = sensor.forecast_bandwidth()
        assert forecast == pytest.approx(sensor.probe_once(), rel=0.3)

    def test_latency_probe_close_to_true_rtt(self):
        net = small_net()
        sensor = LatencySensor(net, "n0", "n1", seed=0)
        sensor.probe(10)
        assert sensor.forecast_rtt() == pytest.approx(net.rtt("n0", "n1"),
                                                      rel=0.1)


class TestForecastService:
    def test_single_transfer_forecast_accurate(self):
        net = small_net()
        service = NwsForecastService(net, seed=0)
        predicted = service.predict_transfer("n0", "n1", 1e9)
        measured = run_transfers(net, [("n0", "n1", 1e9)], seed=9,
                                 measurement_noise_sigma=0.0)[0].duration
        assert predicted == pytest.approx(measured, rel=0.25)

    def test_blind_to_concurrent_contention(self):
        # NWS forecasts each transfer independently: 4 concurrent flows into
        # one NIC take ~4x longer in reality, but NWS predicts the lone time
        net = small_net(5)
        service = NwsForecastService(net, seed=0)
        transfers = [(f"n{i}", "n4", 1e9) for i in range(4)]
        predictions = service.predict_transfers(transfers)
        measured = [m.duration for m in run_transfers(net, transfers, seed=9,
                                                      measurement_noise_sigma=0.0)]
        for pred, meas in zip(predictions, measured):
            assert pred < meas / 2.5  # badly optimistic under contention

    def test_sensor_reuse_per_pair(self):
        net = small_net()
        service = NwsForecastService(net, seed=0, warmup_probes=3)
        service.predict_transfer("n0", "n1", 1e6)
        sensor_first = service._bandwidth[("n0", "n1")]
        service.predict_transfer("n0", "n1", 1e7)
        assert service._bandwidth[("n0", "n1")] is sensor_first
