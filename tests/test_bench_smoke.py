"""Tier-1 hook for the benchmark smoke check.

Every ``benchmarks/bench_*.py`` must at least *run* (tiny sizes, one
repetition, timing disabled) — see ``tools/check_bench_smoke.py``.  This is
the slowest tier-1 test by far (~1 minute: it replays every figure experiment
once); set ``REPRO_SKIP_BENCH_SMOKE=1`` to skip it during quick local loops.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_bench_smoke  # noqa: E402


def test_bench_file_discovery():
    files = check_bench_smoke.bench_files()
    names = {f.name for f in files}
    assert "bench_incremental_solver.py" in names
    assert "bench_fig05_sagittaire_30x30.py" in names
    assert "bench_serving_throughput.py" in names
    assert "bench_metrology_loop.py" in names
    assert "bench_surrogate_serving.py" in names
    assert len(files) >= 20


def test_smoke_environment_sets_knobs():
    env = check_bench_smoke.smoke_environment()
    assert env["REPRO_REPS"] == "1"
    assert env["REPRO_SMOKE"] == "1"
    assert str(REPO_ROOT / "src") in env["PYTHONPATH"]


def test_smoke_environment_routes_trajectory_output(tmp_path):
    env = check_bench_smoke.smoke_environment(tmp_path)
    assert env["REPRO_BENCH_OUT"] == str(tmp_path)


def test_missing_emissions_detects_silent_bench(tmp_path):
    """A bench that runs but writes no BENCH_*.json must be reported, and
    so must a flush that forgot the aggregate summary."""
    files = check_bench_smoke.bench_files()
    missing = check_bench_smoke.missing_emissions(files, tmp_path)
    assert set(missing) == {f.name for f in files} | {
        check_bench_smoke.SUMMARY_FILENAME}
    first = files[0]
    name = first.name[len("bench_"):-len(".py")]
    (tmp_path / f"BENCH_{name}.json").write_text("{}")
    assert first.name not in check_bench_smoke.missing_emissions(
        files, tmp_path)
    assert check_bench_smoke.SUMMARY_FILENAME in \
        check_bench_smoke.missing_emissions(files, tmp_path)
    (tmp_path / check_bench_smoke.SUMMARY_FILENAME).write_text("{}")
    assert check_bench_smoke.SUMMARY_FILENAME not in \
        check_bench_smoke.missing_emissions(files, tmp_path)


@pytest.mark.skipif(
    bool(os.environ.get("REPRO_SKIP_BENCH_SMOKE")),
    reason="REPRO_SKIP_BENCH_SMOKE set",
)
def test_all_benches_run_in_smoke_mode():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_bench_smoke.py")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=540,
    )
    assert result.returncode == 0, (
        f"bench smoke run failed (rc={result.returncode}):\n"
        f"--- stdout (tail) ---\n{result.stdout[-4000:]}\n"
        f"--- stderr (tail) ---\n{result.stderr[-2000:]}"
    )
