"""Metric registry and Ganglia-like collector."""

import math

import pytest

from repro.metrology.collectors import (
    GangliaCollector,
    MetricKey,
    MetricRegistry,
    MetrologyError,
)


class TestRegistry:
    def test_create_and_lookup(self):
        registry = MetricRegistry()
        key = MetricKey("ganglia", "Lyon", "sagittaire-1.lyon.grid5000.fr", "pdu")
        registry.create(key)
        assert registry.lookup("ganglia", "Lyon",
                               "sagittaire-1.lyon.grid5000.fr", "pdu")
        assert key in registry
        assert len(registry) == 1

    def test_key_path_matches_service_uri_layout(self):
        key = MetricKey("ganglia", "Lyon", "sagittaire-1.lyon.grid5000.fr", "pdu")
        assert key.path() == "ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd"

    def test_duplicate_create_rejected(self):
        registry = MetricRegistry()
        key = MetricKey("t", "s", "h", "m")
        registry.create(key)
        with pytest.raises(MetrologyError):
            registry.create(key)

    def test_unknown_lookup_raises(self):
        registry = MetricRegistry()
        with pytest.raises(MetrologyError):
            registry.lookup("t", "s", "h", "ghost")

    def test_keys_sorted(self):
        registry = MetricRegistry()
        registry.create(MetricKey("b", "s", "h", "m"))
        registry.create(MetricKey("a", "s", "h", "m"))
        assert [k.tool for k in registry.keys()] == ["a", "b"]


class TestCollector:
    def test_polls_sources_on_period(self):
        registry = MetricRegistry()
        collector = GangliaCollector(registry, period=15.0)
        key = MetricKey("ganglia", "Lyon", "node-1", "pdu")
        collector.register(key, lambda t: 168.0 + (t % 30) / 30.0)
        cycles = collector.collect_until(150.0)
        assert cycles == 10
        rrd = registry.get(key)
        series = rrd.fetch(0.0, 150.0)
        assert len(series) >= 8
        assert all(168.0 <= v <= 169.1 for _, v in series)

    def test_register_creates_rrd_lazily(self):
        registry = MetricRegistry()
        collector = GangliaCollector(registry, period=10.0)
        key = MetricKey("munin", "s", "h", "load")
        collector.register(key, lambda t: 1.0)
        assert key in registry

    def test_counter_kind_records_rates(self):
        registry = MetricRegistry()
        collector = GangliaCollector(registry, period=10.0)
        key = MetricKey("ganglia", "s", "h", "bytes_out")
        state = {"counter": 0.0}

        def source(t):
            state["counter"] += 500.0  # 50 bytes/s
            return state["counter"]

        collector.register(key, source, kind="COUNTER")
        collector.collect_until(200.0)
        series = registry.get(key).fetch(20.0, 200.0)
        assert series and all(v == pytest.approx(50.0) for _, v in series)

    def test_period_validation(self):
        with pytest.raises(MetrologyError):
            GangliaCollector(MetricRegistry(), period=0.0)

    def test_collect_once_returns_timestamp(self):
        collector = GangliaCollector(MetricRegistry(), period=5.0)
        assert collector.collect_once() == 5.0
        assert collector.collect_once() == 10.0
