"""Concurrency suite: parallel probe fan-out and racing RRD writers.

The parallel feed's contract is *bit-identical to serial*: fanning probe
cycles out over worker processes is an execution strategy, not a model
change.  The racing-writers stress test pins the RRD's own thread-safety —
``record`` hammered from a pool must lose or duplicate no PDP update.
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.metrology.collectors import MetrologyError
from repro.metrology.demo import COLLECTOR, STAR_NAME, build_star_testbed
from repro.metrology.feed import MetrologyFeed, MonitoredLink
from repro.rrd.database import DataSourceSpec, RoundRobinDatabase
from repro.rrd.rra import ConsolidationFunction, RraSpec

N_LINKS = 64
WORKERS = 8
CYCLES = 2


def build_feed(workers: int, n_links: int = N_LINKS,
               seed: int = 5) -> MetrologyFeed:
    testbed = build_star_testbed(n_links)
    monitors = [
        MonitoredLink(f"{STAR_NAME}-{i}-link", f"{STAR_NAME}-{i}", COLLECTOR)
        for i in range(1, n_links + 1)
    ]
    return MetrologyFeed(testbed, monitors, period=15.0, seed=seed,
                         probe_bytes=2e6, workers=workers)


def rrd_contents(feed: MetrologyFeed) -> dict:
    return {
        (m.link, metric): (feed.rrd(m.link, metric).last_update,
                           feed.rrd(m.link, metric).fetch(0.0, feed.clock))
        for m in feed.monitors
        for metric in ("bandwidth", "latency")
    }


class TestParallelFeedEquivalence:
    def test_8_workers_bitwise_identical_to_serial_on_64_links(self):
        serial = build_feed(0)
        with build_feed(WORKERS) as parallel:
            for _ in range(CYCLES):
                serial.poll_once()
                parallel.poll_once()
            assert serial.clock == parallel.clock
            assert rrd_contents(serial) == rrd_contents(parallel)

    def test_mid_run_capacity_mutations_reach_the_workers(self):
        # degrade a testbed link between cycles: the workers' resident
        # network copies were forked before the mutation, so only the
        # per-chunk overrides can make them see it
        serial = build_feed(0, n_links=8)
        with build_feed(3, n_links=8) as parallel:
            serial.poll_once()
            parallel.poll_once()
            for feed in (serial, parallel):
                feed.network.links[f"{STAR_NAME}-3-link"].capacity *= 0.25
            serial.poll_once()
            parallel.poll_once()
            assert rrd_contents(serial) == rrd_contents(parallel)
            # and the degradation is actually visible in the series
            series = [v for _, v in
                      parallel.rrd(f"{STAR_NAME}-3-link", "bandwidth")
                      .fetch(0.0, parallel.clock)]
            assert series[-1] < 0.5 * series[0]

    def test_worker_pool_is_reused_and_closeable(self):
        with build_feed(2, n_links=4) as feed:
            feed.poll_once()
            executor = feed._executor
            assert executor is not None
            feed.poll_once()
            assert feed._executor is executor  # long-lived, not per-cycle
        assert feed._executor is None

    def test_negative_workers_rejected(self):
        with pytest.raises(MetrologyError, match="workers"):
            build_feed(-1, n_links=2)

    def test_demo_with_feed_workers_matches_serial_demo(self):
        # the full demo loop (schedule + recalibration) over a parallel
        # feed: recalibrated platforms end bit-identical to the serial run
        from repro.metrology.demo import StarMetrologyDemo

        serial = StarMetrologyDemo(n_hosts=3, period=15.0, seed=3)
        with StarMetrologyDemo(n_hosts=3, period=15.0, seed=3,
                               feed_workers=2) as parallel:
            for demo in (serial, parallel):
                demo.warmup(3)
                demo.run(5)
            assert rrd_contents(serial.feed) == rrd_contents(parallel.feed)
            for monitor in serial.feed.monitors:
                ours = serial.platform.link(monitor.link)
                theirs = parallel.platform.link(monitor.link)
                assert ours.bandwidth == theirs.bandwidth
                assert ours.latency == theirs.latency

    def test_sensor_scale_applies_identically_in_both_paths(self):
        serial = build_feed(0, n_links=4)
        with build_feed(2, n_links=4) as parallel:
            for feed in (serial, parallel):
                feed.poll_once()
                feed.scale_bandwidth_sensors(0.5)
                feed.poll_once()
            assert rrd_contents(serial) == rrd_contents(parallel)
            series = [v for _, v in
                      serial.rrd(f"{STAR_NAME}-1-link", "bandwidth")
                      .fetch(0.0, serial.clock)]
            assert series[1] == pytest.approx(0.5 * series[0], rel=0.1)


class TestRacingWriters:
    N_THREADS = 8
    PER_THREAD = 200

    def test_hammered_rrd_loses_and_duplicates_nothing(self):
        total = self.N_THREADS * self.PER_THREAD
        rrd = RoundRobinDatabase(
            DataSourceSpec(name="stress", kind="GAUGE"),
            step=1.0,
            rras=(RraSpec(ConsolidationFunction.AVERAGE, 1, total + 8),),
        )
        submitted: list[list[float]] = [[] for _ in range(self.N_THREADS)]

        def hammer(thread: int) -> None:
            for i in range(self.PER_THREAD):
                value = float(thread * 10_000 + i)
                submitted[thread].append(value)
                rrd.record(value)

        with ThreadPoolExecutor(max_workers=self.N_THREADS) as pool:
            for future in [pool.submit(hammer, t)
                           for t in range(self.N_THREADS)]:
                future.result()

        # every record landed on its own PDP slot: exact count, exact
        # last_update, and the recorded multiset is exactly what went in
        assert rrd.last_update == pytest.approx(float(total))
        series = rrd.fetch(0.0, rrd.last_update + 1.0)
        assert len(series) == total
        assert Counter(v for _, v in series) == Counter(
            v for values in submitted for v in values
        )
        timestamps = [ts for ts, _ in series]
        assert timestamps == sorted(set(timestamps))  # no duplicated slots

    def test_record_rejects_non_positive_advance(self):
        rrd = RoundRobinDatabase(DataSourceSpec(name="x"), step=1.0)
        with pytest.raises(Exception, match="advance"):
            rrd.record(1.0, advance=0.0)
